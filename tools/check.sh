#!/usr/bin/env bash
# The full local gate: formatting, release build, tests, domain lints.
# Offline-safe — nothing here touches the network. CI runs this same
# script, so a clean local run means a clean pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --all -- --check"
cargo fmt --all -- --check

step "cargo build --workspace --release"
cargo build --workspace --release

step "cargo test --workspace -q"
cargo test --workspace -q

step "cargo run -p xtask -- lint"
cargo run -p xtask -- lint

step "all checks passed"

#!/usr/bin/env bash
# The full local gate: formatting, release build, tests, domain lints.
# Offline-safe — nothing here touches the network. CI runs this same
# script, so a clean local run means a clean pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "no tracked target/ artifacts"
if git ls-files -- 'target/*' | grep -q .; then
  echo "error: build artifacts under target/ are tracked by git:" >&2
  git ls-files -- 'target/*' | head >&2
  echo "fix: git rm -r --cached target  (target/ is covered by .gitignore)" >&2
  exit 1
fi

step "cargo fmt --all -- --check"
cargo fmt --all -- --check

step "cargo build --workspace --release"
cargo build --workspace --release

step "cargo test --workspace -q"
cargo test --workspace -q

step "checkpoint/restore smoke (serve-replay --checkpoint-every / --restore)"
CK_DIR="$(mktemp -d)"
trap 'rm -rf "$CK_DIR"' EXIT
./target/release/navarchos serve-replay \
  --vehicles 10 --days 15 --seed 7 --shards 2 --dirty 99 \
  --checkpoint-every 3000 --checkpoint "$CK_DIR/ck.bin" --verify > /dev/null
test -s "$CK_DIR/ck.bin"
./target/release/navarchos serve-replay \
  --vehicles 10 --days 15 --seed 7 --shards 2 --dirty 99 \
  --restore "$CK_DIR/ck.bin" --verify > /dev/null
# A version-skewed checkpoint must be refused with the named error.
printf '\x09' | dd of="$CK_DIR/ck.bin" bs=1 seek=28 count=1 conv=notrunc 2> /dev/null
if ./target/release/navarchos serve-replay \
     --vehicles 10 --days 15 --seed 7 --shards 2 --dirty 99 \
     --restore "$CK_DIR/ck.bin" > /dev/null 2> "$CK_DIR/err.txt"; then
  echo "error: restoring a version-9 checkpoint exited 0" >&2
  exit 1
fi
grep -q 'snapshot version mismatch' "$CK_DIR/err.txt" || {
  echo "error: missing the named version-mismatch error:" >&2
  cat "$CK_DIR/err.txt" >&2
  exit 1
}

step "cargo run -p xtask -- lint"
cargo run -p xtask -- lint

step "cargo run -p xtask -- analyze"
cargo run -p xtask -- analyze

step "all checks passed"

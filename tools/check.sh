#!/usr/bin/env bash
# The full local gate: formatting, release build, tests, domain lints.
# Offline-safe — nothing here touches the network. CI runs this same
# script, so a clean local run means a clean pipeline.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "no tracked target/ artifacts"
if git ls-files -- 'target/*' | grep -q .; then
  echo "error: build artifacts under target/ are tracked by git:" >&2
  git ls-files -- 'target/*' | head >&2
  echo "fix: git rm -r --cached target  (target/ is covered by .gitignore)" >&2
  exit 1
fi

step "cargo fmt --all -- --check"
cargo fmt --all -- --check

step "cargo build --workspace --release"
cargo build --workspace --release

step "cargo test --workspace -q"
cargo test --workspace -q

step "cargo run -p xtask -- lint"
cargo run -p xtask -- lint

step "cargo run -p xtask -- analyze"
cargo run -p xtask -- analyze

step "all checks passed"

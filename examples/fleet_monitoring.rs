//! Fleet-scale monitoring: run the complete solution over every vehicle of
//! a mid-size fleet in batch mode, sweep the self-tuning threshold factor,
//! and report fleet-level precision / recall / F0.5 under the paper's
//! prediction-horizon protocol.
//!
//! Run with:
//! ```text
//! cargo run --release -p navarchos-examples --bin fleet_monitoring
//! ```

use navarchos_core::detectors::DetectorKind;
use navarchos_core::evaluation::{evaluate_vehicle_instances, factor_grid, EvalCounts, EvalParams};
use navarchos_core::runner::{run_vehicle, RunnerParams};
use navarchos_core::TransformKind;
use navarchos_fleetsim::{EventKind, FleetConfig, START_EPOCH};

fn main() {
    let mut cfg = FleetConfig::navarchos();
    cfg.n_vehicles = 16;
    cfg.n_recorded = 12;
    cfg.n_failures = 4;
    let fleet = cfg.generate();
    println!(
        "fleet: {} vehicles / {} records / {} failures",
        fleet.vehicles.len(),
        fleet.total_records(),
        fleet.recorded_repair_count()
    );
    for w in &fleet.faults {
        println!(
            "  ground truth: {} on {} (repair day {})",
            w.kind.label(),
            fleet.vehicles[w.vehicle].id,
            (w.repair - START_EPOCH) / 86_400
        );
    }

    // Score every vehicle once; thresholds are swept afterwards for free.
    let params = RunnerParams::paper_default(TransformKind::Correlation, DetectorKind::ClosestPair);
    let traces: Vec<_> = fleet
        .vehicles
        .iter()
        .map(|vd| {
            let maintenance: Vec<(i64, bool)> = vd
                .events
                .iter()
                .filter(|e| e.recorded && e.kind.is_maintenance())
                .map(|e| (e.timestamp, e.kind == EventKind::Repair))
                .collect();
            run_vehicle(&vd.frame, &maintenance, &params)
        })
        .collect();

    println!("\nthreshold-factor sweep (PH = 30 days):");
    let eval = EvalParams::days(30);
    let mut best: Option<(f64, EvalCounts)> = None;
    for factor in factor_grid() {
        let mut counts = EvalCounts::default();
        for (vd, vs) in fleet.vehicles.iter().zip(&traces) {
            let instances = vs.alarm_instances(factor, &eval);
            counts.merge(&evaluate_vehicle_instances(&instances, &vd.recorded_repairs(), eval));
        }
        println!(
            "  factor {factor:5.2}: precision {:.2}  recall {:.2}  F0.5 {:.2}  (tp {} / fp {} / fn {})",
            counts.precision(),
            counts.recall(),
            counts.f05(),
            counts.tp,
            counts.fp,
            counts.fn_
        );
        if best.as_ref().map(|(_, b)| counts.f05() > b.f05()).unwrap_or(true) {
            best = Some((factor, counts));
        }
    }
    let (factor, counts) = best.expect("sweep is non-empty");
    println!(
        "\nbest operating point: factor {factor} → F0.5 {:.2} (precision {:.2}, recall {:.2})",
        counts.f05(),
        counts.precision(),
        counts.recall()
    );

    // Show which vehicles alarm at the chosen factor.
    println!("\nalarm instances at the best factor:");
    for (vd, vs) in fleet.vehicles.iter().zip(&traces) {
        let instances = vs.alarm_instances(factor, &eval);
        if instances.is_empty() {
            continue;
        }
        let days: Vec<i64> = instances.iter().map(|t| (t - START_EPOCH) / 86_400).collect();
        let repairs = vd.recorded_repairs();
        let marks: Vec<String> = instances
            .iter()
            .zip(&days)
            .map(|(&t, d)| {
                let hit = repairs.iter().any(|&r| t >= r - eval.ph_seconds && t < r);
                format!("{d}{}", if hit { "✓" } else { "" })
            })
            .collect();
        println!("  {}: days {}", vd.id, marks.join(", "));
    }
}

//! Data exploration (the paper's Section 2): aggregate each vehicle-day to
//! mean+std features, cluster with average-linkage agglomerative
//! clustering, and check whether LOF outliers relate to upcoming failures.
//!
//! Run with:
//! ```text
//! cargo run --release -p navarchos-examples --bin fleet_exploration
//! ```

use navarchos_cluster::{linkage, Linkage};
use navarchos_fleetsim::{FleetConfig, START_EPOCH};
use navarchos_neighbors::{LofModel, Metric};
use navarchos_tsframe::aggregate::{daily_aggregate, znormalize_columns, SECONDS_PER_DAY};
use navarchos_tsframe::FilterSpec;

fn main() {
    let mut cfg = FleetConfig::navarchos();
    cfg.n_vehicles = 14;
    cfg.n_recorded = 10;
    cfg.n_failures = 3;
    cfg.n_days = 220;
    let fleet = cfg.generate();

    // Day-level aggregation of the filtered telemetry.
    let filter = FilterSpec::navarchos_default();
    let mut points = Vec::new();
    let mut owners: Vec<(usize, i64)> = Vec::new(); // (vehicle, day start)
    let mut dim = 0;
    for (v, vd) in fleet.vehicles.iter().enumerate() {
        let filtered = filter.apply(&vd.frame);
        for agg in daily_aggregate(&filtered, SECONDS_PER_DAY, 30) {
            let features = agg.feature_vector();
            dim = features.len();
            points.extend(features);
            owners.push((v, agg.bucket_start));
        }
    }
    znormalize_columns(&mut points, dim);
    println!("{} vehicle-days aggregated into {dim}-dimensional features", owners.len());

    // Agglomerative clustering at k = 9, as in the paper's Figure 2.
    let dendrogram = linkage(&points, dim, Linkage::Average);
    let labels = dendrogram.cut_k(9);
    for c in 0..9 {
        let members: Vec<usize> =
            (0..owners.len()).filter(|&i| labels[i] == c).map(|i| owners[i].0).collect();
        let mut vehicles = members.clone();
        vehicles.sort_unstable();
        vehicles.dedup();
        let usage = vehicles.first().map(|&v| fleet.vehicles[v].usage.name).unwrap_or("-");
        println!(
            "cluster {c}: {:4} days across {:2} vehicles (e.g. {usage})",
            members.len(),
            vehicles.len()
        );
    }

    // Top-1 % LOF outliers and their relation to failures.
    let rows: Vec<Vec<f64>> = points.chunks(dim).map(|c| c.to_vec()).collect();
    let lof = LofModel::fit(&rows, dim, 10, Metric::Euclidean);
    let top = lof.top_outliers((owners.len() / 100).max(1));
    println!("\ntop-1 % LOF outliers ({}):", top.len());
    let mut related = 0;
    for &i in &top {
        let (v, day_start) = owners[i];
        let next_failure =
            fleet.vehicles[v].recorded_repairs().into_iter().filter(|&r| r > day_start).min();
        let relation = match next_failure {
            Some(r) if r - day_start <= 30 * 86_400 => {
                related += 1;
                "≤ 30 days before a failure"
            }
            Some(_) => "> 30 days before the next failure",
            None => "no failure afterwards",
        };
        println!(
            "  {} day {:3}: LOF {:.2} — {relation}",
            fleet.vehicles[v].id,
            (day_start - START_EPOCH) / 86_400,
            lof.reference_scores()[i]
        );
    }
    println!(
        "\n{related}/{} outliers fall within 30 days of a failure — raw-space\n\
         outliers are a poor failure signal, which is why the paper moves to\n\
         correlation-based behavioural change detection.",
        top.len()
    );
}

//! Detector comparison: run all four of the paper's techniques
//! (Closest-pair, Grand, TranAD, XGBoost) over the same small fleet with
//! the correlation transformation and compare their best F0.5, echoing the
//! exploratory comparison of the paper's Section 4.
//!
//! Run with:
//! ```text
//! cargo run --release -p navarchos-examples --bin detector_comparison
//! ```

use navarchos_core::detectors::{DetectorKind, GrandNcm};
use navarchos_core::evaluation::{
    constant_grid, evaluate_vehicle_instances, factor_grid, EvalCounts, EvalParams,
};
use navarchos_core::runner::{run_vehicle, RunnerParams};
use navarchos_core::TransformKind;
use navarchos_fleetsim::{EventKind, FleetConfig};
use std::time::Instant;

fn main() {
    let mut cfg = FleetConfig::navarchos();
    cfg.n_vehicles = 10;
    cfg.n_recorded = 8;
    cfg.n_failures = 3;
    cfg.n_days = 250;
    let fleet = cfg.generate();
    println!(
        "fleet: {} vehicles / {} records / {} failures\n",
        fleet.vehicles.len(),
        fleet.total_records(),
        fleet.recorded_repair_count()
    );

    let eval = EvalParams::days(30);
    println!(
        "{:14} {:>8} {:>6} {:>6} {:>6} {:>8}",
        "technique", "best th", "F0.5", "prec", "recall", "time"
    );
    for detector in [
        DetectorKind::ClosestPair,
        DetectorKind::Grand(GrandNcm::Lof),
        DetectorKind::TranAd,
        DetectorKind::Xgboost,
    ] {
        let params = RunnerParams::paper_default(TransformKind::Correlation, detector);
        let started = Instant::now();
        let traces: Vec<_> = fleet
            .vehicles
            .iter()
            .map(|vd| {
                let maintenance: Vec<(i64, bool)> = vd
                    .events
                    .iter()
                    .filter(|e| e.recorded && e.kind.is_maintenance())
                    .map(|e| (e.timestamp, e.kind == EventKind::Repair))
                    .collect();
                run_vehicle(&vd.frame, &maintenance, &params)
            })
            .collect();
        let elapsed = started.elapsed();

        // Sweep the appropriate threshold grid, keep the best F0.5.
        let grid = if traces.first().map(|t| t.constant_threshold).unwrap_or(false) {
            constant_grid()
        } else {
            factor_grid()
        };
        let mut best = (f64::NAN, EvalCounts::default(), -1.0);
        for param in grid {
            let mut counts = EvalCounts::default();
            for (vd, vs) in fleet.vehicles.iter().zip(&traces) {
                let instances = vs.alarm_instances(param, &eval);
                counts.merge(&evaluate_vehicle_instances(&instances, &vd.recorded_repairs(), eval));
            }
            if counts.f05() > best.2 {
                best = (param, counts, counts.f05());
            }
        }
        println!(
            "{:14} {:>8.2} {:>6.2} {:>6.2} {:>6.2} {:>7.1}s",
            detector.label(),
            best.0,
            best.1.f05(),
            best.1.precision(),
            best.1.recall(),
            elapsed.as_secs_f64()
        );
    }
    println!(
        "\nExpected shape (paper): Closest-pair leads on correlation data and is\n\
         the fastest by an order of magnitude; Grand trails the field."
    );
}

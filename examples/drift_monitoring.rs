//! Drift monitoring: watch every faulty vehicle's anomaly-score stream
//! for persistent level shifts with the sequential change detectors in
//! `navarchos-stat` — the complementary tool to the framework's
//! reset-on-recorded-event reference profiles. The paper's discussion
//! section blames concept drift (services, seasons, silent failures) for
//! most of the task's difficulty; CUSUM-style monitors make those shifts
//! visible even when no event was logged.
//!
//! The example also demonstrates gap-aware resampling: the irregular
//! OBD-II cadence is put on a regular 1-minute grid without ever
//! interpolating across parking time.
//!
//! Run with:
//! ```text
//! cargo run --release -p navarchos-examples --bin drift_monitoring
//! ```

use navarchos_core::detectors::DetectorKind;
use navarchos_core::runner::{run_vehicle, RunnerParams, VehicleScores};
use navarchos_core::TransformKind;
use navarchos_fleetsim::{EventKind, FaultWindow, FleetConfig, VehicleData, START_EPOCH};
use navarchos_stat::drift::{PageHinkley, ShiftDirection, TwoSidedCusum};
use navarchos_stat::{mean, sample_std};
use navarchos_tsframe::aggregate::SECONDS_PER_DAY;
use navarchos_tsframe::{resample, FilterSpec, ResampleSpec};

fn day(t: i64) -> i64 {
    (t - START_EPOCH) / SECONDS_PER_DAY
}

/// Runs the headline pipeline on one vehicle and reduces the scores to
/// one value per day (the worst channel — faults touch a few correlation
/// pairs, so a mean across all channels would dilute them).
fn daily_worst_scores(vd: &VehicleData) -> Vec<(i64, f64)> {
    let params = RunnerParams::paper_default(TransformKind::Correlation, DetectorKind::ClosestPair);
    let maintenance: Vec<(i64, bool)> = vd
        .events
        .iter()
        .filter(|e| e.recorded && e.kind.is_maintenance())
        .map(|e| (e.timestamp, e.kind == EventKind::Repair))
        .collect();
    let vs: VehicleScores = run_vehicle(&vd.frame, &maintenance, &params);
    let mut series: Vec<(i64, f64)> = Vec::new();
    for (i, &t) in vs.timestamps.iter().enumerate() {
        let day_start = START_EPOCH + day(t) * SECONDS_PER_DAY;
        let m = (0..vs.n_channels).map(|c| vs.score(i, c)).fold(0.0, f64::max);
        match series.last_mut() {
            Some((d, v)) if *d == day_start => *v = v.max(m),
            _ => series.push((day_start, m)),
        }
    }
    series
}

/// Shift alerts on a daily score stream: a two-sided CUSUM around the
/// early-life baseline plus a Page–Hinkley test that learns its own.
fn shift_alerts(series: &[(i64, f64)]) -> Vec<(i64, ShiftDirection)> {
    let baseline: Vec<f64> = series.iter().take(30).map(|&(_, v)| v).collect();
    let (mu, sigma) = (mean(&baseline), sample_std(&baseline).max(1e-6));
    let mut cusum = TwoSidedCusum::new(mu, 0.25 * sigma, 6.0 * sigma);
    let mut ph = PageHinkley::new(0.25 * sigma, 8.0 * sigma);
    let mut alerts: Vec<(i64, ShiftDirection)> = Vec::new();
    for &(t, v) in series {
        let c = cusum.update(v);
        let p = ph.update(v);
        let hit = c.or(if p { Some(ShiftDirection::Up) } else { None });
        if let Some(direction) = hit {
            // A persistent shift keeps re-triggering the statistics;
            // report each episode once (21-day refractory window).
            match alerts.last() {
                Some(&(last, _)) if t - last < 21 * SECONDS_PER_DAY => {}
                _ => alerts.push((t, direction)),
            }
        }
    }
    alerts
}

fn main() {
    let fleet = FleetConfig::long_haul(17).generate();
    println!(
        "long-haul fleet: {} vehicles, {} injected faults\n",
        fleet.vehicles.len(),
        fleet.faults.len(),
    );

    // Part 1 — gap-aware resampling, shown once on the first faulty
    // vehicle. Drift monitoring must keep cold-running records (a
    // stuck-open thermostat holds the coolant *below* the detection
    // pipeline's warm-up cutoff), so the warm-up filter is disabled.
    let first = fleet.faults.first().expect("config injects faults");
    let mut spec = FilterSpec::navarchos_default();
    spec.warm_column = None;
    let filtered = spec.apply(&fleet.vehicles[first.vehicle].frame);
    let gridded = resample(&filtered, ResampleSpec::linear(60));
    println!(
        "resampling {}: {} irregular records -> {} one-minute grid points\n",
        fleet.vehicles[first.vehicle].id,
        filtered.len(),
        gridded.len(),
    );

    // Part 2 — score-level drift monitoring across the whole fleet's
    // faulty vehicles. The detection pipeline thresholds each score
    // stream *within* a maintenance segment; the drift monitor watches it
    // *across* segments, where slow degradation and unrecorded services
    // show up as persistent level shifts.
    println!(
        "vehicle      | fault                  | window (days) | alerts | in-window | score in/out"
    );
    let mut corroborated = 0;
    for FaultWindow { vehicle, start, repair, kind } in &fleet.faults {
        let vd = &fleet.vehicles[*vehicle];
        let series = daily_worst_scores(vd);
        if series.len() < 45 {
            println!("{:<12} | {:<22} | (too little data)", vd.id, kind.label());
            continue;
        }
        let alerts = shift_alerts(&series);
        let in_window = alerts.iter().filter(|&&(t, _)| t >= *start && t <= *repair).count();
        if in_window > 0 {
            corroborated += 1;
        }
        let (mut inside, mut outside) = (Vec::new(), Vec::new());
        for &(t, v) in &series {
            if t >= *start && t <= *repair {
                inside.push(v);
            } else {
                outside.push(v);
            }
        }
        let ratio = if inside.is_empty() || outside.is_empty() {
            f64::NAN
        } else {
            mean(&inside) / mean(&outside).max(1e-12)
        };
        println!(
            "{:<12} | {:<22} | {:>4} – {:>4}   | {:>6} | {:>9} | {:>6.2}x",
            vd.id,
            kind.label(),
            day(*start),
            day(*repair),
            alerts.len(),
            in_window,
            ratio,
        );
        for (t, direction) in &alerts {
            let tag = if *t >= *start && *t <= *repair {
                "inside the fault window"
            } else {
                "outside — unrecorded service / re-baselining suspect"
            };
            println!("    day {:>3}: shift {:?} ({tag})", day(*t), direction);
        }
    }
    println!(
        "\n{corroborated}/{} faults show a score-level shift inside their window. \
         Shifts outside a window point at unrecorded services or sensor \
         re-baselining — the drift the paper's discussion section describes.",
        fleet.faults.len(),
    );
}

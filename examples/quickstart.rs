//! Quickstart: simulate a small fleet, run the paper's complete solution
//! (correlation transformation + Closest-pair detection + self-tuning
//! thresholds + dynamic reference resets) on one vehicle's stream, and
//! print the alarms with their feature attribution.
//!
//! Run with:
//! ```text
//! cargo run --release -p navarchos-examples --bin quickstart
//! ```

use navarchos_core::detectors::DetectorKind;
use navarchos_core::evaluation::EvalParams;
use navarchos_core::{AlarmAggregator, PipelineConfig, StreamingPipeline, TransformKind};
use navarchos_fleetsim::{EventKind, FleetConfig, PID_NAMES, START_EPOCH};

fn main() {
    // 1. A deterministic synthetic fleet (stands in for the FMS data).
    let fleet = FleetConfig::small(23).generate();
    println!(
        "generated {} vehicles / {} telemetry records / {} failures",
        fleet.vehicles.len(),
        fleet.total_records(),
        fleet.recorded_repair_count()
    );

    // 2. Pick a vehicle that actually fails, so there is something to find.
    // Prefer a sensor-type fault (MAF drift / intake leak) for the demo —
    // they carry the crispest correlation signature.
    let fault = fleet.faults.iter().max_by_key(|w| w.repair).expect("small fleet plans failures");
    let vehicle = &fleet.vehicles[fault.vehicle];
    println!(
        "monitoring {} — developing fault: {} (repair on day {})",
        vehicle.id,
        fault.kind.label(),
        (fault.repair - START_EPOCH) / 86_400
    );

    // 3. The paper's complete solution as a streaming pipeline.
    let mut cfg =
        PipelineConfig::paper_default(TransformKind::Correlation, DetectorKind::ClosestPair);
    // Per-sample streaming alarms need a stiffer factor than the
    // daily-aggregated batch evaluation (see `navarchos_core::runner`).
    cfg.threshold_factor = 12.0;
    let mut pipeline = StreamingPipeline::new(&PID_NAMES, cfg);
    // Group raw violations into operator alarms with the validated
    // instance rules (persistence + multi-channel agreement).
    let mut aggregator = AlarmAggregator::new(&EvalParams::days(30), 15);
    let mut instances = 0usize;

    // 4. Replay the vehicle's history: events reset the reference profile,
    //    records flow through filter → transform → detector → threshold.
    let mut events = vehicle.recorded_events().into_iter().peekable();
    let mut alarms = 0usize;
    let mut weekly = vec![0usize; fleet.n_days / 7 + 1];
    let frame = &vehicle.frame;
    let mut row = Vec::new();
    for i in 0..frame.len() {
        let t = frame.timestamps()[i];
        while let Some(e) = events.peek() {
            if e.timestamp > t {
                break;
            }
            if e.kind.is_maintenance() {
                println!(
                    "day {:3}: {} → reference reset",
                    (e.timestamp - START_EPOCH) / 86_400,
                    e.kind.label()
                );
                pipeline.process_event(e.kind == EventKind::Repair);
            }
            events.next();
        }
        frame.row_into(i, &mut row);
        for alarm in pipeline.process_record(t, &row) {
            alarms += 1;
            weekly[((alarm.timestamp - START_EPOCH) / (7 * 86_400)) as usize] += 1;
            if let Some(instance) = aggregator.push(&alarm) {
                instances += 1;
                if instances <= 8 {
                    println!(
                        "day {:3}: OPERATOR ALARM — {} violations on {} features (first: {})",
                        (instance.start - START_EPOCH) / 86_400,
                        instance.violations,
                        instance.channels.len(),
                        alarm.channel_name
                    );
                }
            }
        }
    }
    println!(
        "
total threshold violations: {alarms}"
    );
    println!("violations per week ('F' marks weeks inside the fault ramp):");
    let fault_start_week = (fault.start - START_EPOCH) / (7 * 86_400);
    let repair_week = (fault.repair - START_EPOCH) / (7 * 86_400);
    for (w, &n) in weekly.iter().enumerate() {
        let in_fault = (w as i64) >= fault_start_week && (w as i64) <= repair_week;
        println!(
            "  week {w:2} {} {:4} {}",
            if in_fault { "F" } else { " " },
            n,
            "█".repeat((n / 4).min(60))
        );
    }
}

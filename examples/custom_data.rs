//! Bring your own data: export simulated telemetry to CSV (standing in for
//! a real fleet-management export), load it back, and monitor it with a
//! custom framework instantiation — the histogram transformation extension
//! plus the isolation-forest detector — instead of the paper's defaults.
//!
//! Run with:
//! ```text
//! cargo run --release -p navarchos-examples --bin custom_data
//! ```

use navarchos_core::detectors::{DetectorKind, DetectorParams};
use navarchos_core::reference::ReferenceProfile;
use navarchos_core::Transform;
use navarchos_fleetsim::FleetConfig;
use navarchos_tsframe::csv::{read_csv, write_csv};
use navarchos_tsframe::{FilterSpec, HistogramTransform};

fn main() {
    // 1. Pretend this CSV came from a real FMS export.
    let fleet = FleetConfig::small(5).generate();
    let fault = fleet.faults.iter().max_by_key(|w| w.repair).expect("has faults");
    let vehicle = &fleet.vehicles[fault.vehicle];
    let mut csv = Vec::new();
    write_csv(&vehicle.frame, &mut csv).expect("serialize telemetry");
    println!(
        "exported {} ({} bytes of CSV); developing fault: {}",
        vehicle.id,
        csv.len(),
        fault.kind.label()
    );

    // 2. Load it back as any downstream user would.
    let frame = read_csv(csv.as_slice()).expect("parse telemetry");
    let filtered = FilterSpec::navarchos_default().apply(&frame);
    println!("loaded {} records, {} after filtering", frame.len(), filtered.len());

    // 3. A custom step-1/step-3 instantiation: histogram features scored
    //    by an isolation forest.
    let ranges = HistogramTransform::navarchos_ranges();
    let mut transform = HistogramTransform::new(filtered.names(), &ranges, 6, 45, 3);
    let features = transform.apply(&filtered);
    println!(
        "histogram transformation: {} windows × {} features",
        features.len(),
        features.width()
    );

    // 4. Fit on the first stretch (the reference profile), score the rest.
    let mut detector = DetectorKind::IsolationForest.build(
        features.width(),
        features.names(),
        &DetectorParams::default(),
    );
    let ref_len = (features.len() / 3).max(8);
    let mut profile = ReferenceProfile::new(features.width(), ref_len);
    for i in 0..ref_len {
        profile.push(&features.row(i));
    }
    detector.fit(&profile);

    // 5. Report the scores by fortnight so the fault ramp stands out.
    let mut buckets: Vec<(i64, f64, usize)> = Vec::new();
    for i in ref_len..features.len() {
        let t = features.timestamps()[i];
        let score = detector.score(&features.row(i))[0];
        let day = (t - navarchos_fleetsim::START_EPOCH) / 86_400;
        let bucket = day / 14;
        match buckets.last_mut() {
            Some((b, sum, n)) if *b == bucket => {
                *sum += score;
                *n += 1;
            }
            _ => buckets.push((bucket, score, 1)),
        }
    }
    let fault_start_day = (fault.start - navarchos_fleetsim::START_EPOCH) / 86_400;
    let repair_day = (fault.repair - navarchos_fleetsim::START_EPOCH) / 86_400;
    println!("\nmean isolation-forest score per fortnight (fault ramp days {fault_start_day}–{repair_day}):");
    for (bucket, sum, n) in &buckets {
        let mean = sum / *n as f64;
        let lo = bucket * 14;
        let marker = if lo + 13 >= fault_start_day && lo <= repair_day { " ← fault" } else { "" };
        println!(
            "  days {:>3}-{:<3} {:.3} {}{marker}",
            lo,
            lo + 13,
            mean,
            "#".repeat(((mean - 0.3).max(0.0) * 100.0) as usize)
        );
    }
}

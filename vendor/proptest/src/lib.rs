//! Vendored, zero-dependency stand-in for the subset of `proptest` 1.x this
//! workspace uses: the `proptest!` macro with `pat in strategy` bindings,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range strategies,
//! `prop::collection::vec`, `.prop_map`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! no shrinking (failing inputs are reported verbatim), and case generation
//! is deterministic per test (seeded from the case index), so failures are
//! always reproducible without a persistence file.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum consecutive `prop_assume!` rejections tolerated per case.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the fully-offline CI loop fast
        // while still exercising each property across a spread of inputs.
        ProptestConfig { cases: 64, max_global_rejects: 1024 }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; draw a fresh case instead.
    Reject,
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator used to produce case inputs (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case number `case` of a property.
    pub fn for_case(case: u64) -> Self {
        // Golden-ratio offset decorrelates neighbouring case streams.
        TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A recipe for generating values of one type, mirroring
/// `proptest::strategy::Strategy` minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an input for a second-stage strategy built by `f`
    /// (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * u;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategy combinators namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt;
        use std::ops::{Range, RangeInclusive};

        /// Length specification accepted by [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi_inclusive: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec length range");
                SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty vec length range");
                SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
            }
        }

        /// Strategy for `Vec`s with lengths drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, len: len.into() }
        }

        /// Strategy produced by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.hi_inclusive - self.len.lo) as u64 + 1;
                let n = self.len.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Drives one property: generates cases, retries rejections, panics on the
/// first falsified case with the offending inputs.
pub struct TestRunner {
    config: ProptestConfig,
}

impl fmt::Debug for TestRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TestRunner").field("config", &self.config).finish()
    }
}

impl TestRunner {
    /// Runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `case` until `config.cases` successes are recorded.
    ///
    /// `case` receives a fresh deterministic RNG per attempt and returns the
    /// case verdict plus a rendering of the generated inputs (used in the
    /// failure report).
    ///
    /// # Panics
    /// Panics when a case fails or when `prop_assume!` rejects too many
    /// consecutive attempts.
    pub fn run(&mut self, mut case: impl FnMut(&mut TestRng) -> (TestCaseResult, String)) {
        let mut passed = 0u32;
        let mut attempt = 0u64;
        let mut consecutive_rejects = 0u32;
        while passed < self.config.cases {
            let mut rng = TestRng::for_case(attempt);
            attempt += 1;
            let (verdict, inputs) = case(&mut rng);
            match verdict {
                Ok(()) => {
                    passed += 1;
                    consecutive_rejects = 0;
                }
                Err(TestCaseError::Reject) => {
                    consecutive_rejects += 1;
                    assert!(
                        consecutive_rejects <= self.config.max_global_rejects,
                        "proptest: too many prop_assume! rejections ({} in a row)",
                        consecutive_rejects
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case failed (attempt {attempt}, after {passed} passes)\n\
                         inputs: {inputs}\n{msg}"
                    );
                }
            }
        }
    }
}

/// Everything the `proptest!` macro and typical property code needs.
pub mod prelude {
    pub use super::prop;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult, TestRng, TestRunner,
    };
}

/// Fails the current case (without aborting the whole process) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (drawing a fresh one) when the assumption does
/// not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body across generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(config);
                runner.run(|__rng| {
                    let mut __inputs = String::new();
                    $(
                        let __value = $crate::Strategy::generate(&($strat), __rng);
                        __inputs.push_str(&format!(
                            "\n  {} = {:?}", stringify!($arg), &__value
                        ));
                        let $arg = __value;
                    )*
                    let __verdict: $crate::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    (__verdict, __inputs)
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_length(v in prop::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn map_and_tuple_patterns((a, b) in (0i32..10).prop_map(|x| (x, x + 1))) {
            prop_assert_eq!(b, a + 1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics_with_inputs() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        runner.run(|rng| {
            let x = Strategy::generate(&(0.0f64..1.0), rng);
            let verdict =
                if x < 2.0 { Err(TestCaseError::Fail("always fails".into())) } else { Ok(()) };
            (verdict, format!("x = {x:?}"))
        });
    }
}

//! Vendored, zero-dependency stand-in for the subset of `criterion` 0.5 this
//! workspace uses (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Throughput`, `BenchmarkId`,
//! `black_box`).
//!
//! It performs real wall-clock measurement (warm-up, then a timed batch of
//! iterations sized to a per-benchmark time budget) and prints a one-line
//! summary per benchmark. No statistics, plotting, or comparison against
//! saved baselines — the offline environment has no registry access, and the
//! workspace only needs order-of-magnitude numbers (paper Table 1 context).

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-rate label attached to a group, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Identifier consisting of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Per-iteration timer handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Measurement settings shared by a group of benchmarks.
#[derive(Debug, Clone)]
struct Settings {
    /// Wall-clock budget for the timed phase of one benchmark.
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(60),
            throughput: None,
        }
    }
}

fn run_benchmark(name: &str, settings: &Settings, mut routine: impl FnMut(&mut Bencher)) {
    // Warm-up: discover the per-iteration cost.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_up_start = Instant::now();
    let mut per_iter = Duration::ZERO;
    while warm_up_start.elapsed() < settings.warm_up_time {
        routine(&mut b);
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / (b.iters as u32).max(1);
        // Grow geometrically towards iteration counts that fill the budget.
        let target = settings.warm_up_time.as_nanos() / 4 / per_iter.as_nanos().max(1);
        b.iters = (b.iters * 2).min((target as u64).max(1));
    }

    // Timed phase: one batch sized to the measurement budget.
    let iters =
        (settings.measurement_time.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000);
    b.iters = iters as u64;
    routine(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;

    let rate = match settings.throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (ns * 1e-9) / 1.0)
        }
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / (ns * 1e-9)),
        None => String::new(),
    };
    println!("bench: {name:<48} {ns:>14.1} ns/iter ({} iters){rate}", b.iters);
}

/// A named set of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut (),
}

impl BenchmarkGroup<'_> {
    /// Declares the work rate used for the throughput column.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Upstream tunes statistical sample count; the shim's single-batch
    /// measurement has no equivalent, so this only trims the time budget so
    /// "fast" groups and "slow, few samples" groups stay proportionate.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if n <= 10 {
            self.settings.measurement_time = Duration::from_millis(100);
            self.settings.warm_up_time = Duration::from_millis(20);
        }
        self
    }

    /// Overrides the timed-phase budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&name, &self.settings, f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&name, &self.settings, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    unit: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: Settings::default(),
            _criterion: &mut self.unit,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, &Settings::default(), f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &n| b.iter(|| n * 2));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_renders_both_forms() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}

//! Vendored, zero-dependency stand-in for the subset of the `rand` 0.8 API
//! this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`/`gen_bool`, `seq::SliceRandom::shuffle`/`choose`).
//!
//! The build environment is fully offline, so crates.io dependencies cannot
//! be fetched; this shim keeps the workspace self-contained. The generator
//! is xoshiro256++ seeded through SplitMix64 — statistically solid for
//! simulation workloads, deterministic for a given seed, and unrelated to
//! cryptography (exactly like `StdRng`'s contract: reproducibility is *not*
//! guaranteed to match upstream `rand` across versions).

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty, matching upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps a raw word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty half-open range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, low, high)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // Widening multiply keeps the draw unbiased enough for
                // simulation use without a rejection loop.
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                // The affine map can land exactly on `high` after rounding;
                // clamp to stay within the half-open contract.
                let v = low + (high - low) * u;
                if v >= high { <$t>::max(low, high - (high - low) * <$t>::EPSILON) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                low + (high - low) * u
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

pub mod rngs {
    //! Named generators, mirroring `rand::rngs`.
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers, mirroring `rand::seq`.
    use super::{Rng, RngCore};

    /// Slice extensions: uniform shuffle and element choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&x));
            let n = rng.gen_range(2..9);
            assert!((2..9).contains(&n));
            let m: usize = rng.gen_range(0..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng) == Some(&5));
    }
}

//! A single regression tree grown with the XGBoost split criterion.

/// One tree node: either an internal split or a leaf weight.
#[derive(Debug, Clone)]
pub enum Node {
    /// Internal split: rows with `feature < threshold` go left.
    Split {
        /// Feature index tested by the split.
        feature: usize,
        /// Split threshold (midpoint between adjacent sorted values).
        threshold: f64,
        /// Index of the left child in the tree's node arena.
        left: usize,
        /// Index of the right child in the tree's node arena.
        right: usize,
    },
    /// Leaf with an output weight (already includes no shrinkage; the
    /// booster scales by the learning rate).
    Leaf {
        /// Output value of the leaf: −G / (H + λ).
        weight: f64,
    },
}

/// A regression tree stored as a node arena (index 0 is the root).
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

/// Growth hyper-parameters passed down from the booster.
#[derive(Debug, Clone, Copy)]
pub struct GrowParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// L2 regularisation λ on leaf weights.
    pub lambda: f64,
    /// Minimum gain γ required to keep a split.
    pub gamma: f64,
    /// Minimum sum of hessians per child.
    pub min_child_weight: f64,
}

struct Builder<'a> {
    x: &'a [f64],
    dim: usize,
    grad: &'a [f64],
    hess: &'a [f64],
    params: GrowParams,
    nodes: Vec<Node>,
}

impl Tree {
    /// Grows a tree on the given rows (indices into the row-major matrix
    /// `x`), fitting the gradient/hessian statistics. `features` restricts
    /// the columns considered (column subsampling).
    pub fn grow(
        x: &[f64],
        dim: usize,
        grad: &[f64],
        hess: &[f64],
        rows: &[u32],
        features: &[usize],
        params: GrowParams,
    ) -> Tree {
        debug_assert_eq!(grad.len(), hess.len());
        let mut b = Builder { x, dim, grad, hess, params, nodes: Vec::new() };
        let mut rows = rows.to_vec();
        b.build_node(&mut rows, features, 0);
        Tree { nodes: b.nodes }
    }

    /// Predicted weight for one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { weight } => return *weight,
                Node::Split { feature, threshold, left, right } => {
                    // NaN features follow the right branch (missing-value
                    // default direction).
                    i = if row[*feature] < *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves in the tree.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// The node arena (root at index 0).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }
}

impl Builder<'_> {
    /// Recursively builds the subtree for `rows`, returning its node index.
    /// (`&mut Vec` rather than `&mut [_]`: children receive freshly
    /// partitioned ownership-local vectors.)
    // float_cmp: equal adjacent values in a sorted column mean "no split
    // point exists between them" — an exact duplicate test, not a tolerance.
    #[allow(clippy::float_cmp)]
    // ptr_arg: recursion hands each child a freshly partitioned, ownership-
    // local Vec (truncate + extend), which a `&mut [_]` cannot express.
    #[allow(clippy::ptr_arg)]
    fn build_node(&mut self, rows: &mut Vec<u32>, features: &[usize], depth: usize) -> usize {
        let (g_sum, h_sum) = rows
            .iter()
            .fold((0.0, 0.0), |(g, h), &r| (g + self.grad[r as usize], h + self.hess[r as usize]));

        let leaf_weight = -g_sum / (h_sum + self.params.lambda);
        if depth >= self.params.max_depth || rows.len() < 2 {
            return self.push_leaf(leaf_weight);
        }

        // Exact greedy split search over the allowed features.
        let mut best_gain = self.params.gamma;
        let mut best: Option<(usize, f64)> = None;
        let parent_score = g_sum * g_sum / (h_sum + self.params.lambda);
        let mut sorted: Vec<(f64, f64, f64)> = Vec::with_capacity(rows.len());
        for &f in features {
            sorted.clear();
            sorted.extend(rows.iter().map(|&r| {
                let r = r as usize;
                (self.x[r * self.dim + f], self.grad[r], self.hess[r])
            }));
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut gl = 0.0;
            let mut hl = 0.0;
            for w in 0..sorted.len() - 1 {
                gl += sorted[w].1;
                hl += sorted[w].2;
                if sorted[w].0 == sorted[w + 1].0 {
                    continue; // can't split between equal values
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < self.params.min_child_weight || hr < self.params.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + self.params.lambda) + gr * gr / (hr + self.params.lambda)
                        - parent_score);
                if gain > best_gain {
                    best_gain = gain;
                    best = Some((f, (sorted[w].0 + sorted[w + 1].0) / 2.0));
                }
            }
        }

        let Some((feature, threshold)) = best else {
            return self.push_leaf(leaf_weight);
        };

        let mut left_rows: Vec<u32> = Vec::with_capacity(rows.len() / 2);
        let mut right_rows: Vec<u32> = Vec::with_capacity(rows.len() / 2);
        for &r in rows.iter() {
            if self.x[r as usize * self.dim + feature] < threshold {
                left_rows.push(r);
            } else {
                right_rows.push(r);
            }
        }
        debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());

        let idx = self.nodes.len();
        self.nodes.push(Node::Leaf { weight: 0.0 }); // placeholder
        let left = self.build_node(&mut left_rows, features, depth + 1);
        let right = self.build_node(&mut right_rows, features, depth + 1);
        self.nodes[idx] = Node::Split { feature, threshold, left, right };
        idx
    }

    fn push_leaf(&mut self, weight: f64) -> usize {
        self.nodes.push(Node::Leaf { weight });
        self.nodes.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PARAMS: GrowParams =
        GrowParams { max_depth: 4, lambda: 1.0, gamma: 0.0, min_child_weight: 1.0 };

    /// Squared-loss stats around prediction 0: grad = −y, hess = 1.
    fn stats(y: &[f64]) -> (Vec<f64>, Vec<f64>) {
        (y.iter().map(|v| -v).collect(), vec![1.0; y.len()])
    }

    #[test]
    fn step_function_is_learned() {
        // y = 10 for x < 0.5, y = -10 otherwise.
        let x: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        let y: Vec<f64> = x.iter().map(|&v| if v < 0.5 { 10.0 } else { -10.0 }).collect();
        let (g, h) = stats(&y);
        let rows: Vec<u32> = (0..20).collect();
        let tree = Tree::grow(&x, 1, &g, &h, &rows, &[0], PARAMS);
        // Regularised leaves shrink slightly toward zero (λ = 1, n = 10).
        assert!((tree.predict_row(&[0.2]) - 10.0 * 10.0 / 11.0).abs() < 1e-9);
        assert!((tree.predict_row(&[0.9]) + 10.0 * 10.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn constant_target_single_leaf() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y = vec![3.0; 10];
        let (g, h) = stats(&y);
        let rows: Vec<u32> = (0..10).collect();
        let tree = Tree::grow(&x, 1, &g, &h, &rows, &[0], PARAMS);
        assert_eq!(tree.n_leaves(), 1, "no gain anywhere → single leaf");
        assert!((tree.predict_row(&[5.0]) - 3.0 * 10.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn max_depth_respected() {
        let x: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..64).map(|i| (i as f64).sin() * 5.0).collect();
        let (g, h) = stats(&y);
        let rows: Vec<u32> = (0..64).collect();
        for d in 1..5 {
            let tree =
                Tree::grow(&x, 1, &g, &h, &rows, &[0], GrowParams { max_depth: d, ..PARAMS });
            assert!(tree.depth() <= d, "depth {} > requested {d}", tree.depth());
            assert!(tree.n_leaves() <= 1 << d);
        }
    }

    #[test]
    fn gamma_prunes_weak_splits() {
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        // Tiny signal: values ±0.01.
        let y: Vec<f64> = x.iter().map(|&v| if v < 8.0 { 0.01 } else { -0.01 }).collect();
        let (g, h) = stats(&y);
        let rows: Vec<u32> = (0..16).collect();
        let strict = Tree::grow(&x, 1, &g, &h, &rows, &[0], GrowParams { gamma: 1.0, ..PARAMS });
        assert_eq!(strict.n_leaves(), 1, "gamma suppresses the weak split");
    }

    #[test]
    fn min_child_weight_blocks_tiny_children() {
        let x = vec![0.0, 1.0, 2.0, 3.0];
        let y = vec![5.0, 0.0, 0.0, 0.0];
        let (g, h) = stats(&y);
        let rows: Vec<u32> = (0..4).collect();
        let tree =
            Tree::grow(&x, 1, &g, &h, &rows, &[0], GrowParams { min_child_weight: 2.0, ..PARAMS });
        // The best cut (isolating row 0) is forbidden; only the 2/2 cut
        // remains admissible.
        for n in tree.nodes() {
            if let Node::Split { threshold, .. } = n {
                assert!((*threshold - 1.5).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn two_dimensional_split() {
        // y depends only on feature 1.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            x.push((i % 5) as f64); // feature 0: noise
            x.push(i as f64); // feature 1: informative
            y.push(if i < 10 { 1.0 } else { -1.0 });
        }
        let (g, h) = stats(&y);
        let rows: Vec<u32> = (0..20).collect();
        let tree = Tree::grow(&x, 2, &g, &h, &rows, &[0, 1], PARAMS);
        if let Node::Split { feature, .. } = &tree.nodes()[0] {
            assert_eq!(*feature, 1, "root splits on the informative feature");
        } else {
            panic!("expected a split at the root");
        }
    }

    #[test]
    fn nan_goes_right() {
        let x = vec![0.0, 1.0, 2.0, 3.0];
        let y = vec![4.0, 4.0, -4.0, -4.0];
        let (g, h) = stats(&y);
        let rows: Vec<u32> = (0..4).collect();
        let tree = Tree::grow(&x, 1, &g, &h, &rows, &[0], PARAMS);
        let on_nan = tree.predict_row(&[f64::NAN]);
        let on_right = tree.predict_row(&[100.0]);
        assert_eq!(on_nan, on_right);
    }
}

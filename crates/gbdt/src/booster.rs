//! The boosting loop: additive training of regression trees on the
//! squared-error objective with shrinkage and row/column subsampling.

use crate::tree::{GrowParams, Tree};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters of the boosted regressor. Defaults mirror XGBoost's.
#[derive(Debug, Clone, Copy)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Learning rate η (shrinkage on each tree's contribution).
    pub learning_rate: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// L2 regularisation λ on leaf weights.
    pub lambda: f64,
    /// Minimum split gain γ.
    pub gamma: f64,
    /// Minimum hessian sum per child.
    pub min_child_weight: f64,
    /// Row subsample fraction per tree in (0, 1].
    pub subsample: f64,
    /// Column subsample fraction per tree in (0, 1].
    pub colsample: f64,
    /// RNG seed for the subsampling.
    pub seed: u64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_rounds: 60,
            learning_rate: 0.3,
            max_depth: 4,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 1.0,
            colsample: 1.0,
            seed: 0,
        }
    }
}

/// A fitted gradient-boosted regressor.
///
/// ```
/// use navarchos_gbdt::{GbdtParams, GbdtRegressor};
///
/// // y = 2·x over x in 0..32
/// let x: Vec<f64> = (0..32).map(|i| i as f64).collect();
/// let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
/// let model = GbdtRegressor::fit(&x, 1, &y, &GbdtParams::default());
/// assert!((model.predict(&[10.0]) - 20.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct GbdtRegressor {
    base_score: f64,
    learning_rate: f64,
    trees: Vec<Tree>,
    dim: usize,
}

impl GbdtRegressor {
    /// Fits the regressor on row-major features `x` (`n × dim`) and
    /// targets `y`.
    ///
    /// # Panics
    /// If shapes disagree, the dataset is empty, or parameters are out of
    /// range.
    pub fn fit(x: &[f64], dim: usize, y: &[f64], params: &GbdtParams) -> Self {
        assert!(dim > 0 && x.len() == y.len() * dim, "shape mismatch");
        assert!(!y.is_empty(), "empty dataset");
        assert!(params.learning_rate > 0.0 && params.learning_rate <= 1.0);
        assert!(params.subsample > 0.0 && params.subsample <= 1.0);
        assert!(params.colsample > 0.0 && params.colsample <= 1.0);
        let n = y.len();
        let base_score = y.iter().sum::<f64>() / n as f64;

        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut pred = vec![base_score; n];
        let mut grad = vec![0.0; n];
        let hess = vec![1.0; n]; // squared loss
        let grow = GrowParams {
            max_depth: params.max_depth,
            lambda: params.lambda,
            gamma: params.gamma,
            min_child_weight: params.min_child_weight,
        };

        let all_rows: Vec<u32> = (0..n as u32).collect();
        let all_features: Vec<usize> = (0..dim).collect();
        let n_sub = ((n as f64 * params.subsample).round() as usize).clamp(2, n);
        let n_col = ((dim as f64 * params.colsample).round() as usize).clamp(1, dim);

        let mut trees = Vec::with_capacity(params.n_rounds);
        for _ in 0..params.n_rounds {
            for i in 0..n {
                grad[i] = pred[i] - y[i];
            }
            let rows: Vec<u32> = if n_sub < n {
                let mut r = all_rows.clone();
                r.shuffle(&mut rng);
                r.truncate(n_sub);
                r
            } else {
                all_rows.clone()
            };
            let features: Vec<usize> = if n_col < dim {
                let mut f = all_features.clone();
                f.shuffle(&mut rng);
                f.truncate(n_col);
                f.sort_unstable();
                f
            } else {
                all_features.clone()
            };
            let tree = Tree::grow(x, dim, &grad, &hess, &rows, &features, grow);
            for i in 0..n {
                pred[i] += params.learning_rate * tree.predict_row(&x[i * dim..(i + 1) * dim]);
            }
            trees.push(tree);
        }

        GbdtRegressor { base_score, learning_rate: params.learning_rate, trees, dim }
    }

    /// Predicts the target for one feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.dim);
        self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    /// Predicts a whole row-major matrix.
    pub fn predict_batch(&self, x: &[f64]) -> Vec<f64> {
        assert!(x.len() % self.dim == 0);
        x.chunks_exact(self.dim).map(|r| self.predict(r)).collect()
    }

    /// Mean squared error on a dataset.
    pub fn mse(&self, x: &[f64], y: &[f64]) -> f64 {
        let p = self.predict_batch(x);
        p.iter().zip(y).map(|(&a, &b)| (a - b) * (a - b)).sum::<f64>() / y.len() as f64
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Feature dimension expected by `predict`.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream for test data.
    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (*seed >> 11) as f64 / (1u64 << 53) as f64
    }

    fn friedman_like(n: usize) -> (Vec<f64>, Vec<f64>) {
        // y = 10 sin(x0 x1 π) + 20 (x2 − .5)² + 10 x3 + 5 x4
        let mut s = 42u64;
        let mut x = Vec::with_capacity(n * 5);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f64> = (0..5).map(|_| lcg(&mut s)).collect();
            y.push(
                10.0 * (std::f64::consts::PI * row[0] * row[1]).sin()
                    + 20.0 * (row[2] - 0.5) * (row[2] - 0.5)
                    + 10.0 * row[3]
                    + 5.0 * row[4],
            );
            x.extend(row);
        }
        (x, y)
    }

    #[test]
    fn fits_linear_function() {
        let n = 200;
        let mut s = 7u64;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = lcg(&mut s);
            let b = lcg(&mut s);
            x.push(a);
            x.push(b);
            y.push(3.0 * a - 2.0 * b + 1.0);
        }
        let model = GbdtRegressor::fit(&x, 2, &y, &GbdtParams::default());
        let mse = model.mse(&x, &y);
        assert!(mse < 0.05, "training MSE {mse}");
    }

    #[test]
    fn training_loss_decreases_with_rounds() {
        let (x, y) = friedman_like(300);
        let mut last = f64::INFINITY;
        for rounds in [5, 20, 80] {
            let model = GbdtRegressor::fit(
                &x,
                5,
                &y,
                &GbdtParams { n_rounds: rounds, ..Default::default() },
            );
            let mse = model.mse(&x, &y);
            assert!(mse < last, "rounds={rounds} mse={mse} last={last}");
            last = mse;
        }
        assert!(last < 1.0, "final training MSE {last}");
    }

    #[test]
    fn generalizes_to_holdout() {
        let (x, y) = friedman_like(600);
        let (x_tr, x_te) = x.split_at(400 * 5);
        let (y_tr, y_te) = y.split_at(400);
        let model = GbdtRegressor::fit(
            x_tr,
            5,
            y_tr,
            &GbdtParams { n_rounds: 120, learning_rate: 0.15, ..Default::default() },
        );
        let mse = model.mse(x_te, y_te);
        // Target variance is ≈ 24; a useful model must beat it comfortably.
        assert!(mse < 6.0, "holdout MSE {mse}");
    }

    #[test]
    fn higher_loss_on_shifted_distribution() {
        // The anomaly-detection property the paper relies on: a regressor
        // trained on healthy data yields larger errors when the
        // relationship between features changes.
        let n = 400;
        let mut s = 11u64;
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = lcg(&mut s);
            let b = a * 0.8 + 0.2 * lcg(&mut s); // b correlated with a
            x.push(a);
            x.push(b);
            y.push(2.0 * a + 3.0 * b);
        }
        let model = GbdtRegressor::fit(&x, 2, &y, &GbdtParams::default());
        // Healthy holdout drawn from the same joint distribution.
        let mut healthy_err = 0.0;
        let mut shifted_err = 0.0;
        let m = 200;
        for _ in 0..m {
            let a = lcg(&mut s);
            let b = a * 0.8 + 0.2 * lcg(&mut s);
            let p = model.predict(&[a, b]);
            healthy_err += (p - (2.0 * a + 3.0 * b)).abs();
            // Shifted: the a↔b relationship breaks (b independent).
            let b2 = lcg(&mut s);
            let p2 = model.predict(&[a, b2]);
            shifted_err += (p2 - (2.0 * a + 3.0 * b2)).abs();
        }
        assert!(shifted_err > 1.5 * healthy_err, "shifted {shifted_err} vs healthy {healthy_err}");
    }

    #[test]
    fn subsampling_is_deterministic_given_seed() {
        let (x, y) = friedman_like(200);
        let p = GbdtParams { subsample: 0.7, colsample: 0.6, seed: 5, ..Default::default() };
        let a = GbdtRegressor::fit(&x, 5, &y, &p);
        let b = GbdtRegressor::fit(&x, 5, &y, &p);
        let probe = &x[..5];
        assert_eq!(a.predict(probe), b.predict(probe));
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let y = vec![7.5; 40];
        let model = GbdtRegressor::fit(&x, 1, &y, &GbdtParams::default());
        assert!((model.predict(&[3.0]) - 7.5).abs() < 1e-9);
        assert!((model.predict(&[1000.0]) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn predict_batch_matches_predict() {
        let (x, y) = friedman_like(50);
        let model =
            GbdtRegressor::fit(&x, 5, &y, &GbdtParams { n_rounds: 10, ..Default::default() });
        let batch = model.predict_batch(&x);
        for i in 0..50 {
            assert_eq!(batch[i], model.predict(&x[i * 5..(i + 1) * 5]));
        }
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        GbdtRegressor::fit(&[1.0, 2.0, 3.0], 2, &[1.0], &GbdtParams::default());
    }
}

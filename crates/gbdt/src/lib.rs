//! Gradient-boosted regression trees in the style of XGBoost (Chen &
//! Guestrin, KDD 2016): second-order boosting with regularised leaf
//! weights, exact greedy splits, shrinkage and row/column subsampling.
//!
//! The paper instantiates framework step 3 with one XGBoost regressor per
//! PID feature, each trained on the healthy reference `Ref` to predict its
//! target feature from the remaining ones; the prediction loss on new data
//! is the anomaly score (Section 3.6). Datasets in that role are small
//! (hundreds to thousands of rows, ≤ 15 features), squarely inside
//! exact-greedy territory — no histogram approximation is needed.

pub mod booster;
pub mod tree;

pub use booster::{GbdtParams, GbdtRegressor};
pub use tree::{Node, Tree};

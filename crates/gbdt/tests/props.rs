//! Property-based tests for the gradient-boosted trees.

use navarchos_gbdt::{GbdtParams, GbdtRegressor};
use proptest::prelude::*;

fn dataset(n: std::ops::Range<usize>) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), n).prop_map(|rows| {
        let mut x = Vec::with_capacity(rows.len() * 2);
        let mut y = Vec::with_capacity(rows.len());
        for (a, b) in rows {
            x.push(a);
            x.push(b);
            y.push(a - 0.5 * b);
        }
        (x, y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn predictions_finite_and_bounded((x, y) in dataset(8..64)) {
        let model = GbdtRegressor::fit(&x, 2, &y, &GbdtParams { n_rounds: 20, ..Default::default() });
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for row in x.chunks(2) {
            let p = model.predict(row);
            prop_assert!(p.is_finite());
            // Tree ensembles on squared loss cannot extrapolate beyond the
            // target range (leaf weights are shrunk averages).
            prop_assert!(p >= lo - 1.0 && p <= hi + 1.0, "p={p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn more_rounds_do_not_hurt_training_loss((x, y) in dataset(16..64)) {
        let few = GbdtRegressor::fit(&x, 2, &y, &GbdtParams { n_rounds: 5, ..Default::default() });
        let many = GbdtRegressor::fit(&x, 2, &y, &GbdtParams { n_rounds: 40, ..Default::default() });
        prop_assert!(many.mse(&x, &y) <= few.mse(&x, &y) + 1e-9);
    }

    #[test]
    fn deterministic_given_seed((x, y) in dataset(10..40)) {
        let p = GbdtParams { n_rounds: 10, subsample: 0.8, colsample: 0.5, seed: 3, ..Default::default() };
        let a = GbdtRegressor::fit(&x, 2, &y, &p);
        let b = GbdtRegressor::fit(&x, 2, &y, &p);
        for row in x.chunks(2).take(8) {
            prop_assert_eq!(a.predict(row), b.predict(row));
        }
    }

    #[test]
    fn constant_target_learned_exactly(c in -100.0f64..100.0, n in 4usize..40) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y = vec![c; n];
        let model = GbdtRegressor::fit(&x, 1, &y, &GbdtParams::default());
        prop_assert!((model.predict(&[0.0]) - c).abs() < 1e-6);
    }
}

//! Probability distributions used by the hypothesis tests: the standard
//! normal and the chi-squared family.

use crate::special::{erf, erfc, gamma_p, gamma_q};

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal survival function (1 − CDF), computed through `erfc` for
/// accuracy in the upper tail.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile function (inverse CDF), Acklam's rational
/// approximation polished with one Halley step; absolute error ≲ 1e-9.
pub fn normal_quantile(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    // In [0, 1] after the range check, so `<=`/`>=` hit exactly the ends.
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Chi-squared cumulative distribution function with `k` degrees of freedom.
pub fn chi_squared_cdf(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(k / 2.0, x / 2.0)
}

/// Chi-squared survival function (upper-tail p-value) with `k` degrees of
/// freedom — this is the p-value of the Friedman statistic.
pub fn chi_squared_sf(x: f64, k: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-6);
        assert!((normal_cdf(1.0) - 0.841_344_746).abs() < 1e-6);
    }

    #[test]
    fn normal_sf_complements_cdf() {
        for &x in &[-3.0, -1.0, 0.0, 0.5, 2.7] {
            assert!((normal_cdf(x) + normal_sf(x) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-8, "p={p} x={x}");
        }
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(-0.1).is_nan());
    }

    #[test]
    fn normal_pdf_symmetric_and_peaked() {
        assert!((normal_pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-15);
    }

    #[test]
    fn chi_squared_known_values() {
        // Chi-squared with k=2 is Exp(1/2): CDF(x) = 1 - exp(-x/2).
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            assert!((chi_squared_cdf(x, 2.0) - (1.0 - (-x / 2.0f64).exp())).abs() < 1e-10);
        }
        // 95th percentile of chi2(3) is about 7.8147.
        assert!((chi_squared_sf(7.8147, 3.0) - 0.05).abs() < 1e-4);
    }

    #[test]
    fn chi_squared_edges() {
        assert_eq!(chi_squared_cdf(0.0, 4.0), 0.0);
        assert_eq!(chi_squared_sf(0.0, 4.0), 1.0);
        assert_eq!(chi_squared_cdf(-1.0, 4.0), 0.0);
    }
}

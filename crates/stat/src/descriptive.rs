//! Descriptive statistics: batch helpers plus an incremental (Welford)
//! accumulator used throughout the pipeline for thresholding and aggregation.

/// Arithmetic mean of a slice. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n − 1 denominator). Returns `NaN` for fewer than
/// two observations.
pub fn sample_var(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_var(xs).sqrt()
}

/// Population variance (n denominator). Returns `NaN` for an empty slice.
pub fn population_var(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Median of a slice (average of the two central order statistics for even
/// lengths). Returns `NaN` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile (the "linear" method of NumPy), `q` in
/// [0, 1]. Returns `NaN` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&v, q)
}

/// Quantile of an already-sorted slice; avoids the copy in [`quantile`].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Minimum of a slice ignoring NaNs. Returns `NaN` if no finite value exists.
pub fn min_finite(xs: &[f64]) -> f64 {
    xs.iter().copied().filter(|x| x.is_finite()).fold(f64::NAN, |acc, x| {
        if acc.is_nan() || x < acc {
            x
        } else {
            acc
        }
    })
}

/// Maximum of a slice ignoring NaNs. Returns `NaN` if no finite value exists.
pub fn max_finite(xs: &[f64]) -> f64 {
    xs.iter().copied().filter(|x| x.is_finite()).fold(f64::NAN, |acc, x| {
        if acc.is_nan() || x > acc {
            x
        } else {
            acc
        }
    })
}

/// Numerically stable streaming mean/variance accumulator (Welford's
/// algorithm). Used by the self-tuning threshold and the day-level
/// aggregation so that a single pass over the data suffices.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`NaN` while empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` below two observations).
    pub fn sample_var(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_var().sqrt()
    }

    /// Population variance (`NaN` while empty).
    pub fn population_var(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Smallest observation so far (`NaN` while empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation so far (`NaN` while empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford update).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl crate::snapshot::Snapshot for RunningStats {
    fn write_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_u64(self.n);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }
}

impl crate::snapshot::Restore for RunningStats {
    fn read_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        self.n = r.get_u64()?;
        self.mean = r.get_f64()?;
        self.m2 = r.get_f64()?;
        self.min = r.get_f64()?;
        self.max = r.get_f64()?;
        Ok(())
    }
}

/// Z-score of `x` with respect to a reference `mean` and `std`.
///
/// A zero or non-finite `std` yields 0 when `x == mean` and ±`f64::INFINITY`
/// otherwise, which keeps downstream comparisons meaningful on degenerate
/// references.
pub fn zscore(x: f64, mean: f64, std: f64) -> f64 {
    if std > 0.0 && std.is_finite() {
        (x - mean) / std
    } else {
        // Degenerate spread: sign of the deviation only. `partial_cmp`
        // makes the NaN case explicit (NaN in, NaN out).
        match x.partial_cmp(&mean) {
            Some(std::cmp::Ordering::Equal) => 0.0,
            Some(std::cmp::Ordering::Greater) => f64::INFINITY,
            Some(std::cmp::Ordering::Less) => f64::NEG_INFINITY,
            None => f64::NAN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn var_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // Known example: population variance 4, sample variance 32/7.
        assert!((population_var(&xs) - 4.0).abs() < 1e-12);
        assert!((sample_var(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((sample_std(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(sample_var(&[1.0]).is_nan());
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 1.0 / 3.0) - 20.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -1.0), 1.0);
        assert_eq!(quantile(&xs, 2.0), 2.0);
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [1.5, -2.0, 3.25, 0.0, 10.0, -7.5];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.sample_var() - sample_var(&xs)).abs() < 1e-12);
        assert_eq!(rs.min(), -7.5);
        assert_eq!(rs.max(), 10.0);
        assert_eq!(rs.count(), 6);
    }

    #[test]
    fn running_stats_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        let mut full = RunningStats::new();
        for &x in &xs {
            full.push(x);
        }
        assert!((a.mean() - full.mean()).abs() < 1e-10);
        assert!((a.sample_var() - full.sample_var()).abs() < 1e-10);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.mean(), a.sample_var(), a.count());
        a.merge(&RunningStats::new());
        assert_eq!(before, (a.mean(), a.sample_var(), a.count()));

        let mut e = RunningStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zscore_degenerate_std() {
        assert_eq!(zscore(5.0, 5.0, 0.0), 0.0);
        assert_eq!(zscore(6.0, 5.0, 0.0), f64::INFINITY);
        assert_eq!(zscore(4.0, 5.0, 0.0), f64::NEG_INFINITY);
        assert!((zscore(7.0, 5.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_finite_skip_nan() {
        let xs = [f64::NAN, 3.0, -1.0, f64::NAN, 2.0];
        assert_eq!(min_finite(&xs), -1.0);
        assert_eq!(max_finite(&xs), 3.0);
        assert!(min_finite(&[f64::NAN]).is_nan());
    }
}

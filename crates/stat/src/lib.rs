//! Statistical foundation for the Navarchos PdM workspace.
//!
//! This crate provides every piece of statistics the paper's pipeline and
//! evaluation rely on:
//!
//! * [`descriptive`] — means, variances, medians, quantiles and incremental
//!   (Welford) accumulators used by thresholding and aggregation.
//! * [`correlation`] — Pearson / Spearman correlation and condensed pairwise
//!   correlation vectors (the paper's *correlation transformation*).
//! * [`incremental`] — incremental sliding-window kernels (condensed-pair
//!   Pearson, windowed mean) with O(f²)/O(f) push-evict, behind the
//!   streaming transformations' hot path.
//! * [`special`] — log-gamma, error function and regularised incomplete gamma
//!   used by the distributions.
//! * [`dist`] — normal and chi-squared distributions for hypothesis tests.
//! * [`ranking`] — Friedman test, Wilcoxon signed-rank test, Holm correction
//!   and the average-rank "critical diagram" analysis used in Figures 6 and 7
//!   of the paper (the `autorank` procedure).
//! * [`martingale`] — conformal p-values and the power-martingale
//!   exchangeability test (Dai & Bouguelia) behind the Grand detector.
//! * [`drift`] — sequential change detectors (CUSUM, Page–Hinkley, EWMA
//!   chart) for the concept-drift monitoring extension: catching the
//!   *unrecorded* baseline shifts the paper's discussion section blames
//!   for most of the task's difficulty.
//! * [`snapshot`] — the framed-binary checkpoint codec and the
//!   [`Snapshot`]/[`Restore`] traits every stateful kernel implements so
//!   serving processes can checkpoint and resume byte-identically.

pub mod correlation;
pub mod descriptive;
pub mod dist;
pub mod drift;
pub mod incremental;
pub mod martingale;
pub mod ranking;
pub mod snapshot;
pub mod special;

pub use correlation::{pearson, spearman, CorrelationPairs};
pub use descriptive::{mean, median, quantile, sample_std, sample_var, RunningStats};
pub use dist::{chi_squared_sf, normal_cdf, normal_quantile, normal_sf};
pub use drift::{Cusum, EwmaChart, PageHinkley, ShiftDirection, TwoSidedCusum};
pub use incremental::{IncrementalMean, IncrementalPearson};
pub use martingale::{conformal_pvalue, PowerMartingale};
pub use ranking::{
    average_ranks, friedman_test, holm_correction, wilcoxon_signed_rank, RankAnalysis,
};
pub use snapshot::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

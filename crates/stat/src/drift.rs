//! Sequential change/drift detectors: CUSUM, Page–Hinkley and the EWMA
//! control chart.
//!
//! The paper's discussion section attributes most of the framework's
//! difficulty to *concept drift*: services and repairs shift a vehicle's
//! operating baseline, and unrecorded events shift it silently. The
//! framework answers drift by resetting the reference profile on recorded
//! events; these classical sequential tests are the complementary tool for
//! detecting the *unrecorded* shifts, and back the drift-monitoring
//! extension described in DESIGN.md.
//!
//! All three detectors share the same contract: feed observations one at a
//! time with `update`, which returns `true` on the step where a change is
//! declared. After an alarm the statistic resets so the detector can be
//! left running.

/// One-sided CUSUM (cumulative sum) change detector.
///
/// Tracks `S_t = max(0, S_{t-1} + (x_t - target - slack))` and alarms when
/// `S_t` exceeds `threshold`. With `target` set to the in-control mean and
/// `slack` to half the shift magnitude worth detecting (both in the units
/// of the observations), this is the classical Page CUSUM for an upward
/// mean shift. Wrap observations in a sign flip to watch for downward
/// shifts, or run a [`TwoSidedCusum`].
///
/// ```
/// use navarchos_stat::drift::Cusum;
///
/// let mut cusum = Cusum::new(0.0, 0.5, 4.0);
/// // In control: nothing accumulates.
/// assert!((0..100).all(|i| !cusum.update(if i % 2 == 0 { 0.4 } else { -0.4 })));
/// // A persistent +2 shift alarms within a few samples.
/// assert!((0..10).any(|_| cusum.update(2.0)));
/// ```
#[derive(Debug, Clone)]
pub struct Cusum {
    target: f64,
    slack: f64,
    threshold: f64,
    statistic: f64,
}

impl Cusum {
    /// Creates a detector for upward shifts away from `target`.
    ///
    /// # Panics
    /// Panics if `slack` is negative or `threshold` is not positive.
    pub fn new(target: f64, slack: f64, threshold: f64) -> Self {
        assert!(slack >= 0.0, "slack must be non-negative");
        assert!(threshold > 0.0, "threshold must be positive");
        Cusum { target, slack, threshold, statistic: 0.0 }
    }

    /// Feeds one observation; returns `true` if a change is declared.
    /// The statistic resets to zero after an alarm.
    pub fn update(&mut self, x: f64) -> bool {
        self.statistic = (self.statistic + x - self.target - self.slack).max(0.0);
        if self.statistic > self.threshold {
            self.statistic = 0.0;
            true
        } else {
            false
        }
    }

    /// Current value of the cumulative-sum statistic.
    pub fn statistic(&self) -> f64 {
        self.statistic
    }

    /// Resets the statistic without changing the configuration.
    pub fn reset(&mut self) {
        self.statistic = 0.0;
    }
}

/// Two-sided CUSUM: a pair of one-sided detectors watching for shifts in
/// either direction.
#[derive(Debug, Clone)]
pub struct TwoSidedCusum {
    up: Cusum,
    down: Cusum,
}

/// Which direction a [`TwoSidedCusum`] alarm fired in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftDirection {
    /// The mean shifted upward.
    Up,
    /// The mean shifted downward.
    Down,
}

impl TwoSidedCusum {
    /// Creates a symmetric two-sided detector around `target`.
    pub fn new(target: f64, slack: f64, threshold: f64) -> Self {
        TwoSidedCusum {
            up: Cusum::new(target, slack, threshold),
            down: Cusum::new(-target, slack, threshold),
        }
    }

    /// Feeds one observation; reports the direction if either side alarms.
    /// Both sides reset after any alarm so a step change is reported once.
    pub fn update(&mut self, x: f64) -> Option<ShiftDirection> {
        let up = self.up.update(x);
        let down = self.down.update(-x);
        let hit = if up {
            Some(ShiftDirection::Up)
        } else if down {
            Some(ShiftDirection::Down)
        } else {
            None
        };
        if hit.is_some() {
            self.up.reset();
            self.down.reset();
        }
        hit
    }

    /// The larger of the two one-sided statistics.
    pub fn statistic(&self) -> f64 {
        self.up.statistic().max(self.down.statistic())
    }
}

/// Page–Hinkley test for an upward mean shift with an adaptive baseline.
///
/// Unlike [`Cusum`], the in-control mean is estimated online (the running
/// mean of everything seen so far), so no target has to be supplied — the
/// standard formulation used in the data-stream literature. Alarms when
/// `m_t - min(m_t) > lambda` where `m_t = Σ (x_i - mean_i - delta)`.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    count: u64,
    mean: f64,
    cumulative: f64,
    minimum: f64,
}

impl PageHinkley {
    /// Creates a detector with magnitude tolerance `delta` and alarm
    /// threshold `lambda` (both in observation units).
    ///
    /// # Panics
    /// Panics if `delta` is negative or `lambda` is not positive.
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(delta >= 0.0, "delta must be non-negative");
        assert!(lambda > 0.0, "lambda must be positive");
        PageHinkley { delta, lambda, count: 0, mean: 0.0, cumulative: 0.0, minimum: 0.0 }
    }

    /// Feeds one observation; returns `true` if drift is declared. All
    /// state (including the learned baseline) resets after an alarm.
    pub fn update(&mut self, x: f64) -> bool {
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
        self.cumulative += x - self.mean - self.delta;
        self.minimum = self.minimum.min(self.cumulative);
        if self.cumulative - self.minimum > self.lambda {
            *self = PageHinkley::new(self.delta, self.lambda);
            true
        } else {
            false
        }
    }

    /// Current test statistic `m_t - min(m_t)`.
    pub fn statistic(&self) -> f64 {
        self.cumulative - self.minimum
    }

    /// Number of observations absorbed since the last reset.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been absorbed since the last reset.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// EWMA (exponentially weighted moving average) control chart.
///
/// Maintains `z_t = (1-lambda)·z_{t-1} + lambda·x_t` and alarms when `z_t`
/// leaves the band `mu ± width·sigma·sqrt(lambda/(2-lambda))`, the
/// steady-state control limits of the classical chart. `mu` and `sigma`
/// describe the in-control distribution (take them from a reference
/// profile's holdout, exactly like the framework's self-tuning threshold).
#[derive(Debug, Clone)]
pub struct EwmaChart {
    mu: f64,
    limit: f64,
    lambda: f64,
    z: f64,
    started: bool,
}

impl EwmaChart {
    /// Creates a chart for an in-control N(`mu`, `sigma`²) signal with
    /// smoothing `lambda` ∈ (0, 1] and control-limit width `width` (in
    /// steady-state standard deviations; 3 is the textbook default).
    ///
    /// # Panics
    /// Panics if `lambda` is outside (0, 1], or `sigma`/`width` are not
    /// positive.
    pub fn new(mu: f64, sigma: f64, lambda: f64, width: f64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0, 1]");
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(width > 0.0, "width must be positive");
        let limit = width * sigma * (lambda / (2.0 - lambda)).sqrt();
        EwmaChart { mu, limit, lambda, z: mu, started: false }
    }

    /// Feeds one observation; returns `true` while the smoothed statistic
    /// is outside the control band. The statistic is *not* reset on alarm:
    /// an EWMA chart stays out of control until the process returns, which
    /// is the behaviour operators expect from a monitoring chart.
    pub fn update(&mut self, x: f64) -> bool {
        if self.started {
            self.z += self.lambda * (x - self.z);
        } else {
            // Seed with the first observation so a chart started mid-shift
            // converges from data rather than from the nominal mean.
            self.z = self.mu + self.lambda * (x - self.mu);
            self.started = true;
        }
        (self.z - self.mu).abs() > self.limit
    }

    /// Current smoothed statistic `z_t`.
    pub fn statistic(&self) -> f64 {
        self.z
    }

    /// Distance of the control limits from the centre line.
    pub fn control_limit(&self) -> f64 {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic MINSTD Lehmer generator for noise, as elsewhere in
    /// the workspace's tests.
    struct Lehmer(u64);
    impl Lehmer {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_mul(48_271) % 0x7FFF_FFFF;
            self.0 as f64 / 0x7FFF_FFFF as f64
        }
        /// Approximately N(0,1) via the sum of 12 uniforms.
        fn next_gauss(&mut self) -> f64 {
            (0..12).map(|_| self.next_f64()).sum::<f64>() - 6.0
        }
    }

    #[test]
    fn cusum_ignores_in_control_noise() {
        let mut rng = Lehmer(7);
        let mut c = Cusum::new(0.0, 0.5, 8.0);
        for _ in 0..2_000 {
            assert!(!c.update(rng.next_gauss()), "false alarm in control");
        }
    }

    #[test]
    fn cusum_detects_upward_shift_quickly() {
        let mut rng = Lehmer(11);
        let mut c = Cusum::new(0.0, 0.5, 8.0);
        for _ in 0..200 {
            c.update(rng.next_gauss());
        }
        // Shift of +2 sigma: should alarm within a handful of samples.
        let mut delay = None;
        for i in 0..100 {
            if c.update(rng.next_gauss() + 2.0) {
                delay = Some(i);
                break;
            }
        }
        let delay = delay.expect("shift detected");
        assert!(delay < 20, "detection delay {delay} too long");
    }

    #[test]
    fn cusum_statistic_resets_after_alarm() {
        let mut c = Cusum::new(0.0, 0.0, 5.0);
        assert!(!c.update(4.0));
        assert!(c.update(4.0), "8 > 5 alarms");
        assert_eq!(c.statistic(), 0.0, "reset after alarm");
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn cusum_rejects_non_positive_threshold() {
        let _ = Cusum::new(0.0, 0.5, 0.0);
    }

    #[test]
    fn two_sided_cusum_reports_direction() {
        let mut rng = Lehmer(3);
        let mut c = TwoSidedCusum::new(0.0, 0.5, 8.0);
        for _ in 0..300 {
            assert_eq!(c.update(rng.next_gauss()), None);
        }
        let mut hit = None;
        for _ in 0..100 {
            if let Some(d) = c.update(rng.next_gauss() - 2.0) {
                hit = Some(d);
                break;
            }
        }
        assert_eq!(hit, Some(ShiftDirection::Down));
    }

    #[test]
    fn page_hinkley_adapts_then_detects() {
        let mut rng = Lehmer(19);
        let mut ph = PageHinkley::new(0.2, 15.0);
        // In-control stream at a non-zero mean the detector must learn.
        for _ in 0..1_500 {
            assert!(!ph.update(5.0 + rng.next_gauss()), "false alarm");
        }
        let mut detected = false;
        for _ in 0..300 {
            if ph.update(7.0 + rng.next_gauss()) {
                detected = true;
                break;
            }
        }
        assert!(detected, "Page–Hinkley missed a +2 shift");
        assert!(ph.is_empty(), "state reset after alarm");
    }

    #[test]
    fn ewma_chart_flags_and_recovers() {
        let mut rng = Lehmer(23);
        // Width 4: the textbook 3-sigma chart has an in-control ARL of
        // only ~500 samples, which would make this test flaky by design.
        let mut chart = EwmaChart::new(0.0, 1.0, 0.2, 4.0);
        for _ in 0..1_000 {
            assert!(!chart.update(rng.next_gauss() * 0.9), "false alarm");
        }
        // Sustained +2 sigma shift: the smoothed statistic crosses the band.
        let mut out = 0;
        for _ in 0..60 {
            if chart.update(2.0 + rng.next_gauss() * 0.9) {
                out += 1;
            }
        }
        assert!(out > 30, "chart flagged only {out}/60 shifted samples");
        // Process returns: the chart re-enters control.
        let mut back_in = false;
        for _ in 0..60 {
            if !chart.update(rng.next_gauss() * 0.9) {
                back_in = true;
            }
        }
        assert!(back_in, "chart never recovered");
    }

    #[test]
    fn ewma_limit_formula() {
        let chart = EwmaChart::new(0.0, 2.0, 0.25, 3.0);
        let expected = 3.0 * 2.0 * (0.25f64 / 1.75).sqrt();
        assert!((chart.control_limit() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lambda must be in (0, 1]")]
    fn ewma_rejects_bad_lambda() {
        let _ = EwmaChart::new(0.0, 1.0, 0.0, 3.0);
    }
}

//! Non-parametric comparison of techniques across datasets: Friedman test,
//! Wilcoxon signed-rank test, Holm correction, and the combined
//! average-rank analysis ("critical diagrams") the paper produces with the
//! `autorank` Python package for Figures 6 and 7.

use crate::dist::{chi_squared_sf, normal_sf};

/// Average (fractional) ranks of a slice, 1-based, ties receive the mean of
/// the ranks they span. `[10, 20, 20, 30]` → `[1.0, 2.5, 2.5, 4.0]`.
// float_cmp: tie groups are runs of exactly-equal sorted values; fractional
// ranks must not merge merely-close values.
#[allow(clippy::float_cmp)]
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Result of a Friedman test.
#[derive(Debug, Clone)]
pub struct FriedmanResult {
    /// Chi-squared statistic (tie-corrected).
    pub statistic: f64,
    /// Degrees of freedom (k − 1).
    pub df: f64,
    /// Upper-tail p-value.
    pub p_value: f64,
    /// Average rank of each treatment (rank 1 = smallest value).
    pub avg_ranks: Vec<f64>,
}

/// Friedman test over a `blocks × treatments` matrix of scores. Ranks are
/// assigned within each block with rank 1 going to the *smallest* value;
/// callers comparing "higher is better" metrics should negate their scores
/// (as [`RankAnalysis`] does).
///
/// Requires at least 2 blocks and 2 treatments; ties are handled with
/// average ranks and the standard tie correction.
// float_cmp: the tie-correction term counts runs of exactly-equal sorted
// scores, per the statistic's definition.
#[allow(clippy::float_cmp)]
pub fn friedman_test(scores: &[Vec<f64>]) -> FriedmanResult {
    let n = scores.len();
    assert!(n >= 2, "Friedman test needs at least two blocks");
    let k = scores[0].len();
    assert!(k >= 2, "Friedman test needs at least two treatments");
    assert!(scores.iter().all(|row| row.len() == k), "ragged score matrix");

    let mut rank_sums = vec![0.0; k];
    let mut tie_term = 0.0; // Σ over blocks of Σ (t³ − t) per tie group
    for row in scores {
        let ranks = average_ranks(row);
        for (s, r) in rank_sums.iter_mut().zip(&ranks) {
            *s += r;
        }
        // Count tie group sizes in this block.
        let mut sorted: Vec<f64> = row.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut i = 0;
        while i < k {
            let mut j = i;
            while j + 1 < k && sorted[j + 1] == sorted[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            tie_term += t * t * t - t;
            i = j + 1;
        }
    }
    let nf = n as f64;
    let kf = k as f64;
    let sum_r2: f64 = rank_sums.iter().map(|r| r * r).sum();
    let raw = 12.0 / (nf * kf * (kf + 1.0)) * sum_r2 - 3.0 * nf * (kf + 1.0);
    let correction = 1.0 - tie_term / (nf * kf * (kf * kf - 1.0));
    let statistic = if correction > 0.0 { raw / correction } else { 0.0 };
    let df = kf - 1.0;
    FriedmanResult {
        statistic,
        df,
        p_value: chi_squared_sf(statistic.max(0.0), df),
        avg_ranks: rank_sums.iter().map(|r| r / nf).collect(),
    }
}

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy)]
pub struct WilcoxonResult {
    /// Sum of ranks of positive differences (W⁺).
    pub w_plus: f64,
    /// Sum of ranks of negative differences (W⁻).
    pub w_minus: f64,
    /// Number of non-zero differences actually ranked.
    pub n_used: usize,
    /// Two-sided p-value (exact for ≤ 25 pairs, normal approximation with
    /// tie and continuity correction above).
    pub p_value: f64,
}

/// Two-sided Wilcoxon signed-rank test on paired samples.
///
/// Zero differences are discarded (Wilcoxon's original treatment). With no
/// remaining differences the p-value is 1 (the samples are identical).
// float_cmp: discarding exactly-zero differences and counting exactly-equal
// tie runs are both part of Wilcoxon's definition.
#[allow(clippy::float_cmp)]
pub fn wilcoxon_signed_rank(x: &[f64], y: &[f64]) -> WilcoxonResult {
    assert_eq!(x.len(), y.len(), "paired samples must be equally long");
    let diffs: Vec<f64> = x.iter().zip(y).map(|(&a, &b)| a - b).filter(|d| *d != 0.0).collect();
    let n = diffs.len();
    if n == 0 {
        return WilcoxonResult { w_plus: 0.0, w_minus: 0.0, n_used: 0, p_value: 1.0 };
    }
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = average_ranks(&abs);
    let mut w_plus = 0.0;
    let mut w_minus = 0.0;
    for (d, r) in diffs.iter().zip(&ranks) {
        if *d > 0.0 {
            w_plus += r;
        } else {
            w_minus += r;
        }
    }

    let p_value = if n <= 25 {
        exact_wilcoxon_p(&ranks, w_plus.min(w_minus))
    } else {
        // Normal approximation with tie correction and continuity correction.
        let nf = n as f64;
        let mean = nf * (nf + 1.0) / 4.0;
        let mut tie_term = 0.0;
        let mut sorted = abs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && sorted[j + 1] == sorted[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            tie_term += t * t * t - t;
            i = j + 1;
        }
        let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_term / 48.0;
        if var <= 0.0 {
            1.0
        } else {
            let w = w_plus.min(w_minus);
            let z = (w - mean + 0.5) / var.sqrt();
            (2.0 * normal_sf(-z)).min(1.0)
        }
    };

    WilcoxonResult { w_plus, w_minus, n_used: n, p_value }
}

/// Exact two-sided p-value: P(W ≤ w_obs or W ≥ symmetric counterpart) via
/// dynamic programming on doubled ranks (average ranks are multiples of ½,
/// so doubling yields integers even under ties).
fn exact_wilcoxon_p(ranks: &[f64], w_obs: f64) -> f64 {
    let doubled: Vec<usize> = ranks.iter().map(|r| (r * 2.0).round() as usize).collect();
    let total: usize = doubled.iter().sum();
    // counts[s] = number of sign assignments with doubled W+ equal to s.
    let mut counts = vec![0.0f64; total + 1];
    counts[0] = 1.0;
    for &d in &doubled {
        for s in (d..=total).rev() {
            counts[s] += counts[s - d];
        }
    }
    let n_assignments = 2f64.powi(ranks.len() as i32);
    let w2 = (w_obs * 2.0).round() as usize;
    // Two-sided: by symmetry of the null distribution around total/2,
    // P(min(W+,W-) ≤ w) = P(W+ ≤ w) + P(W+ ≥ total − w).
    let lower: f64 = counts.iter().take(w2.min(total) + 1).sum();
    let upper: f64 = counts.iter().skip(total.saturating_sub(w2)).sum();
    ((lower + upper) / n_assignments).min(1.0)
}

/// Holm step-down correction. Returns adjusted p-values in the original
/// order; adjusted values are monotone and clipped at 1.
pub fn holm_correction(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len();
    let mut idx: Vec<usize> = (0..m).collect();
    idx.sort_by(|&a, &b| p_values[a].total_cmp(&p_values[b]));
    let mut adjusted = vec![0.0; m];
    let mut running_max = 0.0f64;
    for (i, &orig) in idx.iter().enumerate() {
        let adj = ((m - i) as f64 * p_values[orig]).min(1.0);
        running_max = running_max.max(adj);
        adjusted[orig] = running_max;
    }
    adjusted
}

/// Full `autorank`-style analysis: Friedman omnibus test followed by
/// pairwise Wilcoxon signed-rank tests with Holm correction, and a grouping
/// of treatments that are statistically indistinguishable (the horizontal
/// bars of a critical diagram).
#[derive(Debug, Clone)]
pub struct RankAnalysis {
    /// Treatment names in input order.
    pub names: Vec<String>,
    /// Average rank per treatment (rank 1 = best).
    pub avg_ranks: Vec<f64>,
    /// Friedman omnibus result.
    pub friedman: FriedmanResult,
    /// Holm-adjusted pairwise p-values, indexed `[i][j]` (symmetric, 1 on
    /// the diagonal).
    pub pairwise_p: Vec<Vec<f64>>,
    /// Significance level used for grouping.
    pub alpha: f64,
    /// Treatment indices ordered by average rank (best first).
    pub order: Vec<usize>,
    /// Maximal contiguous groups (by rank order) whose members are pairwise
    /// not significantly different — one bar each in a critical diagram.
    pub groups: Vec<Vec<usize>>,
}

impl RankAnalysis {
    /// Runs the analysis on a `blocks × treatments` matrix. When
    /// `higher_is_better` is true (the paper's F0.5 scores), rank 1 goes to
    /// the largest value.
    // needless_range_loop: the pairwise (i, j) loops mirror the upper-
    // triangle indexing of the Holm-corrected p-value matrix.
    #[allow(clippy::needless_range_loop)]
    pub fn new<S: AsRef<str>>(
        scores: &[Vec<f64>],
        names: &[S],
        higher_is_better: bool,
        alpha: f64,
    ) -> Self {
        let k = names.len();
        assert!(scores.iter().all(|r| r.len() == k), "score matrix does not match names");
        let oriented: Vec<Vec<f64>> = scores
            .iter()
            .map(|row| row.iter().map(|&v| if higher_is_better { -v } else { v }).collect())
            .collect();
        let friedman = friedman_test(&oriented);

        // Pairwise Wilcoxon on the raw scores (orientation does not affect
        // two-sided p-values).
        let mut flat_p = Vec::with_capacity(k * (k - 1) / 2);
        for i in 0..k {
            for j in (i + 1)..k {
                let xi: Vec<f64> = scores.iter().map(|r| r[i]).collect();
                let xj: Vec<f64> = scores.iter().map(|r| r[j]).collect();
                flat_p.push(wilcoxon_signed_rank(&xi, &xj).p_value);
            }
        }
        let adjusted = holm_correction(&flat_p);
        let mut pairwise_p = vec![vec![1.0; k]; k];
        let mut it = adjusted.iter();
        for i in 0..k {
            for j in (i + 1)..k {
                // Holm correction preserves length, so the iterator cannot
                // run dry; p = 1 ("no evidence") if that ever regresses.
                let p = it.next().copied().unwrap_or(1.0);
                pairwise_p[i][j] = p;
                pairwise_p[j][i] = p;
            }
        }

        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| friedman.avg_ranks[a].total_cmp(&friedman.avg_ranks[b]));

        // Greedy maximal bars over the rank ordering: a group [s..e] is valid
        // when every pair inside is non-significant at alpha.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut start = 0;
        while start < k {
            let mut end = start;
            'grow: while end + 1 < k {
                for m in start..=end {
                    if pairwise_p[order[m]][order[end + 1]] < alpha {
                        break 'grow;
                    }
                }
                end += 1;
            }
            let group: Vec<usize> = order[start..=end].to_vec();
            // Only keep maximal groups (skip bars fully contained in the
            // previous one).
            let redundant = groups
                .last()
                .map(|last: &Vec<usize>| group.iter().all(|g| last.contains(g)))
                .unwrap_or(false);
            if !redundant {
                groups.push(group);
            }
            start += 1;
            // Fast-forward: restart growth from each position to catch
            // overlapping bars, but skip positions already interior to the
            // last bar's span when the bar extends to the end.
            if end == k - 1 && start > 0 && groups.last().map(|g| g.len()) == Some(k - start + 1) {
                break;
            }
        }

        RankAnalysis {
            names: names.iter().map(|s| s.as_ref().to_string()).collect(),
            avg_ranks: friedman.avg_ranks.clone(),
            friedman,
            pairwise_p,
            alpha,
            order,
            groups,
        }
    }

    /// Whether treatments `i` and `j` differ significantly after Holm
    /// correction.
    pub fn significant(&self, i: usize, j: usize) -> bool {
        i != j && self.pairwise_p[i][j] < self.alpha
    }

    /// Text rendering of the critical diagram: treatments sorted by average
    /// rank with the indistinguishability groups drawn as brackets.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Friedman chi2({:.0}) = {:.3}, p = {:.4}{}\n",
            self.friedman.df,
            self.friedman.statistic,
            self.friedman.p_value,
            if self.friedman.p_value < self.alpha { " (significant)" } else { "" }
        ));
        for &i in &self.order {
            let bars: String =
                self.groups.iter().map(|g| if g.contains(&i) { '█' } else { ' ' }).collect();
            out.push_str(&format!(
                "  {:>5.2}  {:<14} {}\n",
                self.avg_ranks[i], self.names[i], bars
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_with_ties() {
        assert_eq!(average_ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(average_ranks(&[5.0]), vec![1.0]);
        assert_eq!(average_ranks(&[2.0, 2.0, 2.0]), vec![2.0, 2.0, 2.0]);
        assert_eq!(average_ranks(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn friedman_known_example() {
        // Classic textbook example (Conover): 12 blocks, 3 treatments.
        let scores = vec![
            vec![1.0, 3.0, 2.0],
            vec![2.0, 3.0, 1.0],
            vec![1.0, 3.0, 2.0],
            vec![1.0, 2.0, 3.0],
            vec![3.0, 1.0, 2.0],
            vec![2.0, 3.0, 1.0],
            vec![3.0, 2.0, 1.0],
            vec![1.0, 3.0, 2.0],
            vec![1.0, 3.0, 2.0],
            vec![2.0, 1.0, 3.0],
            vec![2.0, 3.0, 1.0],
            vec![1.0, 2.0, 3.0],
        ];
        let res = friedman_test(&scores);
        assert_eq!(res.df, 2.0);
        assert!(res.statistic >= 0.0);
        assert!(res.p_value > 0.0 && res.p_value <= 1.0);
        // Rank sums must total n·k(k+1)/2.
        let sum: f64 = res.avg_ranks.iter().sum::<f64>() * scores.len() as f64;
        assert!((sum - 12.0 * 6.0).abs() < 1e-9);
    }

    #[test]
    fn friedman_strong_effect_is_significant() {
        // Treatment 0 always best, 2 always worst across 10 blocks.
        let scores: Vec<Vec<f64>> =
            (0..10).map(|b| vec![b as f64, b as f64 + 10.0, b as f64 + 20.0]).collect();
        let res = friedman_test(&scores);
        assert!(res.p_value < 0.01, "p={}", res.p_value);
        assert!(res.avg_ranks[0] < res.avg_ranks[1]);
        assert!(res.avg_ranks[1] < res.avg_ranks[2]);
        assert_eq!(res.avg_ranks, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn wilcoxon_identical_samples() {
        let x = [1.0, 2.0, 3.0];
        let res = wilcoxon_signed_rank(&x, &x);
        assert_eq!(res.n_used, 0);
        assert_eq!(res.p_value, 1.0);
    }

    #[test]
    fn wilcoxon_exact_small_example() {
        // n=5, all differences positive: W- = 0, exact two-sided p = 2/32.
        let x = [2.0, 4.0, 6.0, 8.0, 10.0];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0];
        let res = wilcoxon_signed_rank(&x, &y);
        assert_eq!(res.w_minus, 0.0);
        assert_eq!(res.w_plus, 15.0);
        assert!((res.p_value - 2.0 / 32.0).abs() < 1e-12, "p={}", res.p_value);
    }

    #[test]
    fn wilcoxon_symmetric_in_sign() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0];
        let y = [2.0, 3.0, 4.0, 6.0, 5.0, 7.0, 1.0];
        let a = wilcoxon_signed_rank(&x, &y);
        let b = wilcoxon_signed_rank(&y, &x);
        assert!((a.p_value - b.p_value).abs() < 1e-12);
        assert_eq!(a.w_plus, b.w_minus);
    }

    #[test]
    fn wilcoxon_large_sample_normal_path() {
        // n=30 forces the normal approximation; strong one-sided effect.
        let x: Vec<f64> = (0..30).map(|i| i as f64 + 2.0).collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let res = wilcoxon_signed_rank(&x, &y);
        assert!(res.p_value < 0.001, "p={}", res.p_value);
    }

    #[test]
    fn holm_correction_basic() {
        let p = [0.01, 0.04, 0.03, 0.005];
        let adj = holm_correction(&p);
        // Sorted: 0.005*4=0.02, 0.01*3=0.03, 0.03*2=0.06, 0.04*1=0.06 (monotone).
        assert!((adj[3] - 0.02).abs() < 1e-12);
        assert!((adj[0] - 0.03).abs() < 1e-12);
        assert!((adj[2] - 0.06).abs() < 1e-12);
        assert!((adj[1] - 0.06).abs() < 1e-12);
    }

    #[test]
    fn holm_clips_at_one() {
        let adj = holm_correction(&[0.9, 0.8]);
        assert!(adj.iter().all(|&p| p <= 1.0));
    }

    #[test]
    fn rank_analysis_orders_and_groups() {
        // Treatment "good" clearly dominates across 12 blocks; "a" and "b"
        // are noisy equals.
        let mut scores = Vec::new();
        for b in 0..12 {
            let noise = (b as f64 * 0.37).sin() * 0.01;
            scores.push(vec![0.9 + noise, 0.5 - noise, 0.5 + noise]);
        }
        let ra = RankAnalysis::new(&scores, &["good", "a", "b"], true, 0.05);
        assert_eq!(ra.order[0], 0, "dominant treatment ranked first");
        assert!(ra.friedman.p_value < 0.05);
        assert!(ra.significant(0, 1));
        assert!(ra.significant(0, 2));
        assert!(!ra.significant(1, 2));
        // a and b must share a group; good must not share one with them.
        assert!(ra.groups.iter().any(|g| g.contains(&1) && g.contains(&2) && !g.contains(&0)));
        let render = ra.render();
        assert!(render.contains("good"));
    }

    #[test]
    fn render_contains_friedman_and_all_names() {
        let scores: Vec<Vec<f64>> =
            (0..8).map(|b| vec![0.8 + 0.001 * b as f64, 0.4, 0.1]).collect();
        let ra = RankAnalysis::new(&scores, &["best", "mid", "worst"], true, 0.05);
        let text = ra.render();
        assert!(text.contains("Friedman"));
        for name in ["best", "mid", "worst"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        // Rendered order follows average rank.
        let best_pos = text.find("best").unwrap();
        let worst_pos = text.find("worst").unwrap();
        assert!(best_pos < worst_pos);
    }

    #[test]
    fn rank_analysis_lower_is_better() {
        let scores = vec![
            vec![1.0, 5.0],
            vec![2.0, 6.0],
            vec![1.5, 5.5],
            vec![1.2, 5.2],
            vec![0.9, 4.9],
            vec![1.1, 5.1],
        ];
        let ra = RankAnalysis::new(&scores, &["fast", "slow"], false, 0.05);
        assert!(ra.avg_ranks[0] < ra.avg_ranks[1]);
        assert_eq!(ra.order[0], 0);
    }
}

//! Special functions backing the distribution code: log-gamma (Lanczos),
//! the error function, and the regularised incomplete gamma function.

/// Natural log of the gamma function via the Lanczos approximation (g = 7,
/// n = 9 coefficients). Accurate to ~1e-13 for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // inconsistent_digit_grouping: digits follow the published Lanczos
    // coefficients verbatim for easy checking against the source.
    #[allow(clippy::inconsistent_digit_grouping)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its accurate range.
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Error function, computed through the regularised incomplete gamma
/// function: `erf(x) = sign(x) · P(1/2, x²)`. Accurate to ~1e-14.
pub fn erf(x: f64) -> f64 {
    let p = gamma_p(0.5, x * x);
    // `>=` folds x = 0 into the positive branch: gamma_p(1/2, 0) is an
    // exact +0, so no zero shortcut is needed.
    if x >= 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function; uses `Q(1/2, x²)` directly in the upper
/// tail so small tail probabilities keep full relative precision.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Regularised lower incomplete gamma function P(a, x) = γ(a, x) / Γ(a).
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise (Numerical Recipes `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    // x < 0 was mapped to NaN above, so `<=` is exactly the x = 0 boundary.
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularised upper incomplete gamma function Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    // Mirror of `gamma_p`: `<=` is exactly the x = 0 boundary here.
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued-fraction representation.
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=sqrt(pi)
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.3, 1.7, 4.2, 9.9] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(6.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 8.0), (10.0, 3.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-10, "a={a} x={x} p={p} q={q}");
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1, 1.0, 2.5, 7.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut last = 0.0;
        for i in 1..50 {
            let x = i as f64 * 0.3;
            let p = gamma_p(3.0, x);
            assert!(p >= last);
            last = p;
        }
        assert!(last > 0.99);
    }

    #[test]
    fn gamma_invalid_args() {
        assert!(gamma_p(-1.0, 2.0).is_nan());
        assert!(gamma_p(1.0, -2.0).is_nan());
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
    }
}

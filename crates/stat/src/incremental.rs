//! Incremental sliding-window kernels behind the streaming transformations.
//!
//! The paper's correlation transformation emits the condensed pairwise
//! Pearson vector of a sliding window every `stride` records. Recomputing
//! the full window per emission costs O(window · f²) per stride;
//! [`IncrementalPearson`] maintains running sums (Σx, Σx² per signal and
//! Σxy per pair) so that absorbing or evicting one record is O(f²) and an
//! emission is O(f²) regardless of the window length. [`IncrementalMean`]
//! is the analogous O(f) accumulator for the windowed-mean transformation.
//!
//! Both kernels use the pivot-shift + periodic-rebuild anti-drift pattern
//! of `navarchos_tsframe::RollingStats`: samples are accumulated as
//! `x − pivot` with a recent sample as the pivot (so the catastrophic
//! cancellation of naive sliding sums at large offsets cannot occur), and
//! all sums are rebuilt from the buffered rows — with a fresh pivot —
//! after a bounded number of evictions, so floating-point drift cannot
//! accumulate without bound.
//!
//! Eviction is explicit (`pop_front`) rather than capacity-driven because
//! the differenced correlation transform slides a *derived* window: one
//! evicted telemetry record removes at most one difference row, and only
//! the caller knows which.

use std::collections::VecDeque;

use crate::snapshot::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

/// Minimum eviction count between two rebuilds, so near-empty windows do
/// not rebuild on every eviction.
const MIN_REBUILD_PERIOD: usize = 16;

/// An accumulator-derived centered Σd² is trusted only when it is at least
/// this fraction of the signal's absorbed *energy* (the monotone Σd² over
/// every row pushed or evicted since the last rebuild). The running sums
/// carry a cancellation residue of roughly `ops · ε · energy` — comparing
/// against the current Σd² would be circular, since after a varying
/// prefix leaves a now-constant window the current sums are themselves
/// pure residue. Requiring `sxx > 1e-4 · energy` keeps the relative error
/// of a trusted value below ~1e-9; below the threshold the per-signal
/// stats are re-derived from storage with a fresh pivot.
const ACCUMULATOR_TRUST: f64 = 1e-4;

/// Incremental windowed mean over multi-signal rows: O(f) push/evict,
/// O(f) mean extraction.
///
/// ```
/// use navarchos_stat::incremental::IncrementalMean;
///
/// let mut acc = IncrementalMean::new(2);
/// acc.push(&[1.0, 10.0]);
/// acc.push(&[3.0, 30.0]);
/// let mut out = [0.0; 2];
/// acc.means_into(&mut out);
/// assert_eq!(out, [2.0, 20.0]);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalMean {
    width: usize,
    /// Flat row-major raw sample storage (`len · width` values).
    rows: VecDeque<f64>,
    pivot: Vec<f64>,
    /// Σ(x − pivot) per signal.
    sum: Vec<f64>,
    evictions: usize,
    /// Scratch for the evicted row.
    scratch: Vec<f64>,
}

impl IncrementalMean {
    /// Creates the accumulator for rows of `width` signals.
    ///
    /// # Panics
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        IncrementalMean {
            width,
            rows: VecDeque::new(),
            pivot: vec![0.0; width],
            sum: vec![0.0; width],
            evictions: 0,
            scratch: Vec::with_capacity(width),
        }
    }

    /// Number of rows currently buffered.
    pub fn len(&self) -> usize {
        self.rows.len() / self.width
    }

    /// Whether no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Absorbs one row.
    ///
    /// # Panics
    /// Panics if `row.len() != width`.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        debug_assert!(
            row.iter().all(|v| v.is_finite()),
            "incremental kernels expect finite samples (filter upstream)"
        );
        if self.rows.is_empty() {
            self.pivot.clear();
            self.pivot.extend_from_slice(row);
        }
        for ((s, &x), &p) in self.sum.iter_mut().zip(row).zip(&self.pivot) {
            *s += x - p;
        }
        self.rows.extend(row.iter().copied());
    }

    /// Evicts the oldest row (no-op while empty).
    pub fn pop_front(&mut self) {
        if self.rows.len() < self.width {
            return;
        }
        self.scratch.clear();
        let width = self.width;
        self.scratch.extend(self.rows.drain(..width));
        for ((s, &x), &p) in self.sum.iter_mut().zip(&self.scratch).zip(&self.pivot) {
            *s -= x - p;
        }
        self.evictions += 1;
        if self.evictions >= (2 * self.len()).max(MIN_REBUILD_PERIOD) {
            self.rebuild();
        }
    }

    /// Re-derives the pivot and sums from the buffered rows (anti-drift).
    fn rebuild(&mut self) {
        self.evictions = 0;
        let width = self.width;
        let slice = self.rows.make_contiguous();
        let mut chunks = slice.chunks_exact(width);
        self.pivot.clear();
        match chunks.next() {
            Some(front) => self.pivot.extend_from_slice(front),
            None => self.pivot.resize(width, 0.0),
        }
        self.sum.fill(0.0);
        for row in slice.chunks_exact(width) {
            for ((s, &x), &p) in self.sum.iter_mut().zip(row).zip(&self.pivot) {
                *s += x - p;
            }
        }
    }

    /// Writes the per-signal means of the buffered rows into `out`
    /// (`NaN` everywhere while empty).
    ///
    /// # Panics
    /// Panics if `out.len() != width`.
    pub fn means_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.width, "output width mismatch");
        let n = self.len();
        if n == 0 {
            out.fill(f64::NAN);
            return;
        }
        let nf = n as f64;
        for ((o, &s), &p) in out.iter_mut().zip(&self.sum).zip(&self.pivot) {
            *o = p + s / nf;
        }
    }

    /// Clears all buffered state.
    pub fn reset(&mut self) {
        self.rows.clear();
        self.pivot.fill(0.0);
        self.sum.fill(0.0);
        self.evictions = 0;
    }
}

// The accumulators are serialised verbatim — rows, pivot, sums and the
// eviction counter — rather than rebuilt from the rows on restore. A
// rebuild would re-pivot at the current front row, changing the residues
// carried in `sum`, and the eviction counter schedules the *next* rebuild;
// either difference can flip low-order bits of a downstream score, which
// the checkpoint contract (byte-identical alarms) forbids.
impl Snapshot for IncrementalMean {
    fn write_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.width);
        w.put_f64_seq(self.rows.len(), self.rows.iter().copied());
        w.put_f64_slice(&self.pivot);
        w.put_f64_slice(&self.sum);
        w.put_usize(self.evictions);
    }
}

impl Restore for IncrementalMean {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let width = r.get_usize()?;
        if width != self.width {
            return Err(SnapError::Corrupt("IncrementalMean width mismatch"));
        }
        let rows = r.get_f64_vec()?;
        let pivot = r.get_f64_vec()?;
        let sum = r.get_f64_vec()?;
        let evictions = r.get_usize()?;
        if rows.len() % width != 0 || pivot.len() != width || sum.len() != width {
            return Err(SnapError::Corrupt("IncrementalMean state shape mismatch"));
        }
        self.rows.clear();
        self.rows.extend(rows);
        self.pivot = pivot;
        self.sum = sum;
        self.evictions = evictions;
        Ok(())
    }
}

impl Snapshot for IncrementalPearson {
    fn write_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.n_signals);
        w.put_f64_seq(self.rows.len(), self.rows.iter().copied());
        w.put_f64_slice(&self.pivot);
        w.put_f64_slice(&self.sum);
        w.put_f64_slice(&self.sum_sq);
        w.put_f64_slice(&self.sum_xy);
        w.put_f64_slice(&self.energy);
        w.put_usize(self.evictions);
    }
}

impl Restore for IncrementalPearson {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n_signals = r.get_usize()?;
        if n_signals != self.n_signals {
            return Err(SnapError::Corrupt("IncrementalPearson width mismatch"));
        }
        let rows = r.get_f64_vec()?;
        let pivot = r.get_f64_vec()?;
        let sum = r.get_f64_vec()?;
        let sum_sq = r.get_f64_vec()?;
        let sum_xy = r.get_f64_vec()?;
        let energy = r.get_f64_vec()?;
        let evictions = r.get_usize()?;
        if rows.len() % n_signals != 0
            || pivot.len() != n_signals
            || sum.len() != n_signals
            || sum_sq.len() != n_signals
            || energy.len() != n_signals
            || sum_xy.len() != self.n_pairs
        {
            return Err(SnapError::Corrupt("IncrementalPearson state shape mismatch"));
        }
        self.rows.clear();
        self.rows.extend(rows);
        self.pivot = pivot;
        self.sum = sum;
        self.sum_sq = sum_sq;
        self.sum_xy = sum_xy;
        self.energy = energy;
        self.evictions = evictions;
        Ok(())
    }
}

/// Incremental condensed pairwise Pearson over multi-signal rows:
/// O(f²) push/evict, O(f²) correlation extraction — independent of the
/// window length, where the batch recomputation is O(window · f²).
///
/// Produces the same values as
/// [`crate::correlation::CorrelationPairs::condensed_pearson`] over the
/// buffered rows (up to floating-point rounding, bounded by the periodic
/// rebuild), in the same canonical pair order (0,1), (0,2), … and with the
/// same degenerate-signal contract: a (numerically) constant signal zeroes
/// every correlation it participates in, and fewer than two rows yield
/// `NaN`.
#[derive(Debug, Clone)]
pub struct IncrementalPearson {
    n_signals: usize,
    n_pairs: usize,
    /// Flat row-major raw sample storage (`len · n_signals` values).
    rows: VecDeque<f64>,
    pivot: Vec<f64>,
    /// Σ(x − pivot) per signal.
    sum: Vec<f64>,
    /// Σ(x − pivot)² per signal.
    sum_sq: Vec<f64>,
    /// Σ(x − pivot_i)(y − pivot_j) per condensed pair, canonical order.
    sum_xy: Vec<f64>,
    /// Monotone Σ(x − pivot)² over every row absorbed *or* evicted since
    /// the last rebuild: the scale against which cancellation residue in
    /// `sum`/`sum_sq` is bounded (see [`ACCUMULATOR_TRUST`]).
    energy: Vec<f64>,
    evictions: usize,
    /// Scratch: the pivot-shifted row being absorbed or evicted.
    shifted: Vec<f64>,
    /// Scratch: per-signal (sum, centered Σ², degenerate) at extraction.
    stats: Vec<(f64, f64, bool)>,
    /// Scratch: front-pivoted per-signal Σd and Σd², re-derived from the
    /// buffered rows at extraction time (see `fresh_signal_stats`).
    fresh_sum: Vec<f64>,
    fresh_sq: Vec<f64>,
}

impl IncrementalPearson {
    /// Creates the accumulator for rows of `n_signals` signals.
    ///
    /// # Panics
    /// Panics if `n_signals < 2` (no pairs exist below two signals).
    pub fn new(n_signals: usize) -> Self {
        assert!(n_signals >= 2, "pairwise correlation needs at least 2 signals");
        let n_pairs = n_signals * (n_signals - 1) / 2;
        IncrementalPearson {
            n_signals,
            n_pairs,
            rows: VecDeque::new(),
            pivot: vec![0.0; n_signals],
            sum: vec![0.0; n_signals],
            sum_sq: vec![0.0; n_signals],
            sum_xy: vec![0.0; n_pairs],
            energy: vec![0.0; n_signals],
            evictions: 0,
            shifted: Vec::with_capacity(n_signals),
            stats: Vec::with_capacity(n_signals),
            fresh_sum: Vec::with_capacity(n_signals),
            fresh_sq: Vec::with_capacity(n_signals),
        }
    }

    /// Number of underlying signals f.
    pub fn n_signals(&self) -> usize {
        self.n_signals
    }

    /// Number of condensed features f·(f−1)/2.
    pub fn n_pairs(&self) -> usize {
        self.n_pairs
    }

    /// Number of rows currently buffered.
    pub fn len(&self) -> usize {
        self.rows.len() / self.n_signals
    }

    /// Whether no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Applies the pivot-shifted row in `self.shifted` to the sums with
    /// sign `dir` (+1 absorb, −1 evict).
    fn apply_shifted(&mut self, dir: f64) {
        for (((s, q), e), &d) in self
            .sum
            .iter_mut()
            .zip(self.sum_sq.iter_mut())
            .zip(self.energy.iter_mut())
            .zip(&self.shifted)
        {
            *s += dir * d;
            *q += dir * d * d;
            *e += d * d;
        }
        let mut xy = self.sum_xy.iter_mut();
        for (i, &di) in self.shifted.iter().enumerate() {
            for &dj in self.shifted.iter().skip(i + 1) {
                if let Some(s) = xy.next() {
                    *s += dir * di * dj;
                }
            }
        }
    }

    /// Absorbs one row.
    ///
    /// # Panics
    /// Panics if `row.len() != n_signals`.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_signals, "row width mismatch");
        debug_assert!(
            row.iter().all(|v| v.is_finite()),
            "incremental kernels expect finite samples (filter upstream)"
        );
        if self.rows.is_empty() {
            self.pivot.clear();
            self.pivot.extend_from_slice(row);
        }
        self.shifted.clear();
        self.shifted.extend(row.iter().zip(&self.pivot).map(|(&x, &p)| x - p));
        self.apply_shifted(1.0);
        self.rows.extend(row.iter().copied());
    }

    /// Evicts the oldest row (no-op while empty).
    pub fn pop_front(&mut self) {
        if self.rows.len() < self.n_signals {
            return;
        }
        let width = self.n_signals;
        self.shifted.clear();
        // Drain the raw front row, shifting it by the *current* pivot — the
        // same frame every still-buffered row is accumulated in.
        let pivot = std::mem::take(&mut self.pivot);
        self.shifted.extend(self.rows.drain(..width).zip(&pivot).map(|(x, &p)| x - p));
        self.pivot = pivot;
        self.apply_shifted(-1.0);
        self.evictions += 1;
        if self.evictions >= (2 * self.len()).max(MIN_REBUILD_PERIOD) {
            self.rebuild();
        }
    }

    /// Re-derives the pivot and all sums from the buffered rows
    /// (anti-drift).
    fn rebuild(&mut self) {
        self.evictions = 0;
        let width = self.n_signals;
        // Move the storage out so `apply_shifted` can borrow `self`.
        let mut rows = std::mem::take(&mut self.rows);
        let slice = rows.make_contiguous();
        let mut chunks = slice.chunks_exact(width);
        self.pivot.clear();
        match chunks.next() {
            Some(front) => self.pivot.extend_from_slice(front),
            None => self.pivot.resize(width, 0.0),
        }
        self.sum.fill(0.0);
        self.sum_sq.fill(0.0);
        self.sum_xy.fill(0.0);
        self.energy.fill(0.0);
        for row in slice.chunks_exact(width) {
            self.shifted.clear();
            self.shifted.extend(row.iter().zip(&self.pivot).map(|(&x, &p)| x - p));
            self.apply_shifted(1.0);
        }
        self.rows = rows;
    }

    /// Re-derives the per-signal Σd and Σd² from the buffered rows with
    /// the *front* row as pivot, into `shifted` (the pivot) and
    /// `fresh_sum`/`fresh_sq`.
    ///
    /// The accumulated `sum_sq` is pivoted at a possibly stale row; a
    /// window that has become constant then carries an O(ε·n²·M²)
    /// cancellation residue that can exceed the batch `pearson` degeneracy
    /// threshold (which is first-order in the signal magnitude M) and turn
    /// an exactly-zero variance into correlation noise. Re-deriving the
    /// *per-signal* sums from storage is O(len·f) — amortised once per
    /// stride against the O(f²)-per-record pair updates — and makes a
    /// constant signal's variance exactly zero, so the degeneracy contract
    /// matches the batch kernel regardless of pivot staleness.
    fn fresh_signal_stats(&mut self) {
        let width = self.n_signals;
        self.shifted.clear();
        self.shifted.extend(self.rows.iter().take(width).copied());
        self.fresh_sum.clear();
        self.fresh_sum.resize(width, 0.0);
        self.fresh_sq.clear();
        self.fresh_sq.resize(width, 0.0);
        let mut iter = self.rows.iter();
        while iter.len() != 0 {
            for ((s, q), &p) in
                self.fresh_sum.iter_mut().zip(self.fresh_sq.iter_mut()).zip(&self.shifted)
            {
                if let Some(&x) = iter.next() {
                    let d = x - p;
                    *s += d;
                    *q += d * d;
                }
            }
        }
    }

    /// Whether every accumulator-derived centered Σd² dominates its
    /// cancellation residue (see [`ACCUMULATOR_TRUST`]).
    fn accumulators_trusted(&self, nf: f64) -> bool {
        self.sum_sq
            .iter()
            .zip(&self.sum)
            .zip(&self.energy)
            .all(|((&q, &s), &e)| (q - s * s / nf).max(0.0) > ACCUMULATOR_TRUST * e)
    }

    /// Refreshes the per-signal extraction scratch: (accumulator-pivot Σd
    /// for the covariance numerator, centered Σd², degenerate flag
    /// mirroring `correlation::pearson`'s constant-signal contract).
    ///
    /// Fast path: the running sums, O(f). When any signal is close enough
    /// to constant that cancellation could defeat the degeneracy test, the
    /// per-signal stats are re-derived from storage with a fresh pivot
    /// (O(len·f), amortised once per stride).
    fn refresh_stats(&mut self, nf: f64) {
        self.stats.clear();
        if self.accumulators_trusted(nf) {
            for ((&s, &q), &p) in self.sum.iter().zip(&self.sum_sq).zip(&self.pivot) {
                let sxx = (q - s * s / nf).max(0.0);
                let mx = p + s / nf;
                let degenerate = sxx <= f64::EPSILON * nf * mx.abs().max(1.0);
                self.stats.push((s, sxx, degenerate));
            }
        } else {
            self.fresh_signal_stats();
            for (((&s_acc, &fs), &fq), &p) in
                self.sum.iter().zip(&self.fresh_sum).zip(&self.fresh_sq).zip(&self.shifted)
            {
                let sxx = (fq - fs * fs / nf).max(0.0);
                let mx = p + fs / nf;
                let degenerate = sxx <= f64::EPSILON * nf * mx.abs().max(1.0);
                self.stats.push((s_acc, sxx, degenerate));
            }
        }
    }

    /// Writes the condensed pairwise Pearson vector of the buffered rows
    /// into `out` (canonical pair order). With fewer than two rows every
    /// entry is `NaN`; pairs touching a degenerate signal are 0.
    ///
    /// # Panics
    /// Panics if `out.len() != n_pairs`.
    pub fn corr_into(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.n_pairs, "output width mismatch");
        let n = self.len();
        if n < 2 {
            out.fill(f64::NAN);
            return;
        }
        let nf = n as f64;
        self.refresh_stats(nf);
        let mut xy = self.sum_xy.iter();
        let mut slots = out.iter_mut();
        for (i, &(si, sxx_i, deg_i)) in self.stats.iter().enumerate() {
            for &(sj, sxx_j, deg_j) in self.stats.iter().skip(i + 1) {
                if let (Some(&sum_xy), Some(slot)) = (xy.next(), slots.next()) {
                    *slot = if deg_i || deg_j {
                        0.0
                    } else {
                        let sxy = sum_xy - si * sj / nf;
                        (sxy / (sxx_i.sqrt() * sxx_j.sqrt())).clamp(-1.0, 1.0)
                    };
                }
            }
        }
    }

    /// Per-signal unbiased sample variances of the buffered rows, in
    /// signal order (`NaN` with fewer than two rows), matching
    /// `descriptive::sample_var` on the materialised window. Takes `&mut`
    /// because a near-constant signal triggers a fresh front-pivot pass
    /// over storage (see `fresh_signal_stats`); the variance formula is
    /// pivot-invariant, so either source fills the same scratch.
    pub fn sample_vars(&mut self) -> impl Iterator<Item = f64> + '_ {
        let n = self.len();
        let nf = n as f64;
        if n >= 2 && self.accumulators_trusted(nf) {
            self.fresh_sum.clear();
            self.fresh_sum.extend_from_slice(&self.sum);
            self.fresh_sq.clear();
            self.fresh_sq.extend_from_slice(&self.sum_sq);
        } else if n >= 2 {
            self.fresh_signal_stats();
        } else {
            self.fresh_sum.clear();
            self.fresh_sum.resize(self.n_signals, 0.0);
            self.fresh_sq.clear();
            self.fresh_sq.resize(self.n_signals, 0.0);
        }
        self.fresh_sum.iter().zip(&self.fresh_sq).map(move |(&s, &q)| {
            if n < 2 {
                f64::NAN
            } else {
                (q - s * s / nf).max(0.0) / (nf - 1.0)
            }
        })
    }

    /// Clears all buffered state.
    pub fn reset(&mut self) {
        self.rows.clear();
        self.pivot.fill(0.0);
        self.sum.fill(0.0);
        self.sum_sq.fill(0.0);
        self.sum_xy.fill(0.0);
        self.energy.fill(0.0);
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::CorrelationPairs;

    /// Deterministic pseudo-random stream (no external RNG in unit tests).
    fn stream(n: usize, width: usize, scale: f64) -> Vec<Vec<f64>> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..n)
            .map(|_| {
                (0..width)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * scale
                    })
                    .collect()
            })
            .collect()
    }

    fn window_of(rows: &[Vec<f64>], end: usize, window: usize) -> Vec<Vec<f64>> {
        let lo = end.saturating_sub(window);
        let width = rows[0].len();
        (0..width).map(|c| rows[lo..end].iter().map(|r| r[c]).collect()).collect()
    }

    #[test]
    fn pearson_matches_batch_over_sliding_window() {
        let rows = stream(200, 4, 10.0);
        let pairs = CorrelationPairs::new(&["a", "b", "c", "d"]);
        let window = 13;
        let mut acc = IncrementalPearson::new(4);
        let mut out = vec![0.0; 6];
        for (i, row) in rows.iter().enumerate() {
            if acc.len() == window {
                acc.pop_front();
            }
            acc.push(row);
            if acc.len() < 2 {
                continue;
            }
            acc.corr_into(&mut out);
            let win = window_of(&rows, i + 1, window);
            let views: Vec<&[f64]> = win.iter().map(|c| c.as_slice()).collect();
            let reference = pairs.condensed_pearson(&views);
            for (k, (&got, &want)) in out.iter().zip(&reference).enumerate() {
                assert!((got - want).abs() < 1e-9, "pair {k} at {i}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn pearson_constant_signal_zeroes_its_pairs() {
        let mut acc = IncrementalPearson::new(3);
        for i in 0..10 {
            acc.push(&[5.0, i as f64, (i as f64).sin()]);
        }
        let mut out = vec![f64::NAN; 3];
        acc.corr_into(&mut out);
        assert_eq!(out[0], 0.0, "constant~linear");
        assert_eq!(out[1], 0.0, "constant~sin");
        assert!(out[2].abs() <= 1.0 && !out[2].is_nan());
    }

    #[test]
    fn pearson_window_turning_constant_degenerates_cleanly() {
        // A signal that is varying when the pivot is taken and then goes
        // constant at a large magnitude: the stale-pivot accumulator keeps
        // an O(ε·n²·M²) residue in Σd² that would defeat the first-order
        // degeneracy threshold. The fresh front-pivot pass must report the
        // variance as exactly zero, matching the batch kernel.
        let window = 12;
        let mut acc = IncrementalPearson::new(3);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..200 {
            let x = if i < window { (i as f64).sin() * 1e7 } else { 1e7 / 3.0 };
            rows.push(vec![x, (i as f64 * 0.37).cos() * 1e7, i as f64]);
        }
        let pairs = CorrelationPairs::new(&["a", "b", "c"]);
        let mut out = vec![0.0; 3];
        for (i, row) in rows.iter().enumerate() {
            if acc.len() == window {
                acc.pop_front();
            }
            acc.push(row);
            if acc.len() < 2 {
                continue;
            }
            acc.corr_into(&mut out);
            let win = window_of(&rows, i + 1, window);
            let views: Vec<&[f64]> = win.iter().map(|c| c.as_slice()).collect();
            let reference = pairs.condensed_pearson(&views);
            for (k, (&got, &want)) in out.iter().zip(&reference).enumerate() {
                assert!((got - want).abs() < 1e-9, "pair {k} at {i}: {got} vs {want}");
            }
        }
        // The last windows are fully constant in signal 0: its pairs are 0.
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn pearson_underfilled_is_nan() {
        let mut acc = IncrementalPearson::new(2);
        let mut out = [0.0];
        acc.corr_into(&mut out);
        assert!(out[0].is_nan());
        acc.push(&[1.0, 2.0]);
        acc.corr_into(&mut out);
        assert!(out[0].is_nan(), "single row has no correlation");
    }

    #[test]
    fn pearson_drift_rebuild_keeps_precision() {
        // Large-offset stream over many evictions: without the periodic
        // rebuild the naive sliding sums drift visibly.
        let rows = stream(50_000, 2, 3.0);
        let mut acc = IncrementalPearson::new(2);
        let mut out = [0.0];
        for row in &rows {
            let shifted: Vec<f64> = row.iter().map(|v| v + 1e9).collect();
            if acc.len() == 20 {
                acc.pop_front();
            }
            acc.push(&shifted);
        }
        acc.corr_into(&mut out);
        assert!(out[0].is_finite() && out[0].abs() <= 1.0);
    }

    #[test]
    fn pearson_pop_to_empty_then_refill() {
        let mut acc = IncrementalPearson::new(2);
        for i in 0..5 {
            acc.push(&[i as f64, -(i as f64)]);
        }
        for _ in 0..5 {
            acc.pop_front();
        }
        assert!(acc.is_empty());
        acc.pop_front(); // no-op on empty
        for i in 0..4 {
            acc.push(&[i as f64, 2.0 * i as f64]);
        }
        let mut out = [0.0];
        acc.corr_into(&mut out);
        assert!((out[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_vars_match_descriptive() {
        let rows = stream(60, 3, 4.0);
        let mut acc = IncrementalPearson::new(3);
        for (i, row) in rows.iter().enumerate() {
            if acc.len() == 9 {
                acc.pop_front();
            }
            acc.push(row);
            if acc.len() >= 2 {
                let win = window_of(&rows, i + 1, 9);
                for (c, got) in acc.sample_vars().enumerate() {
                    let want = crate::descriptive::sample_var(&win[c]);
                    assert!((got - want).abs() < 1e-9, "signal {c} at {i}");
                }
            }
        }
    }

    #[test]
    fn mean_matches_batch_over_sliding_window() {
        let rows = stream(120, 3, 50.0);
        let window = 7;
        let mut acc = IncrementalMean::new(3);
        let mut out = vec![0.0; 3];
        for (i, row) in rows.iter().enumerate() {
            if acc.len() == window {
                acc.pop_front();
            }
            acc.push(row);
            acc.means_into(&mut out);
            let win = window_of(&rows, i + 1, window);
            for (c, (&got, col)) in out.iter().zip(&win).enumerate() {
                let want = crate::descriptive::mean(col);
                assert!((got - want).abs() < 1e-9, "signal {c} at {i}");
            }
        }
    }

    #[test]
    fn mean_empty_is_nan_and_reset_clears() {
        let mut acc = IncrementalMean::new(2);
        let mut out = [0.0, 0.0];
        acc.means_into(&mut out);
        assert!(out.iter().all(|v| v.is_nan()));
        acc.push(&[1.0, 2.0]);
        acc.reset();
        assert!(acc.is_empty());
        acc.means_into(&mut out);
        assert!(out.iter().all(|v| v.is_nan()));
    }

    #[test]
    #[should_panic(expected = "at least 2 signals")]
    fn pearson_rejects_single_signal() {
        let _ = IncrementalPearson::new(1);
    }
}

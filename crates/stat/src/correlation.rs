//! Correlation measures. The paper's best data transformation computes the
//! Pearson correlation of every pair of PID signals inside a sliding window,
//! producing a condensed vector of f·(f−1)/2 features per window
//! ([`CorrelationPairs`]).

use crate::descriptive::mean;

/// Pearson product-moment correlation of two equally-long slices.
///
/// ```
/// use navarchos_stat::correlation::pearson;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
///
/// Returns 0.0 when either signal is (numerically) constant inside the
/// window: a constant signal carries no co-movement information, and 0 keeps
/// the transformed feature well-defined instead of propagating NaNs through
/// the detectors. Returns `NaN` for mismatched or < 2-element inputs.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return f64::NAN;
    }
    debug_assert!(
        x.iter().chain(y).all(|v| v.is_finite()),
        "pearson expects finite inputs (filter upstream)"
    );
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= f64::EPSILON * x.len() as f64 * mx.abs().max(1.0)
        || syy <= f64::EPSILON * y.len() as f64 * my.abs().max(1.0)
    {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

/// Covariance (population, n denominator) of two equally-long slices.
pub fn covariance(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.is_empty() {
        return f64::NAN;
    }
    let mx = mean(x);
    let my = mean(y);
    x.iter().zip(y).map(|(&a, &b)| (a - mx) * (b - my)).sum::<f64>() / x.len() as f64
}

/// Spearman rank correlation (Pearson on average ranks, robust to monotone
/// but non-linear relationships).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return f64::NAN;
    }
    let rx = crate::ranking::average_ranks(x);
    let ry = crate::ranking::average_ranks(y);
    pearson(&rx, &ry)
}

/// Enumerates the strict upper triangle of an `n × n` pair matrix in row
/// order: (0,1), (0,2), …, (0,n−1), (1,2), … This is the canonical feature
/// ordering of the correlation transformation; detectors report alarms per
/// condensed index and use [`CorrelationPairs::pair_name`] to attribute them
/// back to a signal pair.
#[derive(Debug, Clone)]
pub struct CorrelationPairs {
    names: Vec<String>,
}

impl CorrelationPairs {
    /// Builds the pair enumeration for the given signal names.
    pub fn new<S: AsRef<str>>(signal_names: &[S]) -> Self {
        CorrelationPairs { names: signal_names.iter().map(|s| s.as_ref().to_string()).collect() }
    }

    /// Number of underlying signals f.
    pub fn n_signals(&self) -> usize {
        self.names.len()
    }

    /// Number of condensed features: f·(f−1)/2.
    pub fn n_pairs(&self) -> usize {
        let f = self.names.len();
        f * (f.saturating_sub(1)) / 2
    }

    /// The (i, j) signal indices of condensed feature `k`.
    pub fn pair_indices(&self, k: usize) -> (usize, usize) {
        let n = self.names.len();
        debug_assert!(k < self.n_pairs());
        let mut k = k;
        for i in 0..n {
            let row = n - i - 1;
            if k < row {
                return (i, i + 1 + k);
            }
            k -= row;
        }
        // Out-of-range `k` is caught by the debug_assert above; in release
        // the last valid pair is a harmless clamp for a read-only lookup.
        (n.saturating_sub(2), n.saturating_sub(1))
    }

    /// Condensed feature index of signal pair (i, j) with i < j.
    pub fn condensed_index(&self, i: usize, j: usize) -> usize {
        let n = self.names.len();
        assert!(i < j && j < n, "invalid pair ({i}, {j}) for {n} signals");
        // Elements before row i: sum_{r<i} (n-1-r) = i(n-1) - i(i-1)/2
        i * (2 * n - i - 1) / 2 + (j - i - 1)
    }

    /// Human-readable name "a~b" of condensed feature `k`, used for alarm
    /// explanations.
    pub fn pair_name(&self, k: usize) -> String {
        let (i, j) = self.pair_indices(k);
        format!("{}~{}", self.names[i], self.names[j])
    }

    /// All condensed feature names in order.
    pub fn names(&self) -> Vec<String> {
        (0..self.n_pairs()).map(|k| self.pair_name(k)).collect()
    }

    /// Computes the condensed pairwise Pearson vector over parallel signal
    /// windows: `signals[i]` is the window of signal i; all windows must
    /// have the same length.
    pub fn condensed_pearson(&self, signals: &[&[f64]]) -> Vec<f64> {
        assert_eq!(signals.len(), self.names.len(), "signal count mismatch");
        let mut out = Vec::with_capacity(self.n_pairs());
        for (i, a) in signals.iter().enumerate() {
            for b in signals.iter().skip(i + 1) {
                out.push(pearson(a, b));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_signal_is_zero() {
        let x = [3.0, 3.0, 3.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(pearson(&x, &y), 0.0);
        assert_eq!(pearson(&y, &x), 0.0);
    }

    #[test]
    fn pearson_invalid_inputs() {
        assert!(pearson(&[1.0], &[2.0]).is_nan());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_nan());
    }

    #[test]
    fn pearson_symmetry() {
        let x = [1.0, -2.0, 4.5, 3.3, 0.0];
        let y = [0.5, 1.5, -2.0, 3.0, 2.0];
        assert!((pearson(&x, &y) - pearson(&y, &x)).abs() < 1e-15);
    }

    #[test]
    fn pearson_known_value() {
        // Hand-computed small example.
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0];
        assert!((pearson(&x, &y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn covariance_matches_definition() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 1.0, 4.0, 3.0];
        // means 2.5, 2.5 → cov = ((-1.5)(-0.5)+(-0.5)(-1.5)+(0.5)(1.5)+(1.5)(0.5))/4 = 3.0/4
        assert!((covariance(&x, &y) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        // Pearson is below 1 on the same data.
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn condensed_index_roundtrip() {
        let pairs = CorrelationPairs::new(&["a", "b", "c", "d", "e", "f"]);
        assert_eq!(pairs.n_pairs(), 15);
        for k in 0..pairs.n_pairs() {
            let (i, j) = pairs.pair_indices(k);
            assert!(i < j);
            assert_eq!(pairs.condensed_index(i, j), k, "k={k} i={i} j={j}");
        }
    }

    #[test]
    fn pair_names() {
        let pairs = CorrelationPairs::new(&["rpm", "speed", "coolantTemp"]);
        assert_eq!(pairs.n_pairs(), 3);
        assert_eq!(pairs.pair_name(0), "rpm~speed");
        assert_eq!(pairs.pair_name(1), "rpm~coolantTemp");
        assert_eq!(pairs.pair_name(2), "speed~coolantTemp");
    }

    #[test]
    fn condensed_pearson_matches_scalar() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        let c = [1.0, 3.0, 2.0, 4.0];
        let pairs = CorrelationPairs::new(&["a", "b", "c"]);
        let v = pairs.condensed_pearson(&[&a, &b, &c]);
        assert_eq!(v.len(), 3);
        assert!((v[0] - pearson(&a, &b)).abs() < 1e-15);
        assert!((v[1] - pearson(&a, &c)).abs() < 1e-15);
        assert!((v[2] - pearson(&b, &c)).abs() < 1e-15);
    }

    #[test]
    fn single_signal_has_no_pairs() {
        let pairs = CorrelationPairs::new(&["only"]);
        assert_eq!(pairs.n_pairs(), 0);
        assert!(pairs.names().is_empty());
    }
}

//! Conformal p-values and the power-martingale exchangeability test of
//! Dai & Bouguelia ("Testing exchangeability with martingale for
//! change-point detection"), the statistical engine behind the Grand
//! inductive detector (Section 3.4 of the paper).
//!
//! The pipeline is: non-conformity score → conformal p-value against the
//! reference scores → multiplicative martingale update with the power
//! betting function ε·p^(ε−1) → a deviation level in [0, 1] that a constant
//! threshold is applied to.

/// Smoothed conformal p-value of a new score `s` against reference scores.
///
/// `p = (#{s_i > s} + θ · (#{s_i = s} + 1)) / (n + 1)` with θ drawn by the
/// caller in [0, 1] (pass 0.5 for the deterministic mid-p variant). Larger
/// scores (stranger samples) yield smaller p-values.
// float_cmp: the smoothed p-value's `#{s_i = s}` term is defined on exact
// equality of stored scores; a tolerance would change the distribution.
#[allow(clippy::float_cmp)]
pub fn conformal_pvalue(reference: &[f64], s: f64, theta: f64) -> f64 {
    let n = reference.len();
    let mut greater = 0usize;
    let mut equal = 0usize;
    for &r in reference {
        if r > s {
            greater += 1;
        } else if r == s {
            equal += 1;
        }
    }
    (greater as f64 + theta.clamp(0.0, 1.0) * (equal as f64 + 1.0)) / (n as f64 + 1.0)
}

/// Power martingale over a stream of conformal p-values.
///
/// Under exchangeability (healthy operation) p-values are ~Uniform(0, 1) and
/// the martingale stays near 1; a run of small p-values (consistent
/// strangeness) makes it grow geometrically. We track `log M` for numerical
/// stability and expose a clamped deviation level in [0, 1] suitable for
/// constant thresholding, exactly how Grand consumes it.
#[derive(Debug, Clone)]
pub struct PowerMartingale {
    epsilon: f64,
    log_m: f64,
    /// log-martingale value at which the deviation level saturates at 1.
    log_saturation: f64,
    /// Sliding memory: with `Some(w)`, the martingale forgets contributions
    /// older than `w` updates, preventing permanent saturation after a
    /// transient change (Grand's "incremental" behaviour).
    window: Option<usize>,
    history: Vec<f64>,
}

impl PowerMartingale {
    /// Default betting exponent. Smaller exponents give the log-martingale
    /// a stronger negative drift under exchangeability (ln ε − (ε − 1) =
    /// −0.023 for ε = 0.8 versus −0.003 for the often-quoted 0.92), which
    /// keeps false saturation rare on long healthy streams while still
    /// growing by ≈ +1.2 per update when p-values collapse to 1e-3.
    pub const DEFAULT_EPSILON: f64 = 0.8;

    /// Creates a martingale with betting exponent `epsilon` in (0, 1).
    ///
    /// The deviation level saturates when the martingale reaches 100 (a
    /// conventional "strong evidence" level: by Ville's inequality the
    /// probability of ever exceeding 100 under exchangeability is ≤ 1 %).
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0,1)");
        PowerMartingale {
            epsilon,
            log_m: 0.0,
            log_saturation: 100.0f64.ln(),
            window: None,
            history: Vec::new(),
        }
    }

    /// Restricts the martingale to the most recent `window` updates.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        self.window = Some(window);
        self
    }

    /// Feeds one p-value and returns the updated deviation level.
    pub fn update(&mut self, p: f64) -> f64 {
        let p = p.clamp(1e-12, 1.0);
        let increment = self.epsilon.ln() + (self.epsilon - 1.0) * p.ln();
        self.log_m += increment;
        if let Some(w) = self.window {
            self.history.push(increment);
            if self.history.len() > w {
                let old = self.history.remove(0);
                self.log_m -= old;
            }
        }
        // Standard "restart at 1" floor: without it a long healthy prefix
        // builds unbounded negative debt that masks a genuine later change.
        if self.window.is_none() && self.log_m < 0.0 {
            self.log_m = 0.0;
        }
        self.deviation_level()
    }

    /// Current log-martingale value.
    pub fn log_martingale(&self) -> f64 {
        self.log_m
    }

    /// Deviation level in [0, 1]: `clamp(log M / log 100, 0, 1)`.
    pub fn deviation_level(&self) -> f64 {
        (self.log_m / self.log_saturation).clamp(0.0, 1.0)
    }

    /// Resets the martingale to its initial state (used when the reference
    /// profile is rebuilt after a maintenance event).
    pub fn reset(&mut self) {
        self.log_m = 0.0;
        self.history.clear();
    }
}

impl Default for PowerMartingale {
    fn default() -> Self {
        PowerMartingale::new(Self::DEFAULT_EPSILON)
    }
}

// epsilon / window / log_saturation are configuration (rebuilt by the
// restoring side); log_m and the windowed increment history are the
// streaming state.
impl crate::snapshot::Snapshot for PowerMartingale {
    fn write_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.put_f64(self.log_m);
        w.put_f64_slice(&self.history);
    }
}

impl crate::snapshot::Restore for PowerMartingale {
    fn read_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        let log_m = r.get_f64()?;
        let history = r.get_f64_vec()?;
        if let Some(w) = self.window {
            if history.len() > w {
                return Err(crate::snapshot::SnapError::Corrupt(
                    "PowerMartingale history exceeds window",
                ));
            }
        } else if !history.is_empty() {
            return Err(crate::snapshot::SnapError::Corrupt(
                "PowerMartingale history without a window",
            ));
        }
        self.log_m = log_m;
        self.history = history;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pvalue_extremes() {
        let reference = [1.0, 2.0, 3.0, 4.0];
        // Far stranger than everything: p = θ·1/(n+1), small.
        let p_hi = conformal_pvalue(&reference, 100.0, 0.5);
        assert!((p_hi - 0.5 / 5.0).abs() < 1e-12);
        // Weaker than everything: p = (4 + 0.5)/5, large.
        let p_lo = conformal_pvalue(&reference, -100.0, 0.5);
        assert!((p_lo - 4.5 / 5.0).abs() < 1e-12);
        assert!(p_hi < p_lo);
    }

    #[test]
    fn pvalue_handles_ties() {
        let reference = [2.0, 2.0, 2.0];
        // greater=0, equal=3 → p = θ·4/4 = θ.
        assert!((conformal_pvalue(&reference, 2.0, 0.5) - 0.5).abs() < 1e-12);
        assert!((conformal_pvalue(&reference, 2.0, 0.0) - 0.0).abs() < 1e-12);
        assert!((conformal_pvalue(&reference, 2.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pvalue_in_unit_interval() {
        let reference: Vec<f64> = (0..50).map(|i| i as f64).collect();
        for s in [-5.0, 0.0, 12.5, 49.0, 80.0] {
            for theta in [0.0, 0.3, 1.0] {
                let p = conformal_pvalue(&reference, s, theta);
                assert!((0.0..=1.0).contains(&p), "p={p}");
            }
        }
    }

    #[test]
    fn martingale_grows_on_small_pvalues() {
        let mut m = PowerMartingale::default();
        let mut dev = 0.0;
        for _ in 0..50 {
            dev = m.update(0.01);
        }
        assert!((dev - 1.0).abs() < 1e-12, "saturates under persistent strangeness");
        assert!(m.log_martingale() > 0.0);
    }

    #[test]
    fn martingale_stays_low_on_uniform_pvalues() {
        let mut m = PowerMartingale::default();
        // Deterministic pseudo-uniform sequence (Lehmer / MINSTD generator).
        let mut x: u64 = 123_456_789;
        let mut max_dev = 0.0f64;
        for _ in 0..2000 {
            x = x.wrapping_mul(48_271) % 0x7fff_ffff;
            let p = x as f64 / 0x7fff_ffff as f64;
            max_dev = max_dev.max(m.update(p.clamp(1e-6, 1.0)));
        }
        assert!(max_dev < 0.8, "max deviation {max_dev} under exchangeability");
    }

    #[test]
    fn martingale_reset_clears_state() {
        let mut m = PowerMartingale::default();
        for _ in 0..30 {
            m.update(0.01);
        }
        assert!(m.deviation_level() > 0.5);
        m.reset();
        assert_eq!(m.deviation_level(), 0.0);
        assert_eq!(m.log_martingale(), 0.0);
    }

    #[test]
    fn windowed_martingale_recovers_after_transient() {
        let mut m = PowerMartingale::default().with_window(20);
        for _ in 0..40 {
            m.update(0.001);
        }
        assert!(m.deviation_level() > 0.9);
        for _ in 0..60 {
            m.update(0.9);
        }
        assert!(m.deviation_level() < 0.2, "window lets the martingale decay");
    }

    #[test]
    #[should_panic]
    fn invalid_epsilon_panics() {
        PowerMartingale::new(1.5);
    }
}

//! Framed-binary snapshot codec and the `Snapshot`/`Restore` traits.
//!
//! Every piece of per-vehicle mutable state in the workspace — incremental
//! transform accumulators, window cadences, reference profiles, tuned
//! thresholds, detector streaming state, reorder buffers — serialises
//! through this module so a serving process can checkpoint at an arbitrary
//! record, restart, and resume with **byte-identical** alarms.
//!
//! Design rules:
//!
//! * Little-endian fixed-width integers; `f64` travels as raw IEEE-754 bits
//!   via [`f64::to_bits`], so restore reproduces the exact value including
//!   negative zero, subnormals and NaN payloads. Byte-identical alarms are
//!   only possible because nothing is ever re-derived through a different
//!   floating-point path.
//! * Every read is bounds-checked and returns `Result` — a truncated or
//!   corrupted snapshot yields [`SnapError`], never a panic (the workspace
//!   L11 panic-freedom lint covers this crate).
//! * Sequences are length-prefixed (`u64`); readers validate the prefix
//!   against the remaining buffer before allocating, so a corrupt length
//!   cannot trigger a pathological allocation.
//! * Types restore **in place**: construct from config first, then
//!   [`Restore::read_state`] overwrites the mutable state, validating
//!   structural invariants against the already-configured shape and
//!   returning [`SnapError::Corrupt`] on mismatch.

use std::error::Error;
use std::fmt;

/// Errors surfaced while decoding a snapshot. Decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the value could be read (truncated file).
    UnexpectedEof,
    /// The leading magic string did not match the expected format tag.
    BadMagic,
    /// The format version is one this build does not understand.
    VersionMismatch {
        /// Version found in the snapshot header.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// Structurally invalid data: bad tag, impossible length, or state
    /// that contradicts the configuration it is being restored into.
    Corrupt(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof => write!(f, "snapshot truncated: unexpected end of input"),
            SnapError::BadMagic => write!(f, "snapshot magic mismatch: not a navarchos snapshot"),
            SnapError::VersionMismatch { found, expected } => write!(
                f,
                "snapshot version mismatch: found v{found}, this build supports v{expected}"
            ),
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl Error for SnapError {}

/// Append-only writer producing the framed-binary snapshot encoding.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as `u64` (lossless on every supported target).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write an `f64` as its raw IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write `Option<i64>` as a presence byte plus the value.
    pub fn put_opt_i64(&mut self, v: Option<i64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_i64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Write `Option<f64>` as a presence byte plus the raw bits.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_f64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write raw bytes with a length prefix.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Write a length-prefixed sequence of `f64` bit patterns from any
    /// iterator (slices, `VecDeque` halves, etc.).
    pub fn put_f64_seq<I>(&mut self, len: usize, it: I)
    where
        I: IntoIterator<Item = f64>,
    {
        self.put_usize(len);
        let mut written = 0usize;
        for v in it {
            self.put_f64(v);
            written += 1;
        }
        debug_assert_eq!(written, len, "put_f64_seq length prefix mismatch");
    }

    /// Write a length-prefixed slice of `f64`.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_f64_seq(vs.len(), vs.iter().copied());
    }

    /// Write a nested frame: the body produced by `f`, length-prefixed.
    /// Readers can skip or bound nested state without understanding it.
    pub fn put_frame(&mut self, f: impl FnOnce(&mut SnapWriter)) {
        let mut inner = SnapWriter::new();
        f(&mut inner);
        self.put_bytes(&inner.buf);
    }
}

/// Bounds-checked reader over a snapshot byte slice.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Reader over the full slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool; any byte other than 0/1 is corrupt.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool byte out of range")),
        }
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a `usize`; values beyond the platform width are corrupt.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Corrupt("usize overflow"))
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read an `Option<i64>` written by [`SnapWriter::put_opt_i64`].
    pub fn get_opt_i64(&mut self) -> Result<Option<i64>, SnapError> {
        if self.get_bool()? {
            Ok(Some(self.get_i64()?))
        } else {
            Ok(None)
        }
    }

    /// Read an `Option<f64>` written by [`SnapWriter::put_opt_f64`].
    pub fn get_opt_f64(&mut self) -> Result<Option<f64>, SnapError> {
        if self.get_bool()? {
            Ok(Some(self.get_f64()?))
        } else {
            Ok(None)
        }
    }

    /// Read a sequence length and validate it against the bytes actually
    /// remaining (each element occupying at least `elem_size` bytes), so a
    /// corrupt prefix cannot drive a huge allocation.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize, SnapError> {
        let n = self.get_usize()?;
        if elem_size > 0 && n > self.remaining() / elem_size {
            return Err(SnapError::Corrupt("sequence length exceeds buffer"));
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapError> {
        let n = self.get_len(1)?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::Corrupt("invalid utf-8 string"))
    }

    /// Read length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.get_len(1)?;
        self.take(n)
    }

    /// Read a length-prefixed `f64` sequence into a `Vec`.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, SnapError> {
        let n = self.get_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Enter a nested frame written by [`SnapWriter::put_frame`]: returns a
    /// reader restricted to the frame body and advances past it.
    pub fn get_frame(&mut self) -> Result<SnapReader<'a>, SnapError> {
        Ok(SnapReader::new(self.get_bytes()?))
    }

    /// Require that the frame/buffer was consumed exactly — trailing bytes
    /// mean the writer and reader disagree about the format.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(SnapError::Corrupt("trailing bytes after state"))
        }
    }
}

/// Serialise this value's mutable state into a snapshot writer.
///
/// Implementations write *state*, not configuration: the restoring side
/// reconstructs the value from its own configuration first and then calls
/// [`Restore::read_state`], which validates that the snapshot matches the
/// configured shape.
pub trait Snapshot {
    /// Append this value's mutable state to `w`.
    fn write_state(&self, w: &mut SnapWriter);

    /// Convenience: encode the state into a fresh byte vector.
    fn state_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.write_state(&mut w);
        w.into_bytes()
    }
}

/// Overwrite this value's mutable state from a snapshot reader.
pub trait Restore {
    /// Replace mutable state with the snapshot's. On error the value may be
    /// partially overwritten and must be discarded, but the call never
    /// panics.
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_usize(123);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_opt_i64(Some(-1));
        w.put_opt_i64(None);
        w.put_opt_f64(Some(2.5));
        w.put_str("navarchos");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_usize().unwrap(), 123);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_opt_i64().unwrap(), Some(-1));
        assert_eq!(r.get_opt_i64().unwrap(), None);
        assert_eq!(r.get_opt_f64().unwrap(), Some(2.5));
        assert_eq!(r.get_str().unwrap(), "navarchos");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = SnapWriter::new();
        w.put_f64_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            assert!(r.get_f64_vec().is_err(), "cut at {cut} should error");
        }
        let mut ok = SnapReader::new(&bytes);
        assert_eq!(ok.get_f64_vec().unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_before_allocation() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX); // absurd sequence length
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.get_f64_vec(),
            Err(SnapError::Corrupt(_)) | Err(SnapError::UnexpectedEof)
        ));
    }

    #[test]
    fn frames_nest_and_bound() {
        let mut w = SnapWriter::new();
        w.put_frame(|inner| {
            inner.put_u32(1);
            inner.put_str("lane");
        });
        w.put_u32(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let mut inner = r.get_frame().unwrap();
        assert_eq!(inner.get_u32().unwrap(), 1);
        assert_eq!(inner.get_str().unwrap(), "lane");
        inner.finish().unwrap();
        assert_eq!(r.get_u32().unwrap(), 2);
        r.finish().unwrap();
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let bytes = [9u8];
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.get_bool(), Err(SnapError::Corrupt("bool byte out of range")));
    }
}

//! Property-based tests for the statistical foundation.

use navarchos_stat::correlation::{pearson, CorrelationPairs};
use navarchos_stat::descriptive::{mean, quantile, sample_std, sample_var, RunningStats};
use navarchos_stat::dist::{chi_squared_cdf, normal_cdf, normal_quantile};
use navarchos_stat::drift::{Cusum, EwmaChart, PageHinkley};
use navarchos_stat::martingale::{conformal_pvalue, PowerMartingale};
use navarchos_stat::ranking::{average_ranks, holm_correction, wilcoxon_signed_rank};
use navarchos_stat::{
    IncrementalMean, IncrementalPearson, Restore, SnapReader, SnapWriter, Snapshot,
};
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #[test]
    fn pearson_is_bounded_and_symmetric(
        xs in finite_vec(2..64),
        ys in finite_vec(2..64),
    ) {
        let n = xs.len().min(ys.len());
        let (x, y) = (&xs[..n], &ys[..n]);
        let r = pearson(x, y);
        prop_assert!(r.is_nan() || (-1.0..=1.0).contains(&r));
        let r2 = pearson(y, x);
        if r.is_finite() && r2.is_finite() {
            prop_assert!((r - r2).abs() < 1e-9);
        }
    }

    #[test]
    fn pearson_shift_scale_invariant(
        xs in finite_vec(4..32),
        a in 0.1f64..10.0,
        b in -100.0f64..100.0,
    ) {
        // Use a co-varying second signal so the correlation is non-trivial.
        let ys: Vec<f64> = xs.iter().enumerate().map(|(i, &v)| v + i as f64).collect();
        let r1 = pearson(&xs, &ys);
        let scaled: Vec<f64> = xs.iter().map(|&v| a * v + b).collect();
        let r2 = pearson(&scaled, &ys);
        if r1.is_finite() && r2.is_finite() && r1 != 0.0 && r2 != 0.0 {
            prop_assert!((r1 - r2).abs() < 1e-6, "{r1} vs {r2}");
        }
    }

    #[test]
    fn running_stats_match_batch(xs in finite_vec(2..128)) {
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        prop_assert!((rs.mean() - mean(&xs)).abs() < 1e-6 * (1.0 + mean(&xs).abs()));
        let batch = sample_std(&xs);
        if batch.is_finite() {
            prop_assert!((rs.sample_std() - batch).abs() < 1e-6 * (1.0 + batch));
        }
    }

    #[test]
    fn quantile_within_range_and_monotone(xs in finite_vec(1..64), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v1 = quantile(&xs, q1);
        prop_assert!(v1 >= lo - 1e-9 && v1 <= hi + 1e-9);
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, qa) <= quantile(&xs, qb) + 1e-12);
    }

    #[test]
    fn ranks_are_a_permutation_statistic(xs in finite_vec(1..64)) {
        let ranks = average_ranks(&xs);
        let n = xs.len() as f64;
        let sum: f64 = ranks.iter().sum();
        // Rank sum is invariant: n(n+1)/2.
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        prop_assert!(ranks.iter().all(|&r| r >= 1.0 && r <= n));
    }

    #[test]
    fn holm_adjusted_pvalues_dominate_raw(ps in prop::collection::vec(0.0f64..1.0, 1..16)) {
        let adj = holm_correction(&ps);
        prop_assert_eq!(adj.len(), ps.len());
        for (a, p) in adj.iter().zip(&ps) {
            prop_assert!(*a >= *p - 1e-12, "adjusted below raw");
            prop_assert!(*a <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn wilcoxon_pvalue_valid(
        xs in finite_vec(2..26),
    ) {
        let ys: Vec<f64> = xs.iter().map(|&v| v + 1.0).collect();
        let r = wilcoxon_signed_rank(&xs, &ys);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        // All differences are −1: fully one-sided.
        prop_assert_eq!(r.w_plus, 0.0);
    }

    #[test]
    fn normal_quantile_round_trips(p in 0.001f64..0.999) {
        let x = normal_quantile(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-6);
    }

    #[test]
    fn chi_squared_cdf_monotone(x1 in 0.0f64..50.0, x2 in 0.0f64..50.0, k in 1.0f64..20.0) {
        let (a, b) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(chi_squared_cdf(a, k) <= chi_squared_cdf(b, k) + 1e-9);
    }

    #[test]
    fn conformal_pvalue_in_unit_interval(
        reference in finite_vec(1..64),
        s in -1e6f64..1e6,
        theta in 0.0f64..1.0,
    ) {
        let p = conformal_pvalue(&reference, s, theta);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn martingale_deviation_bounded(ps in prop::collection::vec(0.001f64..1.0, 1..256)) {
        let mut m = PowerMartingale::default();
        for &p in &ps {
            let dev = m.update(p);
            prop_assert!((0.0..=1.0).contains(&dev));
        }
    }

    #[test]
    fn condensed_index_bijective(n in 2usize..12) {
        let names: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
        let pairs = CorrelationPairs::new(&names);
        let mut seen = vec![false; pairs.n_pairs()];
        for i in 0..n {
            for j in (i + 1)..n {
                let k = pairs.condensed_index(i, j);
                prop_assert!(!seen[k], "index collision");
                seen[k] = true;
                prop_assert_eq!(pairs.pair_indices(k), (i, j));
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }
}

/// Random multi-signal stream: `width` signals, rows in ±1e3, with signal 0
/// optionally pinned to a constant from `const_from` onward (exercising the
/// degenerate-signal contract once the sliding window fills with it).
fn row_stream() -> impl Strategy<Value = (Vec<Vec<f64>>, usize, usize)> {
    (2usize..5).prop_flat_map(|width| {
        (
            prop::collection::vec(prop::collection::vec(-1e3f64..1e3, width), 8..80),
            2usize..16,
            // `const_from ≥ rows.len()` (common, since rows are 8..80) means
            // no pinning — the strategy mixes varying and degenerate cases.
            0usize..120,
        )
            .prop_map(move |(mut rows, window, const_from)| {
                let pin = rows.first().map_or(0.0, |r| r[0]);
                for row in rows.iter_mut().skip(const_from.max(1)) {
                    row[0] = pin;
                }
                (rows, width, window)
            })
    })
}

/// Column-major view of the last `window` rows ending at `end` (exclusive).
fn columns_of(rows: &[Vec<f64>], end: usize, window: usize) -> Vec<Vec<f64>> {
    let lo = end.saturating_sub(window);
    let width = rows[0].len();
    (0..width).map(|c| rows[lo..end].iter().map(|r| r[c]).collect()).collect()
}

proptest! {
    #[test]
    fn incremental_pearson_matches_batch_on_every_slide(
        (rows, width, window) in row_stream(),
    ) {
        let names: Vec<String> = (0..width).map(|i| format!("s{i}")).collect();
        let pairs = CorrelationPairs::new(&names);
        let mut acc = IncrementalPearson::new(width);
        let mut out = vec![0.0; pairs.n_pairs()];
        for (i, row) in rows.iter().enumerate() {
            if acc.len() == window {
                acc.pop_front();
            }
            acc.push(row);
            acc.corr_into(&mut out);
            let cols = columns_of(&rows, i + 1, window);
            let views: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
            let reference = pairs.condensed_pearson(&views);
            for (k, (&got, &want)) in out.iter().zip(&reference).enumerate() {
                if want.is_nan() {
                    prop_assert!(got.is_nan(), "pair {k} at {i}: {got} vs NaN");
                } else {
                    prop_assert!((got - want).abs() <= 1e-9, "pair {k} at {i}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn incremental_pearson_reset_equals_fresh(
        (rows, width, window) in row_stream(),
        cut in 1usize..79,
    ) {
        // Streaming with a mid-stream reset must agree with a kernel that
        // only ever saw the post-reset suffix — the transform relies on
        // this for its long-gap resets.
        let cut = cut.min(rows.len() - 1);
        let mut resumed = IncrementalPearson::new(width);
        for row in &rows[..cut] {
            if resumed.len() == window {
                resumed.pop_front();
            }
            resumed.push(row);
        }
        resumed.reset();
        let mut fresh = IncrementalPearson::new(width);
        let mut a = vec![0.0; resumed.n_pairs()];
        let mut b = vec![0.0; fresh.n_pairs()];
        for row in &rows[cut..] {
            if resumed.len() == window {
                resumed.pop_front();
            }
            resumed.push(row);
            if fresh.len() == window {
                fresh.pop_front();
            }
            fresh.push(row);
            resumed.corr_into(&mut a);
            fresh.corr_into(&mut b);
            for (&x, &y) in a.iter().zip(&b) {
                prop_assert!(x.is_nan() && y.is_nan() || (x - y).abs() <= 1e-12, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn incremental_sample_vars_match_descriptive(
        (rows, _width, window) in row_stream(),
    ) {
        let width = rows[0].len();
        let mut acc = IncrementalPearson::new(width);
        for (i, row) in rows.iter().enumerate() {
            if acc.len() == window {
                acc.pop_front();
            }
            acc.push(row);
            if acc.len() < 2 {
                continue;
            }
            let cols = columns_of(&rows, i + 1, window);
            for (c, got) in acc.sample_vars().enumerate() {
                let want = sample_var(&cols[c]);
                let tol = 1e-9 * (1.0 + want.abs());
                prop_assert!((got - want).abs() <= tol, "signal {c} at {i}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn incremental_mean_matches_batch_on_every_slide(
        (rows, width, window) in row_stream(),
    ) {
        let mut acc = IncrementalMean::new(width);
        let mut out = vec![0.0; width];
        for (i, row) in rows.iter().enumerate() {
            if acc.len() == window {
                acc.pop_front();
            }
            acc.push(row);
            acc.means_into(&mut out);
            let cols = columns_of(&rows, i + 1, window);
            for (c, (&got, col)) in out.iter().zip(&cols).enumerate() {
                let want = mean(col);
                prop_assert!((got - want).abs() <= 1e-9, "signal {c} at {i}: {got} vs {want}");
            }
        }
    }
}

/// Snapshot → fresh kernel → restore; returns the restored kernel. Also
/// asserts the reader consumed the bytes exactly.
fn round_trip<K: Snapshot + Restore>(live: &K, mut fresh: K) -> K {
    let mut w = SnapWriter::new();
    live.write_state(&mut w);
    let bytes = w.into_bytes();
    let mut r = SnapReader::new(&bytes);
    fresh.read_state(&mut r).expect("kernel snapshot must restore into a same-shape kernel");
    r.finish().expect("kernel snapshot must have no trailing bytes");
    fresh
}

fn snapshot_bytes<K: Snapshot>(k: &K) -> Vec<u8> {
    let mut w = SnapWriter::new();
    k.write_state(&mut w);
    w.into_bytes()
}

proptest! {
    /// Checkpoint contract for the [`IncrementalPearson`] kernel: cut the
    /// stream anywhere, round-trip the accumulator through its snapshot,
    /// and the restored kernel's outputs stay **bit-identical** to the
    /// uninterrupted one on the whole remainder — and re-snapshots stay
    /// byte-identical, so nothing was silently rebuilt.
    #[test]
    fn incremental_pearson_snapshot_round_trip_is_bit_exact(
        (rows, width, window) in row_stream(),
        cut in 0usize..80,
    ) {
        let cut = cut.min(rows.len());
        let mut live = IncrementalPearson::new(width);
        for row in &rows[..cut] {
            if live.len() == window {
                live.pop_front();
            }
            live.push(row);
        }
        let mut restored = round_trip(&live, IncrementalPearson::new(width));
        let mut a = vec![0.0; live.n_pairs()];
        let mut b = vec![0.0; live.n_pairs()];
        for row in &rows[cut..] {
            if live.len() == window {
                live.pop_front();
            }
            live.push(row);
            if restored.len() == window {
                restored.pop_front();
            }
            restored.push(row);
            live.corr_into(&mut a);
            restored.corr_into(&mut b);
            for (&x, &y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
            }
        }
        prop_assert_eq!(snapshot_bytes(&live), snapshot_bytes(&restored));
    }

    /// Same contract for [`IncrementalMean`].
    #[test]
    fn incremental_mean_snapshot_round_trip_is_bit_exact(
        (rows, width, window) in row_stream(),
        cut in 0usize..80,
    ) {
        let cut = cut.min(rows.len());
        let mut live = IncrementalMean::new(width);
        for row in &rows[..cut] {
            if live.len() == window {
                live.pop_front();
            }
            live.push(row);
        }
        let mut restored = round_trip(&live, IncrementalMean::new(width));
        let mut a = vec![0.0; width];
        let mut b = vec![0.0; width];
        for row in &rows[cut..] {
            if live.len() == window {
                live.pop_front();
            }
            live.push(row);
            if restored.len() == window {
                restored.pop_front();
            }
            restored.push(row);
            live.means_into(&mut a);
            restored.means_into(&mut b);
            for (&x, &y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "{} vs {}", x, y);
            }
        }
        prop_assert_eq!(snapshot_bytes(&live), snapshot_bytes(&restored));
    }

    /// Truncated kernel snapshots are an error, never a panic.
    #[test]
    fn kernel_snapshot_truncation_is_an_error(
        (rows, width, window) in row_stream(),
        trunc_sel in 0usize..1_000_000,
    ) {
        let mut live = IncrementalPearson::new(width);
        for row in &rows {
            if live.len() == window {
                live.pop_front();
            }
            live.push(row);
        }
        let bytes = snapshot_bytes(&live);
        let trunc_at = trunc_sel % bytes.len();
        let mut fresh = IncrementalPearson::new(width);
        let mut r = SnapReader::new(&bytes[..trunc_at]);
        prop_assert!(
            fresh.read_state(&mut r).and_then(|()| r.finish()).is_err(),
            "a truncated kernel snapshot must be refused"
        );
    }
}

proptest! {
    #[test]
    fn cusum_statistic_is_non_negative_and_bounded_by_threshold(
        xs in finite_vec(1..128),
        slack in 0.0f64..10.0,
        threshold in 0.1f64..1e5,
    ) {
        let mut c = Cusum::new(0.0, slack, threshold);
        for &x in &xs {
            c.update(x);
            prop_assert!(c.statistic() >= 0.0);
            // After every update (alarm or not) the statistic is at most
            // the threshold: alarms reset it to zero.
            prop_assert!(c.statistic() <= threshold);
        }
    }

    #[test]
    fn cusum_alarm_count_monotone_in_threshold(
        xs in finite_vec(1..128),
        t1 in 1.0f64..100.0,
        extra in 1.0f64..100.0,
    ) {
        let mut low = Cusum::new(0.0, 0.5, t1);
        let mut high = Cusum::new(0.0, 0.5, t1 + extra);
        let alarms_low = xs.iter().filter(|&&x| low.update(x)).count();
        let alarms_high = xs.iter().filter(|&&x| high.update(x)).count();
        prop_assert!(alarms_high <= alarms_low, "{alarms_high} > {alarms_low}");
    }

    #[test]
    fn page_hinkley_never_alarms_on_constant_streams(
        level in -1e3f64..1e3,
        n in 1usize..512,
    ) {
        let mut ph = PageHinkley::new(0.01, 5.0);
        for _ in 0..n {
            prop_assert!(!ph.update(level), "constant stream alarmed");
        }
        prop_assert_eq!(ph.len(), n as u64);
    }

    #[test]
    fn ewma_statistic_stays_within_data_hull(
        xs in prop::collection::vec(-100.0f64..100.0, 1..128),
        lambda in 0.01f64..1.0,
    ) {
        let mut chart = EwmaChart::new(0.0, 1.0, lambda, 3.0);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min).min(0.0);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(0.0);
        for &x in &xs {
            chart.update(x);
            // A convex combination of the seed (= mu = 0 here before the
            // first sample) and the data never escapes their hull.
            prop_assert!(chart.statistic() >= lo - 1e-9);
            prop_assert!(chart.statistic() <= hi + 1e-9);
        }
    }
}

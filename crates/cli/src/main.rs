//! `navarchos` — command-line front end for the PdM framework.
//!
//! ```text
//! navarchos simulate --out DIR [--vehicles N] [--days N] [--seed N]
//!     Generate a synthetic fleet; writes <DIR>/vehicle-XX.csv telemetry,
//!     <DIR>/events.csv and <DIR>/ground_truth.csv.
//!
//! navarchos monitor --telemetry FILE [--events FILE] [--factor F]
//!     Stream one vehicle's CSV telemetry through the complete solution
//!     (correlation + Closest-pair) and print alarms.
//!
//! navarchos evaluate --dir DIR [--ph DAYS] [--factor F]
//!     Run the batch pipeline over a simulated fleet directory and report
//!     precision / recall / F0.5 under the prediction-horizon protocol.
//!
//! navarchos resample --telemetry FILE --out FILE [--period SECONDS]
//!     Put irregular CSV telemetry on a regular time grid (gap-aware:
//!     parking time is never interpolated across).
//!
//! navarchos serve-replay [--dir DIR | --vehicles N --days N --seed N] [--shards N]
//!     Interleave a fleet's telemetry into one arrival-ordered stream and
//!     serve it through the sharded ingest engine (per-vehicle reorder
//!     buffers, duplicate drop, dead-letter sink). `--dirty SEED` salts
//!     the stream with within-horizon reordering and duplicates first;
//!     `--verify` replays each vehicle sorted and exits nonzero unless the
//!     engine's alarms are identical.
//!
//! navarchos check-manifest --path FILE [--against BASELINE] [--slo-p99-ms N]
//!     Validate a run manifest against the navarchos-run-manifest schema
//!     (v2, or v1 for committed baselines), optionally gate the
//!     `alarm.latency_ns` p99 against an SLO, and optionally diff the
//!     manifest structurally against a committed baseline with relative
//!     tolerances (nonzero exit on regression) — the machine checks CI
//!     runs over emitted manifests.
//!
//! navarchos top --addr HOST:PORT [--interval-ms N] [--iterations N]
//!     Poll a live `--metrics-addr` scrape endpoint and render a refreshing
//!     per-shard table (records/s, queue depth, health, alarm p99) from
//!     consecutive snapshot deltas.
//! ```
//!
//! Argument parsing is by hand (the workspace's sanctioned dependency set
//! has no CLI crate); every flag takes the form `--name value`, except
//! the boolean switches in [`BOOL_FLAGS`] (`--trace`, `--metrics`).
//!
//! Observability: `NAVARCHOS_LOG` / `NAVARCHOS_METRICS` are honoured
//! first, then `--trace` (events to stderr) and `--metrics` (record
//! counters/histograms; `evaluate`/`explore` additionally write a run
//! manifest plus an NDJSON trace next to it). `--metrics-addr HOST:PORT`
//! on `serve-replay`/`evaluate` additionally starts the ops plane: a
//! background snapshot sampler (`--snapshot-ms`, default 1000) plus a
//! Prometheus-text scrape endpoint serving the latest snapshot.

use navarchos_core::detectors::DetectorKind;
use navarchos_core::evaluation::{evaluate_vehicle_instances, factor_grid, EvalCounts, EvalParams};
use navarchos_core::runner::{run_vehicle, RunnerParams};
use navarchos_core::AlarmAggregator;
use navarchos_core::{PipelineConfig, StreamingPipeline, TransformKind};
use navarchos_fleetsim::FleetConfig;
use navarchos_obs as obs;
use navarchos_tsframe::csv::{read_csv_file, write_csv_file};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Environment first, then per-invocation switches override.
    if let Some(enabled) = obs::init_from_env() {
        eprintln!("[obs] {enabled}");
    }
    if flags.contains_key("trace") {
        obs::set_sink(Arc::new(obs::StderrSink));
    }
    if flags.contains_key("metrics") {
        obs::set_metrics_enabled(true);
    }
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&flags),
        "monitor" => cmd_monitor(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "explore" => cmd_explore(&flags),
        "resample" => cmd_resample(&flags),
        "serve-replay" => cmd_serve_replay(&flags),
        "check-manifest" => cmd_check_manifest(&flags),
        "top" => cmd_top(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
navarchos — unsupervised vehicle predictive maintenance (EDBT 2024 reproduction)

USAGE:
  navarchos simulate --out DIR [--vehicles N] [--days N] [--seed N] [--failures N]
  navarchos monitor  --telemetry FILE [--events FILE] [--factor F] [--trace]
  navarchos evaluate --dir DIR [--ph DAYS] [--metrics] [--manifest FILE] [--trace]
                     [--metrics-addr HOST:PORT [--snapshot-ms N]]
  navarchos explore  --dir DIR [--clusters K] [--metrics] [--manifest FILE]
  navarchos resample --telemetry FILE --out FILE [--period SECONDS] [--max-gap SECONDS] [--method linear|previous]
  navarchos serve-replay [--dir DIR | --vehicles N --days N --seed N] [--shards N] [--horizon-s S]
                         [--dirty SEED [--reorder-prob F] [--dup-prob F] [--drop-prob F] [--corrupt-prob F]]
                         [--corrupt-vehicle N [--corrupt-after FRAC] [--corrupt-mode nan|bias] [--corrupt-bias F]]
                         [--verify] [--metrics] [--manifest FILE] [--batch-size N] [--journal FILE]
                         [--checkpoint-every N [--checkpoint FILE]] [--restore FILE]
                         [--metrics-addr HOST:PORT [--snapshot-ms N] [--hold-s N]]
  navarchos check-manifest --path FILE [--against BASELINE] [--tol-pct N] [--time-tol-pct N]
                           [--ignore k1,k2] [--slo-p99-ms N]
  navarchos check-manifest --trend DIR [--time-tol-pct N] [--ignore k1,k2]
  navarchos top --addr HOST:PORT [--interval-ms N] [--iterations N]
  navarchos help

OBSERVABILITY:
  --trace           structured events to stderr (or NAVARCHOS_LOG=stderr|ndjson[:path])
  --metrics         record counters/histograms (or NAVARCHOS_METRICS=1; any non-empty
                    value except 0/false/off enables); evaluate and explore also write
                    a run manifest + NDJSON trace next to it
  --against FILE    diff the checked manifest against a committed baseline manifest;
                    regressions beyond tolerance exit nonzero (--tol-pct two-sided,
                    --time-tol-pct for timings, --ignore to skip exact keys)
  --slo-p99-ms N    fail check-manifest when the manifest's alarm.latency_ns p99
                    exceeds N milliseconds
  --metrics-addr A  serve the latest metric snapshot as Prometheus text on A
                    (HOST:PORT; implies --metrics); --snapshot-ms sets the
                    sampler cadence, serve-replay's --hold-s keeps the endpoint
                    up N seconds after the run so scrapers can catch it
  --journal FILE    serve-replay: append every alarm's provenance (arrival,
                    release watermark, per-stage timings) as NDJSON; summarise
                    with `cargo run -p xtask -- alarm-latency --journal FILE`
  --batch-size N    serve-replay: feed the engine in N-item batches and observe
                    per-shard health between batches (0 = one batch)
  --checkpoint-every N  serve-replay: write a navarchos-checkpoint/v1 snapshot
                    of the full engine state every N stream items (to
                    --checkpoint FILE, default serve-checkpoint.bin; written
                    atomically via tmp + rename)
  --restore FILE    serve-replay: restore engine state from a checkpoint and
                    resume the regenerated stream at its cursor; run with the
                    same fleet/dirt/config flags as the checkpointed run —
                    alarms (prior + resumed) stay byte-identical to the
                    uninterrupted run, so --verify still passes
  --corrupt-vehicle N  serve-replay: corrupt vehicle N's records from
                    --corrupt-after (fraction of the stream, default 0.5)
                    onward — NaN bursts by default, a finite additive shift
                    with --corrupt-mode bias [--corrupt-bias F]; drives the
                    ingest.quality.* monitors and the alert.* burn rates
                    (with --metrics/--metrics-addr, burn-rate alerts are
                    evaluated at each batch boundary and exported)
  --trend DIR       walk the committed BENCH_PR*.json history in PR order and fail
                    on any consecutive timing regression beyond --time-tol-pct
                    (timing keys shared by both manifests only; files that are not
                    run manifests are reported and skipped)";

/// Switches that take no value; everything else is `--name value`.
const BOOL_FLAGS: &[&str] = &["trace", "metrics", "verify"];

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("expected a --flag, got '{arg}'"));
        };
        if BOOL_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "1".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

/// The live ops plane behind `--metrics-addr`: a background snapshot
/// sampler feeding a bounded ring, and a scrape endpoint serving the ring's
/// latest snapshot as Prometheus text. Both shut down when this is dropped.
struct OpsPlane {
    _sampler: obs::SamplerGuard,
    _server: obs::MetricsServer,
}

/// Starts the ops plane when `--metrics-addr HOST:PORT` is present (a live
/// scrape endpoint is meaningless without metrics, so the flag implies
/// `--metrics`). `--snapshot-ms` sets the sampler cadence (default 1 s).
fn start_ops_plane(flags: &BTreeMap<String, String>) -> Result<Option<OpsPlane>, String> {
    let Some(addr) = flags.get("metrics-addr") else {
        return Ok(None);
    };
    obs::set_metrics_enabled(true);
    let snapshot_ms: u64 = get_num(flags, "snapshot-ms", 1000)?;
    let ring = Arc::new(obs::SnapshotRing::new(64));
    let period = std::time::Duration::from_millis(snapshot_ms.max(1));
    let sampler = obs::start_sampler(period, Arc::clone(&ring));
    let server =
        obs::serve_metrics(addr, ring).map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
    eprintln!(
        "[obs] metrics endpoint on {} (snapshot every {} ms)",
        server.addr(),
        snapshot_ms.max(1)
    );
    Ok(Some(OpsPlane { _sampler: sampler, _server: server }))
}

fn get_num<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(name) {
        Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        None => Ok(default),
    }
}

// ---------------------------------------------------------------------------
// simulate
// ---------------------------------------------------------------------------

fn cmd_simulate(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let out: PathBuf = flags.get("out").ok_or("--out DIR is required")?.into();
    let mut cfg = FleetConfig::navarchos();
    cfg.n_vehicles = get_num(flags, "vehicles", cfg.n_vehicles)?;
    cfg.n_days = get_num(flags, "days", cfg.n_days)?;
    cfg.seed = get_num(flags, "seed", cfg.seed)?;
    cfg.n_failures = get_num(flags, "failures", cfg.n_failures.min(cfg.n_vehicles))?;
    cfg.n_recorded = cfg.n_recorded.min(cfg.n_vehicles);
    cfg.n_failures = cfg.n_failures.min(cfg.n_recorded);

    std::fs::create_dir_all(&out).map_err(|e| format!("create {}: {e}", out.display()))?;
    let fleet = cfg.generate();

    for vd in &fleet.vehicles {
        let path = out.join(format!("{}.csv", vd.id));
        write_csv_file(&vd.frame, &path).map_err(|e| e.to_string())?;
    }

    // Recorded events, one file for the whole fleet.
    let mut events = String::from("vehicle,timestamp,kind\n");
    for vd in &fleet.vehicles {
        for e in vd.recorded_events() {
            events.push_str(&format!("{},{},{}\n", e.vehicle, e.timestamp, e.kind.label()));
        }
    }
    std::fs::write(out.join("events.csv"), events).map_err(|e| e.to_string())?;

    // Ground truth (what an evaluator may use; the pipeline must not).
    let mut truth = String::from("vehicle,fault,start,repair\n");
    for w in &fleet.faults {
        truth.push_str(&format!("{},{},{},{}\n", w.vehicle, w.kind.label(), w.start, w.repair));
    }
    std::fs::write(out.join("ground_truth.csv"), truth).map_err(|e| e.to_string())?;

    println!(
        "wrote {} vehicles ({} records), {} recorded events, {} failures to {}",
        fleet.vehicles.len(),
        fleet.total_records(),
        fleet.recorded_event_count(),
        fleet.recorded_repair_count(),
        out.display()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// monitor
// ---------------------------------------------------------------------------

fn cmd_monitor(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let telemetry: PathBuf = flags.get("telemetry").ok_or("--telemetry FILE is required")?.into();
    let factor: f64 = get_num(flags, "factor", 8.0)?;
    let frame = read_csv_file(&telemetry).map_err(|e| e.to_string())?;
    println!(
        "loaded {} records / {} signals from {}",
        frame.len(),
        frame.width(),
        telemetry.display()
    );

    let maintenance = match flags.get("events") {
        Some(path) => load_events(Path::new(path), None)?,
        None => Vec::new(),
    };

    let mut cfg =
        PipelineConfig::paper_default(TransformKind::Correlation, DetectorKind::ClosestPair);
    cfg.threshold_factor = factor;
    let mut pipeline = StreamingPipeline::new(frame.names(), cfg);

    let mut events = maintenance.iter().peekable();
    let mut aggregator = AlarmAggregator::new(&EvalParams::days(30), 15);
    let mut row = Vec::new();
    let mut alarms = 0usize;
    let mut instances = 0usize;
    // Day offsets are relative to the vehicle's first record, matching the
    // per-day framing of the evaluation protocol and the fleet simulator.
    let t0 = frame.timestamps().first().copied().unwrap_or(0);
    for i in 0..frame.len() {
        let t = frame.timestamps()[i];
        while let Some(&&(mt, is_repair)) = events.peek() {
            if mt > t {
                break;
            }
            pipeline.process_event(is_repair);
            aggregator.reset();
            events.next();
        }
        frame.row_into(i, &mut row);
        for alarm in pipeline.process_record(t, &row) {
            alarms += 1;
            if let Some(instance) = aggregator.push(&alarm) {
                instances += 1;
                // Attribute the violating channels by name (the same
                // attribution the structured `pipeline.alarm` events carry),
                // not by bare index.
                let names: Vec<&str> = instance
                    .channels
                    .iter()
                    .map(|&c| pipeline.channel_names().get(c).map(String::as_str).unwrap_or("?"))
                    .collect();
                println!(
                    "day {:6.2} (t={}) OPERATOR ALARM: {} violations on {} features: {}",
                    (instance.start - t0) as f64 / 86_400.0,
                    instance.start,
                    instance.violations,
                    names.len(),
                    names.join(", ")
                );
            }
        }
    }
    println!(
        "{alarms} raw violations → {instances} operator alarms; final pipeline state: {}",
        pipeline.phase_name()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// evaluate
// ---------------------------------------------------------------------------

fn cmd_evaluate(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let dir: PathBuf = flags.get("dir").ok_or("--dir DIR is required")?.into();
    let ph: i64 = get_num(flags, "ph", 30)?;
    let events_path = dir.join("events.csv");

    // Discover the vehicles from the telemetry files.
    let mut vehicle_files: Vec<(usize, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(&dir).map_err(|e| e.to_string())? {
        let path = entry.map_err(|e| e.to_string())?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(num) = name.strip_prefix("vehicle-").and_then(|s| s.strip_suffix(".csv")) {
            if let Ok(v) = num.parse::<usize>() {
                vehicle_files.push((v, path));
            }
        }
    }
    vehicle_files.sort();
    if vehicle_files.is_empty() {
        return Err(format!("no vehicle-XX.csv files in {}", dir.display()));
    }

    let params = RunnerParams::paper_default(TransformKind::Correlation, DetectorKind::ClosestPair);
    let eval = EvalParams::days(ph);
    let _ops = start_ops_plane(flags)?;

    // With --metrics the run writes a manifest (and, unless a sink is
    // already installed, an NDJSON trace next to it) so files like
    // BENCH_PR3.json are generated, never hand-edited.
    let mut manifest = flags.contains_key("metrics").then(|| obs::Manifest::new("evaluate"));
    let manifest_path = match flags.get("manifest") {
        Some(p) => PathBuf::from(p),
        None => dir.join("run-manifest.json"),
    };
    if let Some(m) = manifest.as_mut() {
        m.config("dir", dir.display().to_string());
        m.config("ph_days", ph);
        m.config("vehicles", vehicle_files.len());
        m.config("transform", "correlation");
        m.config("detector", "closest_pair");
        if !obs::events_enabled() {
            let trace_path = manifest_path.with_extension("trace.ndjson");
            match obs::NdjsonSink::create(&trace_path) {
                Ok(sink) => obs::set_sink(Arc::new(sink)),
                Err(e) => eprintln!("[obs] no trace file ({}: {e})", trace_path.display()),
            }
        }
    }

    let clock = obs::stage_clock();
    let mut frames = Vec::new();
    let mut repairs_per_vehicle = Vec::new();
    for (v, path) in &vehicle_files {
        let frame = read_csv_file(path).map_err(|e| e.to_string())?;
        let maintenance = load_events(&events_path, Some(*v))?;
        let repairs: Vec<i64> = maintenance.iter().filter(|&&(_, r)| r).map(|&(t, _)| t).collect();
        frames.push((frame, maintenance));
        repairs_per_vehicle.push(repairs);
    }
    if let Some(m) = manifest.as_mut() {
        m.end_stage("load", clock);
    }

    let clock = obs::stage_clock();
    let traces = navarchos_core::par_map(&frames, |_, (frame, maintenance)| {
        run_vehicle(frame, maintenance, &params)
    });
    if let Some(m) = manifest.as_mut() {
        m.end_stage("score_vehicles", clock);
    }

    let clock = obs::stage_clock();
    println!("threshold-factor sweep (PH = {ph} days):");
    let mut best: Option<(f64, EvalCounts)> = None;
    for factor in factor_grid() {
        let mut counts = EvalCounts::default();
        for (vs, repairs) in traces.iter().zip(&repairs_per_vehicle) {
            let instances = vs.alarm_instances(factor, &eval);
            counts.merge(&evaluate_vehicle_instances(&instances, repairs, eval));
        }
        println!(
            "  factor {factor:6.2}: tp {:2}  fp {:3}  fn {:2}  precision {:.2}  recall {:.2}  F0.5 {:.2}",
            counts.tp,
            counts.fp,
            counts.fn_,
            counts.precision(),
            counts.recall(),
            counts.f05()
        );
        if best.as_ref().map(|(_, b)| counts.f05() > b.f05()).unwrap_or(true) {
            best = Some((factor, counts));
        }
    }
    if let Some(m) = manifest.as_mut() {
        m.end_stage("factor_sweep", clock);
    }
    if let Some((factor, counts)) = best {
        println!(
            "\nbest: factor {factor} → F0.5 {:.2} (precision {:.2}, recall {:.2})",
            counts.f05(),
            counts.precision(),
            counts.recall()
        );
        if let Some(m) = manifest.as_mut() {
            m.metric("best_factor", factor);
            m.metric("tp", counts.tp);
            m.metric("fp", counts.fp);
            m.metric("fn", counts.fn_);
            m.metric("precision", counts.precision());
            m.metric("recall", counts.recall());
            m.metric("f05", counts.f05());
        }
        // Alarm-latency measurement pass: replay the fleet through the
        // streaming pipeline at the chosen factor so the manifest reports
        // `alarm.latency_ns` (arrival-to-emission wall clock per alarm) —
        // the batch scorer above never raises runtime alarms.
        if let Some(m) = manifest.as_mut() {
            let clock = obs::stage_clock();
            let mut cfg = PipelineConfig::paper_default(
                TransformKind::Correlation,
                DetectorKind::ClosestPair,
            );
            cfg.threshold_factor = factor;
            let replay_alarms: usize = frames
                .iter()
                .map(|(frame, maintenance)| {
                    navarchos_core::replay_stream(frame, maintenance, cfg.clone()).len()
                })
                .sum();
            m.end_stage("alarm_replay", clock);
            m.metric("replay_alarms", replay_alarms);
        }
    }
    if let Some(m) = manifest {
        m.write(&manifest_path)
            .map_err(|e| format!("write manifest {}: {e}", manifest_path.display()))?;
        println!("run manifest written to {}", manifest_path.display());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// explore
// ---------------------------------------------------------------------------

fn cmd_explore(flags: &BTreeMap<String, String>) -> Result<(), String> {
    use navarchos_cluster::{linkage, Linkage};
    use navarchos_tsframe::aggregate::{daily_aggregate, znormalize_columns, SECONDS_PER_DAY};
    use navarchos_tsframe::FilterSpec;

    let dir: PathBuf = flags.get("dir").ok_or("--dir DIR is required")?.into();
    let k: usize = get_num(flags, "clusters", 9)?;

    let mut vehicle_files: Vec<(usize, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(&dir).map_err(|e| e.to_string())? {
        let path = entry.map_err(|e| e.to_string())?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(num) = name.strip_prefix("vehicle-").and_then(|s| s.strip_suffix(".csv")) {
            if let Ok(v) = num.parse::<usize>() {
                vehicle_files.push((v, path));
            }
        }
    }
    vehicle_files.sort();
    if vehicle_files.is_empty() {
        return Err(format!("no vehicle-XX.csv files in {}", dir.display()));
    }

    let mut manifest = flags.contains_key("metrics").then(|| obs::Manifest::new("explore"));
    let manifest_path = match flags.get("manifest") {
        Some(p) => PathBuf::from(p),
        None => dir.join("explore-manifest.json"),
    };
    if let Some(m) = manifest.as_mut() {
        m.config("dir", dir.display().to_string());
        m.config("clusters", k);
        m.config("vehicles", vehicle_files.len());
    }

    // Day-level aggregation of the filtered telemetry, as in the paper's
    // Section 2 exploration.
    let clock = obs::stage_clock();
    let filter = FilterSpec::navarchos_default();
    let mut points = Vec::new();
    let mut owners = Vec::new();
    let mut dim = 0;
    for (v, path) in &vehicle_files {
        let frame = read_csv_file(path).map_err(|e| e.to_string())?;
        let filtered = filter.apply(&frame);
        for agg in daily_aggregate(&filtered, SECONDS_PER_DAY, 30) {
            let features = agg.feature_vector();
            dim = features.len();
            points.extend(features);
            owners.push(*v);
        }
    }
    if owners.len() < k {
        return Err(format!("only {} vehicle-days; need at least {k}", owners.len()));
    }
    // Cap the matrix (agglomerative clustering is O(n²)).
    let max_points = 2500;
    if owners.len() > max_points {
        let stride = owners.len().div_ceil(max_points);
        let mut kept_points = Vec::new();
        let mut kept_owners = Vec::new();
        for i in (0..owners.len()).step_by(stride) {
            kept_points.extend_from_slice(&points[i * dim..(i + 1) * dim]);
            kept_owners.push(owners[i]);
        }
        points = kept_points;
        owners = kept_owners;
    }
    if let Some(m) = manifest.as_mut() {
        m.end_stage("aggregate", clock);
        m.metric("vehicle_days", owners.len());
    }

    let clock = obs::stage_clock();
    znormalize_columns(&mut points, dim);
    let labels = linkage(&points, dim, Linkage::Average).cut_k(k);
    if let Some(m) = manifest.as_mut() {
        m.end_stage("cluster", clock);
    }

    println!("{} vehicle-days clustered into {k} groups:", owners.len());
    for c in 0..k {
        let mut members: Vec<usize> =
            owners.iter().zip(&labels).filter(|&(_, &l)| l == c).map(|(&v, _)| v).collect();
        let size = members.len();
        members.sort_unstable();
        members.dedup();
        println!(
            "  cluster {c}: {size:4} days across {:2} vehicles {}",
            members.len(),
            if members.len() == 1 {
                format!("(single vehicle: vehicle-{:02})", members[0])
            } else {
                String::new()
            }
        );
    }
    if let Some(m) = manifest {
        m.write(&manifest_path)
            .map_err(|e| format!("write manifest {}: {e}", manifest_path.display()))?;
        println!("run manifest written to {}", manifest_path.display());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// serve-replay
// ---------------------------------------------------------------------------

/// Loads the fleet for `serve-replay`: `--dir` reads a `simulate` output
/// directory (vehicle-XX.csv + events.csv); otherwise the fleet is
/// generated in-process from `--vehicles/--days/--seed`.
fn load_replay_fleet(
    flags: &BTreeMap<String, String>,
) -> Result<Vec<(u32, navarchos_tsframe::Frame, Vec<(i64, bool)>)>, String> {
    if let Some(dir) = flags.get("dir") {
        let dir = Path::new(dir);
        let events_path = dir.join("events.csv");
        let mut vehicle_files: Vec<(usize, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| e.to_string())? {
            let path = entry.map_err(|e| e.to_string())?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(num) = name.strip_prefix("vehicle-").and_then(|s| s.strip_suffix(".csv")) {
                if let Ok(v) = num.parse::<usize>() {
                    vehicle_files.push((v, path));
                }
            }
        }
        vehicle_files.sort();
        if vehicle_files.is_empty() {
            return Err(format!("no vehicle-XX.csv files in {}", dir.display()));
        }
        let mut out = Vec::new();
        for (v, path) in vehicle_files {
            let frame = read_csv_file(&path).map_err(|e| e.to_string())?;
            let maintenance = load_events(&events_path, Some(v))?;
            out.push((v as u32, frame, maintenance));
        }
        Ok(out)
    } else {
        let mut cfg = FleetConfig::navarchos();
        cfg.n_vehicles = get_num(flags, "vehicles", cfg.n_vehicles)?;
        cfg.n_days = get_num(flags, "days", cfg.n_days)?;
        cfg.seed = get_num(flags, "seed", cfg.seed)?;
        cfg.n_recorded = cfg.n_recorded.min(cfg.n_vehicles);
        cfg.n_failures = cfg.n_failures.min(cfg.n_recorded);
        let fleet = cfg.generate();
        Ok(fleet
            .vehicles
            .into_iter()
            .map(|vd| {
                let maintenance: Vec<(i64, bool)> = vd
                    .events
                    .iter()
                    .filter(|e| e.recorded && e.kind.is_maintenance())
                    .map(|e| (e.timestamp, e.kind == navarchos_fleetsim::EventKind::Repair))
                    .collect();
                (vd.id.0, vd.frame, maintenance)
            })
            .collect())
    }
}

/// Pushes a fresh metrics snapshot into the alert ring and runs one
/// burn-rate evaluation pass, printing (and accumulating) any transitions.
/// No-op when alerting is off (no `--metrics`/`--metrics-addr`).
fn observe_alerts(
    alerting: &mut Option<(obs::BurnRateEvaluator, obs::SnapshotRing)>,
    log: &mut Vec<obs::AlertTransition>,
) {
    let Some((eval, ring)) = alerting.as_mut() else {
        return;
    };
    ring.push(obs::take_snapshot());
    for t in eval.evaluate(ring) {
        println!(
            "  alert: {} {} -> {} (burn fast {:.1}x, slow {:.1}x)",
            t.name,
            t.from.name(),
            t.to.name(),
            t.burn_fast,
            t.burn_slow
        );
        log.push(t);
    }
}

/// Writes a checkpoint atomically: serialise, write to `<path>.tmp`,
/// rename. A crash mid-write leaves the previous checkpoint intact.
fn write_checkpoint_file(
    path: &Path,
    engine: &navarchos_ingest::ShardedIngest,
    cursor: u64,
    alarms: &[navarchos_ingest::FleetAlarm],
) -> Result<(), String> {
    let bytes = navarchos_ingest::write_checkpoint(engine, cursor, alarms);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))?;
    Ok(())
}

/// Serves a fleet's interleaved (optionally dirtied) event stream through
/// the sharded ingest engine and reports what the engine did with it;
/// `--verify` additionally replays every vehicle sorted and fails unless
/// the engine's alarms are byte-identical.
fn cmd_serve_replay(flags: &BTreeMap<String, String>) -> Result<(), String> {
    use navarchos_ingest::{IngestConfig, ShardedIngest};

    let shards: usize = get_num(flags, "shards", 4)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let mut cfg = IngestConfig::paper_default(shards);
    cfg.horizon_s = get_num(flags, "horizon-s", cfg.horizon_s)?;
    if cfg.horizon_s < 0 {
        return Err("--horizon-s must be non-negative".to_string());
    }

    let mut manifest = flags.contains_key("metrics").then(|| obs::Manifest::new("serve-replay"));
    let manifest_path: PathBuf =
        flags.get("manifest").map(PathBuf::from).unwrap_or_else(|| "serve-manifest.json".into());
    let _ops = start_ops_plane(flags)?;

    let clock = obs::stage_clock();
    let vehicles = load_replay_fleet(flags)?;
    let names = vehicles[0].1.names().to_vec();
    for (v, frame, _) in &vehicles {
        if frame.names() != names.as_slice() {
            return Err(format!(
                "vehicle {v}: signal set differs from vehicle {} — one engine serves one schema",
                vehicles[0].0
            ));
        }
    }
    let refs: Vec<(u32, &navarchos_tsframe::Frame, &[(i64, bool)])> =
        vehicles.iter().map(|(v, f, m)| (*v, f, m.as_slice())).collect();
    let mut stream = navarchos_fleetsim::interleave_streams(&refs);
    let clean_len = stream.len();

    let mut lossy = false;
    let mut dirt: Option<navarchos_fleetsim::DirtyConfig> = None;
    if let Some(seed) = flags.get("dirty") {
        let seed: u64 = seed.parse().map_err(|e| format!("--dirty: {e}"))?;
        let mut d = navarchos_fleetsim::DirtyConfig::reorder_and_dup(seed);
        // Keep the dirt inside the engine's tolerance unless overridden:
        // equivalence is only promised for delays strictly under the horizon.
        d.reorder_horizon_s = cfg.horizon_s.max(1);
        d.reorder_prob = get_num(flags, "reorder-prob", d.reorder_prob)?;
        d.dup_prob = get_num(flags, "dup-prob", d.dup_prob)?;
        d.drop_prob = get_num(flags, "drop-prob", d.drop_prob)?;
        d.corrupt_prob = get_num(flags, "corrupt-prob", d.corrupt_prob)?;
        lossy = d.drop_prob > 0.0 || d.corrupt_prob > 0.0;
        if let Some(m) = manifest.as_mut() {
            m.config("dirty_seed", seed);
            m.config("reorder_prob", d.reorder_prob);
            m.config("dup_prob", d.dup_prob);
            m.config("drop_prob", d.drop_prob);
            m.config("corrupt_prob", d.corrupt_prob);
        }
        dirt = Some(d);
    }
    // `--corrupt-vehicle N` switches on a targeted corruption campaign:
    // that vehicle's records are corrupted from `--corrupt-after FRAC`
    // (default 0.5) of the stream onward — NaN bursts by default, a finite
    // additive drift with `--corrupt-mode bias [--corrupt-bias F]`. Works
    // with or without `--dirty` (targeting never perturbs background dirt).
    if let Some(v) = flags.get("corrupt-vehicle") {
        let vehicle: u32 = v.parse().map_err(|e| format!("--corrupt-vehicle: {e}"))?;
        let onset: f64 = get_num(flags, "corrupt-after", 0.5)?;
        if !(0.0..=1.0).contains(&onset) {
            return Err("--corrupt-after must be in [0, 1]".to_string());
        }
        let mode = match flags.get("corrupt-mode").map(String::as_str) {
            None | Some("nan") => navarchos_fleetsim::CorruptionMode::NanBurst,
            Some("bias") => {
                navarchos_fleetsim::CorruptionMode::Bias(get_num(flags, "corrupt-bias", 1.0e3)?)
            }
            Some(other) => {
                return Err(format!("--corrupt-mode must be nan or bias, got '{other}'"))
            }
        };
        if let Some(m) = manifest.as_mut() {
            m.config("corrupt_vehicle", vehicle as usize);
            m.config("corrupt_after", onset);
        }
        let base = dirt.take().unwrap_or(navarchos_fleetsim::DirtyConfig {
            seed: 0,
            reorder_prob: 0.0,
            reorder_horizon_s: 0,
            dup_prob: 0.0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            targeted: None,
        });
        dirt = Some(base.with_target(vehicle, onset, mode));
        lossy = true;
    }
    if let Some(d) = &dirt {
        stream = navarchos_fleetsim::dirty_stream(&stream, d);
    }
    if let Some(m) = manifest.as_mut() {
        m.config("shards", shards);
        m.config("horizon_s", cfg.horizon_s);
        m.config("vehicles", vehicles.len());
        m.config("clean_stream_items", clean_len);
        m.config("stream_items", stream.len());
        m.end_stage("load", clock);
    }
    println!(
        "serving {} stream items from {} vehicles through {shards} shard(s) \
         (lateness horizon {} s)",
        stream.len(),
        vehicles.len(),
        cfg.horizon_s
    );

    // `--batch-size N` feeds the engine in N-item slices with a health
    // observation between slices — the cadence that drives the per-shard
    // health FSM (0, the default, ingests everything as one batch and
    // health is only observed once, at the end).
    let batch_size: usize = get_num(flags, "batch-size", 0)?;
    // `--checkpoint-every N` snapshots the full engine state (plus stream
    // cursor and alarm ledger) every N items; `--restore FILE` resumes a
    // checkpointed run. The stream is regenerated deterministically from
    // the same flags, so skipping the cursor's worth of items lands the
    // restored engine exactly where the checkpointed one stopped.
    let checkpoint_every: usize = get_num(flags, "checkpoint-every", 0)?;
    let checkpoint_path: PathBuf =
        flags.get("checkpoint").map(PathBuf::from).unwrap_or_else(|| "serve-checkpoint.bin".into());
    // Burn-rate alerting rides on metrics: its own snapshot ring is fed at
    // batch boundaries (not the ops-plane sampler cadence) so a replay
    // that outruns wall-clock still accumulates evaluable deltas.
    let mut alerting =
        (flags.contains_key("metrics") || flags.contains_key("metrics-addr")).then(|| {
            (obs::BurnRateEvaluator::new(obs::default_policies()), obs::SnapshotRing::new(64))
        });
    let mut alert_log: Vec<obs::AlertTransition> = Vec::new();
    let clock = obs::stage_clock();
    let started = std::time::Instant::now();
    let dirty_len = stream.len() as u64;
    let mut engine;
    let mut alarms: Vec<navarchos_ingest::FleetAlarm>;
    let mut cursor: u64 = 0;
    if let Some(restore_path) = flags.get("restore") {
        let bytes = std::fs::read(restore_path).map_err(|e| format!("read {restore_path}: {e}"))?;
        let restored = navarchos_ingest::read_checkpoint(&names, cfg.clone(), &bytes)
            .map_err(|e| format!("restore {restore_path}: {e}"))?;
        engine = restored.engine;
        cursor = restored.cursor;
        alarms = restored.prior_alarms;
        if cursor > dirty_len {
            return Err(format!(
                "restore {restore_path}: checkpoint cursor {cursor} is past the regenerated \
                 stream ({dirty_len} items) — was the run configured identically?"
            ));
        }
        println!(
            "restored engine from {restore_path}: cursor {cursor}, {} prior alarm(s)",
            alarms.len()
        );
        stream.drain(..cursor as usize);
    } else {
        engine = ShardedIngest::new(&names, cfg.clone());
        alarms = Vec::new();
    }
    let cursor_at_start = cursor;
    let mut checkpoint_writes = 0usize;
    let mut transitions = Vec::new();
    observe_alerts(&mut alerting, &mut alert_log); // baseline snapshot
    let chunk_size = if batch_size > 0 { batch_size } else { checkpoint_every };
    if chunk_size == 0 {
        alarms.extend(engine.ingest_batch(stream));
    } else {
        // Checkpoints land at chunk boundaries, once per crossed multiple
        // of `checkpoint_every`; the end-of-stream boundary is skipped so
        // the file left behind always points mid-stream.
        let every = checkpoint_every as u64;
        let mut ckpt_bucket = if every > 0 { cursor / every } else { 0 };
        let mut chunk = stream;
        while !chunk.is_empty() {
            let rest = chunk.split_off(chunk_size.min(chunk.len()));
            cursor += chunk.len() as u64;
            alarms.extend(engine.ingest_batch(chunk));
            if batch_size > 0 {
                transitions.extend(engine.observe_health());
                observe_alerts(&mut alerting, &mut alert_log);
            }
            if every > 0 && cursor / every > ckpt_bucket && !rest.is_empty() {
                ckpt_bucket = cursor / every;
                write_checkpoint_file(&checkpoint_path, &engine, cursor, &alarms)?;
                checkpoint_writes += 1;
            }
            chunk = rest;
        }
    }
    alarms.extend(engine.finish());
    if checkpoint_writes > 0 {
        println!("wrote {checkpoint_writes} checkpoint(s) to {}", checkpoint_path.display());
    }
    transitions.extend(engine.observe_health());
    observe_alerts(&mut alerting, &mut alert_log);
    let wall = started.elapsed().as_secs_f64();
    if let Some(m) = manifest.as_mut() {
        m.end_stage("ingest", clock);
    }
    for t in &transitions {
        println!("  health: shard {} {} -> {}", t.shard, t.from.as_str(), t.to.as_str());
    }
    if let Some((eval, _)) = &alerting {
        let summary: Vec<String> =
            eval.states().iter().map(|(n, s)| format!("{n}={}", s.name())).collect();
        println!("  alerts: {} ({} transition(s))", summary.join(" "), alert_log.len());
    }

    let stats = engine.stats();
    let health = engine.health_states();
    for (i, (s, v)) in engine.shard_stats().iter().zip(engine.vehicles_per_shard()).enumerate() {
        println!(
            "  shard {i}: {v:3} vehicles, {:7} records, {:5} reordered, peak queue depth {}, \
             health {}",
            s.records,
            s.reordered,
            s.peak_queue_depth,
            health.get(i).map(|h| h.as_str()).unwrap_or("?")
        );
    }
    println!(
        "ingested {} records + {} maintenance markers in {wall:.3}s ({:.0} records/s)",
        stats.records,
        stats.maintenance,
        stats.records as f64 / wall.max(1e-9)
    );
    println!(
        "  reordered {}, duplicates {}, late-dropped {}, dead-lettered {}, forced releases {}",
        stats.reordered,
        stats.duplicates,
        stats.late_dropped,
        stats.dead_letter,
        stats.forced_releases
    );
    println!("  {} alarms across {} vehicles", stats.alarms, vehicles.len());
    for dl in engine.dead_letters().iter().take(5) {
        println!("  dead letter: vehicle {} t={} {:?}", dl.vehicle, dl.timestamp, dl.reason);
    }
    if let Some(m) = manifest.as_mut() {
        m.metric("ingest_wall_seconds", wall);
        m.metric("ingest_records_per_s", stats.records as f64 / wall.max(1e-9));
        m.metric("records", stats.records);
        m.metric("released", stats.released);
        m.metric("reordered", stats.reordered);
        m.metric("duplicates", stats.duplicates);
        m.metric("late_dropped", stats.late_dropped);
        m.metric("dead_letter", stats.dead_letter);
        m.metric("forced_releases", stats.forced_releases);
        m.metric("alarms", stats.alarms);
        m.metric("peak_queue_depth", stats.peak_queue_depth);
        m.metric("health_transitions", transitions.len());
        m.metric("checkpoints_written", checkpoint_writes);
        m.metric("restored_cursor", cursor_at_start as usize);
        m.metric(
            "health_worst",
            health.iter().map(|h| h.gauge_value()).max().unwrap_or(0) as usize,
        );
        if let Some((eval, _)) = &alerting {
            m.metric("alert_transitions", alert_log.len());
            m.metric(
                "alert_worst",
                eval.states().iter().map(|(_, s)| s.as_u64()).max().unwrap_or(0) as usize,
            );
        }
    }

    // `--journal FILE` — the alarm provenance journal: one NDJSON object
    // per alarm with the arrival timestamp, the watermark that released it,
    // and the per-stage wall-clock split. `xtask alarm-latency` summarises.
    if let Some(journal_path) = flags.get("journal") {
        let prov = engine.drain_provenance();
        let mut out = String::new();
        for p in &prov {
            let line = obs::Json::Obj(vec![
                ("vehicle".to_string(), obs::Json::from(u64::from(p.vehicle))),
                ("shard".to_string(), obs::Json::from(p.shard)),
                ("alarm_timestamp".to_string(), obs::Json::from(p.alarm_timestamp)),
                ("channel".to_string(), obs::Json::from(p.channel_name.as_str())),
                ("watermark_ts".to_string(), obs::Json::from(p.watermark_ts)),
                ("arrival_ns".to_string(), obs::Json::from(p.arrival_ns)),
                ("release_ns".to_string(), obs::Json::from(p.release_ns)),
                ("emit_ns".to_string(), obs::Json::from(p.emit_ns)),
                ("buffer_wait_ns".to_string(), obs::Json::from(p.buffer_wait_ns())),
                ("pipeline_ns".to_string(), obs::Json::from(p.pipeline_ns())),
            ]);
            out.push_str(&line.to_compact_string());
            out.push('\n');
        }
        std::fs::write(journal_path, out).map_err(|e| format!("write {journal_path}: {e}"))?;
        println!("alarm provenance journal ({} alarm(s)) written to {journal_path}", prov.len());
    }

    let mut verify_failure = None;
    if flags.contains_key("verify") {
        if lossy {
            eprintln!(
                "warning: --verify with dropping/corrupting dirt — equivalence with the \
                 sorted replay is not expected to hold"
            );
        }
        let clock = obs::stage_clock();
        let frames: Vec<(navarchos_tsframe::Frame, Vec<(i64, bool)>)> =
            vehicles.iter().map(|(_, f, m)| (f.clone(), m.clone())).collect();
        let per_vehicle = navarchos_core::replay_interleaved(&frames, &cfg.pipeline);
        let expected: BTreeMap<u32, Vec<navarchos_core::Alarm>> = vehicles
            .iter()
            .map(|(v, _, _)| *v)
            .zip(per_vehicle)
            .filter(|(_, a)| !a.is_empty())
            .collect();
        let mut got: BTreeMap<u32, Vec<navarchos_core::Alarm>> = BTreeMap::new();
        for fa in &alarms {
            got.entry(fa.vehicle).or_default().push(fa.alarm.clone());
        }
        // Counter accounting: every stream item must be offered (a restore
        // that skips or double-feeds records shifts `offered` off the
        // stream length) and every offered item must land in exactly one
        // outcome bucket. Alarm equivalence alone can miss an eaten
        // record whose loss happens not to change any alarm.
        let offered = stats.records + stats.maintenance;
        let accounted = stats.released + stats.duplicates + stats.late_dropped + stats.dead_letter;
        let accounting_ok = offered == dirty_len && accounted == offered;
        println!(
            "verify: accounting — offered {offered} of {dirty_len} stream items; released {} \
             + duplicates {} + late-dropped {} + dead-lettered {} = {accounted}",
            stats.released, stats.duplicates, stats.late_dropped, stats.dead_letter
        );
        let ok = got == expected;
        if let Some(m) = manifest.as_mut() {
            m.end_stage("verify", clock);
            m.metric("verified", usize::from(ok && accounting_ok));
        }
        if !accounting_ok {
            verify_failure = Some(format!(
                "serve-replay --verify: counter accounting shows lost or double-counted \
                 records (offered {offered} of {dirty_len}, outcome buckets sum to {accounted})"
            ));
        }
        if ok {
            println!(
                "verify: engine alarms byte-identical to sorted per-vehicle replay \
                 ({} alarmed vehicles)",
                expected.len()
            );
        } else {
            let mut diverged: Vec<u32> = expected
                .keys()
                .chain(got.keys())
                .filter(|v| expected.get(v) != got.get(v))
                .copied()
                .collect();
            diverged.sort_unstable();
            diverged.dedup();
            // Print the first mismatching alarm of each diverged vehicle,
            // both sides, so the failure is debuggable from the CI log
            // alone (a bare vehicle list forces a local repro).
            let fmt_alarm = |a: Option<&navarchos_core::Alarm>| match a {
                Some(a) => format!(
                    "t={} channel {} ({}) score {:.6} threshold {:.6}",
                    a.timestamp, a.channel, a.channel_name, a.score, a.threshold
                ),
                None => "<no alarm at this index>".to_string(),
            };
            for v in diverged.iter().take(5) {
                let e = expected.get(v).map(Vec::as_slice).unwrap_or(&[]);
                let g = got.get(v).map(Vec::as_slice).unwrap_or(&[]);
                let i = e
                    .iter()
                    .zip(g.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| e.len().min(g.len()));
                println!(
                    "verify: vehicle {v} diverges at alarm {i} (sorted replay raised {}, \
                     engine raised {}):",
                    e.len(),
                    g.len()
                );
                println!("  expected: {}", fmt_alarm(e.get(i)));
                println!("  got:      {}", fmt_alarm(g.get(i)));
            }
            if diverged.len() > 5 {
                println!("verify: ... and {} more diverged vehicle(s)", diverged.len() - 5);
            }
            verify_failure = Some(format!(
                "serve-replay --verify: engine alarms differ from sorted replay on \
                 vehicle(s) {diverged:?}"
            ));
        }
    }

    // `--hold-s N` keeps the process (and with it the `--metrics-addr`
    // endpoint) alive N seconds after the run so external scrapers get a
    // window to observe the final counters and health gauges.
    let hold_s: u64 = get_num(flags, "hold-s", 0)?;
    if hold_s > 0 {
        eprintln!("[obs] holding for {hold_s} s before exit");
        std::thread::sleep(std::time::Duration::from_secs(hold_s));
    }

    if let Some(m) = manifest {
        m.write(&manifest_path)
            .map_err(|e| format!("write manifest {}: {e}", manifest_path.display()))?;
        println!("run manifest written to {}", manifest_path.display());
    }
    match verify_failure {
        Some(msg) => Err(msg),
        None => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// check-manifest
// ---------------------------------------------------------------------------

/// Reads and schema-validates one manifest file.
fn read_manifest(path: &Path) -> Result<obs::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = obs::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    obs::manifest::validate(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(doc)
}

/// One-line identity of a validated manifest: which code produced it and
/// under what configuration — so CI logs say *what* was checked, not just
/// that something passed.
fn manifest_identity(doc: &obs::Json) -> String {
    let schema = doc.get("schema").and_then(obs::Json::as_str).unwrap_or("?");
    let command = doc.get("command").and_then(obs::Json::as_str).unwrap_or("?");
    let git = doc.get("git").and_then(obs::Json::as_str).unwrap_or("unknown");
    let config = match doc.get("config") {
        Some(obs::Json::Obj(pairs)) => pairs
            .iter()
            .map(|(k, v)| {
                let v = match v {
                    obs::Json::Str(s) => s.clone(),
                    other => other.to_compact_string(),
                };
                format!("{k}={v}")
            })
            .collect::<Vec<_>>()
            .join(" "),
        _ => String::new(),
    };
    format!("{schema} · {command} @ {git} · {config}")
}

/// Parses a run manifest and checks it against the schema (v2, or v1 for
/// committed baselines); the CI smoke job runs this over the manifest an
/// `evaluate --metrics` run emits. `--slo-p99-ms` additionally gates the
/// `alarm.latency_ns` p99, and `--against` diffs the manifest against a
/// committed baseline with relative tolerances, exiting nonzero on any
/// regression.
fn cmd_check_manifest(flags: &BTreeMap<String, String>) -> Result<(), String> {
    if let Some(dir) = flags.get("trend") {
        return check_manifest_trend(Path::new(dir), flags);
    }
    let path: PathBuf = flags.get("path").ok_or("--path FILE or --trend DIR is required")?.into();
    let doc = read_manifest(&path)?;
    println!("{}: valid — {}", path.display(), manifest_identity(&doc));

    if flags.contains_key("slo-p99-ms") {
        let slo_ms: f64 = get_num(flags, "slo-p99-ms", 0.0)?;
        let p99_ns = doc
            .get("histograms")
            .and_then(|h| h.get("alarm.latency_ns"))
            .and_then(|h| h.get("p99"))
            .and_then(obs::Json::as_num)
            .ok_or_else(|| {
                "--slo-p99-ms: manifest has no alarm.latency_ns histogram; produce one with a \
                 metrics-enabled run that replays alarms (evaluate --metrics or bench_baseline)"
                    .to_string()
            })?;
        let p99_ms = p99_ns / 1.0e6;
        if p99_ms > slo_ms {
            return Err(format!("alarm latency SLO exceeded: p99 {p99_ms:.3} ms > {slo_ms} ms"));
        }
        println!("alarm latency SLO ok: p99 {p99_ms:.3} ms <= {slo_ms} ms");
    }

    if let Some(baseline_path) = flags.get("against") {
        let baseline = read_manifest(Path::new(baseline_path))?;
        let cfg = obs::DiffConfig {
            tol_pct: get_num(flags, "tol-pct", 25.0)?,
            time_tol_pct: get_num(flags, "time-tol-pct", 50.0)?,
            ignore: flags
                .get("ignore")
                .map(|s| {
                    s.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect()
                })
                .unwrap_or_default(),
            eps: 1e-6,
        };
        let report = obs::diff_manifests(&doc, &baseline, &cfg);
        print!("{}", report.render());
        if !report.ok() {
            return Err(format!(
                "{} regression(s) against {baseline_path}",
                report.regressions.len()
            ));
        }
        println!("no regressions against {baseline_path}");
    }
    Ok(())
}

/// The PR number of a committed `BENCH_PR<k>.json` benchmark record.
fn bench_pr_number(name: &str) -> Option<u32> {
    name.strip_prefix("BENCH_PR")?.strip_suffix(".json")?.parse().ok()
}

/// `check-manifest --trend DIR`: walks every `BENCH_PR<k>.json` in `DIR` in
/// PR order and holds each consecutive pair of *run manifests* to the
/// timing-only trend rule ([`obs::diff_timings`]) — committed history must
/// not get monotonically slower past tolerance. Files in the series that
/// are not run manifests (the pre-manifest bench records) are reported and
/// skipped rather than failing the walk.
fn check_manifest_trend(dir: &Path, flags: &BTreeMap<String, String>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut series: Vec<(u32, String)> = rd
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            bench_pr_number(&name).map(|k| (k, name))
        })
        .collect();
    series.sort();
    if series.len() < 2 {
        return Err(format!(
            "--trend: found {} BENCH_PR*.json file(s) in {} — need at least 2 to walk",
            series.len(),
            dir.display()
        ));
    }

    let cfg = obs::DiffConfig {
        tol_pct: get_num(flags, "tol-pct", 25.0)?,
        time_tol_pct: get_num(flags, "time-tol-pct", 50.0)?,
        ignore: flags
            .get("ignore")
            .map(|s| s.split(',').map(|x| x.trim().to_string()).filter(|x| !x.is_empty()).collect())
            .unwrap_or_default(),
        eps: 1e-6,
    };

    let mut prev: Option<(String, obs::Json)> = None;
    let mut steps = 0usize;
    let mut regressions = 0usize;
    for (_, name) in &series {
        let doc = match read_manifest(&dir.join(name)) {
            Ok(doc) => doc,
            Err(e) => {
                println!("{name}: not a run manifest, skipped ({e})");
                continue;
            }
        };
        println!("{name}: {}", manifest_identity(&doc));
        if let Some((prev_name, prev_doc)) = &prev {
            let report = obs::diff_timings(&doc, prev_doc, &cfg);
            steps += 1;
            if report.ok() {
                println!("  {prev_name} -> {name}: ok ({} timing comparison(s))", report.compared);
            } else {
                print!("{}", report.render());
                regressions += report.regressions.len();
            }
        }
        prev = Some((name.clone(), doc));
    }
    if steps == 0 {
        return Err("--trend: fewer than 2 valid run manifests in the series".to_string());
    }
    if regressions > 0 {
        return Err(format!("{regressions} timing regression(s) across {steps} trend step(s)"));
    }
    println!("trend ok: {steps} step(s), no timing regressions beyond {}%", cfg.time_tol_pct);
    Ok(())
}

// ---------------------------------------------------------------------------
// top
// ---------------------------------------------------------------------------

/// One parsed scrape of a `--metrics-addr` endpoint: the snapshot rebuilt
/// into [`obs::MetricsSnapshot`] form (so [`obs::delta`] computes rates the
/// same way the in-process ops plane does) plus the raw summary samples for
/// quantile display.
struct ScrapedSnapshot {
    snap: obs::MetricsSnapshot,
    summaries: Vec<obs::Sample>,
}

/// Rebuilds a metrics snapshot from Prometheus exposition text: the
/// snapshot timestamp comes from the `# navarchos ops-plane snapshot at
/// t_ns=N` header, counters/gauges are classified by their `# TYPE` lines,
/// and everything else (summary quantiles, `_sum`/`_count`) is kept as raw
/// samples.
fn parse_scrape(text: &str) -> Result<ScrapedSnapshot, String> {
    let mut t_ns = 0u64;
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# navarchos ops-plane snapshot at t_ns=") {
            t_ns = rest.trim().parse().unwrap_or(0);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            if let (Some(name), Some(kind)) = (it.next(), it.next()) {
                kinds.insert(name.to_string(), kind.to_string());
            }
        }
    }
    let mut snap = obs::MetricsSnapshot {
        t_ns,
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
        histograms: BTreeMap::new(),
        sketches: BTreeMap::new(),
    };
    let mut summaries = Vec::new();
    for s in obs::parse_exposition(text)? {
        match kinds.get(&s.name).map(String::as_str) {
            Some("counter") => {
                snap.counters.insert(s.name, s.value.max(0.0) as u64);
            }
            Some("gauge") => {
                snap.gauges.insert(s.name, s.value.max(0.0) as u64);
            }
            _ => summaries.push(s),
        }
    }
    Ok(ScrapedSnapshot { snap, summaries })
}

/// Renders one refresh of the ops tables from the current scrape and (when
/// available) the previous one. Rates print as `-` until two distinct
/// snapshots have been seen — a rate needs an interval.
///
/// Layout: a per-shard health table, then burn-rate alert states, then
/// `ingest.quality.*` monitor gauges, then every remaining gauge, then the
/// summary (histogram/sketch) quantiles. Each table's name column is sized
/// to its longest entry, so metric names are never truncated.
fn render_top(addr: &str, scraped: &ScrapedSnapshot, prev: Option<&obs::MetricsSnapshot>) {
    let snap = &scraped.snap;
    let d = prev.map(|p| obs::delta(p, snap));
    let fresh = d.as_ref().is_some_and(|d| d.dt_ns > 0);
    let rate = |name: &str| -> String {
        match &d {
            Some(d) if fresh => format!("{:.0}", d.counter_rate(name)),
            _ => "-".to_string(),
        }
    };
    let quantile = |metric: &str, q: &str| -> Option<f64> {
        scraped
            .summaries
            .iter()
            .find(|s| s.name == metric && s.labels.iter().any(|(k, v)| k == "quantile" && v == q))
            .map(|s| s.value)
    };
    let alarm_p99 = quantile("alarm_latency_ns", "0.99")
        .map(|v| format!("{:.2} ms", v / 1.0e6))
        .unwrap_or_else(|| "-".to_string());
    println!(
        "navarchos top @ {addr}  t={:.1}s  ingest {} rec/s  alarm p99 {alarm_p99}",
        snap.t_ns as f64 / 1.0e9,
        rate("ingest_records"),
    );
    println!("  {:>5}  {:<9} {:>10} {:>11}", "shard", "health", "rec/s", "queue p90");
    for (name, &hv) in &snap.gauges {
        let Some(id) = name.strip_prefix("ingest_shard").and_then(|r| r.strip_suffix("_health"))
        else {
            continue;
        };
        let health = match hv {
            0 => "ok",
            1 => "degraded",
            2 => "stalled",
            _ => "?",
        };
        let depth = quantile(&format!("ingest_shard{id}_queue_depth"), "0.9")
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "  {:>5}  {:<9} {:>10} {:>11}",
            id,
            health,
            rate(&format!("ingest_shard{id}_records")),
            depth
        );
    }

    // Burn-rate alert states: one row per `alert.<name>.state` gauge, with
    // the burn gauges (exported as milli-multiples) and transition count.
    let alerts: Vec<(&str, u64)> = snap
        .gauges
        .iter()
        .filter_map(|(n, &v)| {
            n.strip_prefix("alert_").and_then(|r| r.strip_suffix("_state")).map(|a| (a, v))
        })
        .collect();
    if !alerts.is_empty() {
        let w = alerts.iter().map(|(n, _)| n.len()).max().unwrap_or(0).max("alert".len());
        println!(
            "  {:<w$}  {:<8} {:>10} {:>10} {:>12}",
            "alert", "state", "burn fast", "burn slow", "transitions"
        );
        for (name, v) in &alerts {
            let state = match v {
                0 => "ok",
                1 => "warning",
                2 => "firing",
                _ => "?",
            };
            let burn = |kind: &str| -> String {
                snap.gauges
                    .get(&format!("alert_{name}_burn_{kind}_m"))
                    .map(|&m| format!("{:.1}x", m as f64 / 1000.0))
                    .unwrap_or_else(|| "-".to_string())
            };
            let transitions = snap
                .counters
                .get(&format!("alert_{name}_transitions"))
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".to_string());
            println!(
                "  {:<w$}  {:<8} {:>10} {:>10} {:>12}",
                name,
                state,
                burn("fast"),
                burn("slow"),
                transitions
            );
        }
    }

    // Remaining gauges in two groups: data-quality monitors first, then
    // everything not already rendered above.
    let rendered_above = |n: &str| {
        n.starts_with("alert_") || (n.starts_with("ingest_shard") && n.ends_with("_health"))
    };
    let group = |title: &str, rows: &[(&String, &u64)]| {
        if rows.is_empty() {
            return;
        }
        let w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0).max(title.len());
        println!("  {:<w$} {:>12}", title, "value");
        for (name, value) in rows {
            println!("  {:<w$} {:>12}", name, value);
        }
    };
    let (quality, other): (Vec<_>, Vec<_>) = snap
        .gauges
        .iter()
        .filter(|(n, _)| !rendered_above(n))
        .partition(|(n, _)| n.starts_with("ingest_quality_"));
    group("quality", &quality);
    group("gauge", &other);

    // Summary quantiles (histograms and quantile sketches): one row per
    // exported summary family.
    let mut summary_names: Vec<&str> = scraped
        .summaries
        .iter()
        .filter(|s| s.labels.iter().any(|(k, _)| k == "quantile"))
        .map(|s| s.name.as_str())
        .collect();
    summary_names.sort_unstable();
    summary_names.dedup();
    if !summary_names.is_empty() {
        let w = summary_names.iter().map(|n| n.len()).max().unwrap_or(0).max("summary".len());
        println!("  {:<w$} {:>14} {:>14} {:>14}", "summary", "p50", "p90", "p99");
        for name in summary_names {
            let q = |q: &str| {
                quantile(name, q).map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".to_string())
            };
            println!("  {:<w$} {:>14} {:>14} {:>14}", name, q("0.5"), q("0.9"), q("0.99"));
        }
    }
}

/// `top --addr HOST:PORT` — polls a live scrape endpoint and renders the
/// per-shard table every `--interval-ms` (default 1000). `--iterations N`
/// stops after N refreshes (0, the default, polls until interrupted).
fn cmd_top(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let addr = flags.get("addr").ok_or("--addr HOST:PORT is required")?;
    let interval_ms: u64 = get_num(flags, "interval-ms", 1000)?;
    let iterations: u64 = get_num(flags, "iterations", 0)?;
    let mut prev: Option<obs::MetricsSnapshot> = None;
    let mut round = 0u64;
    loop {
        let text = obs::scrape(addr).map_err(|e| format!("scrape {addr}: {e}"))?;
        let scraped = parse_scrape(&text)?;
        render_top(addr, &scraped, prev.as_ref());
        prev = Some(scraped.snap);
        round += 1;
        if iterations != 0 && round >= iterations {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// resample
// ---------------------------------------------------------------------------

fn cmd_resample(flags: &BTreeMap<String, String>) -> Result<(), String> {
    use navarchos_tsframe::{resample, FillMethod, ResampleSpec};

    let input: PathBuf = flags.get("telemetry").ok_or("--telemetry FILE is required")?.into();
    let out: PathBuf = flags.get("out").ok_or("--out FILE is required")?.into();
    let period: i64 = get_num(flags, "period", 60)?;
    let max_gap: i64 = get_num(flags, "max-gap", 6 * 3_600)?;
    if period <= 0 || max_gap <= 0 {
        return Err("--period and --max-gap must be positive".to_string());
    }
    let method = match flags.get("method").map(String::as_str) {
        None | Some("linear") => FillMethod::Linear,
        Some("previous") => FillMethod::Previous,
        Some(other) => return Err(format!("--method must be linear or previous, got '{other}'")),
    };

    let frame = read_csv_file(&input).map_err(|e| e.to_string())?;
    let gridded = resample(&frame, ResampleSpec { period, max_gap, method });
    write_csv_file(&gridded, &out).map_err(|e| e.to_string())?;
    println!(
        "{} records -> {} grid points at {period} s ({} written)",
        frame.len(),
        gridded.len(),
        out.display(),
    );
    Ok(())
}

/// Loads `(timestamp, is_repair)` maintenance events from events.csv,
/// optionally filtered to one vehicle.
fn load_events(path: &Path, vehicle: Option<usize>) -> Result<Vec<(i64, bool)>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => return Ok(Vec::new()), // events are optional
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != 3 {
            return Err(format!("{}: line {} malformed", path.display(), i + 1));
        }
        let v: usize = cells[0].trim().parse().map_err(|e| format!("bad vehicle: {e}"))?;
        if let Some(want) = vehicle {
            if v != want {
                continue;
            }
        }
        let t: i64 = cells[1].trim().parse().map_err(|e| format!("bad timestamp: {e}"))?;
        match cells[2].trim() {
            "service" => out.push((t, false)),
            "repair" => out.push((t, true)),
            _ => {} // inspections / DTCs don't reset the reference
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn bench_pr_numbers_parse_numerically() {
        assert_eq!(bench_pr_number("BENCH_PR3.json"), Some(3));
        assert_eq!(bench_pr_number("BENCH_PR12.json"), Some(12));
        assert_eq!(bench_pr_number("BENCH.json"), None);
        assert_eq!(bench_pr_number("BENCH_PRx.json"), None);
        assert_eq!(bench_pr_number("BENCH_PR3.json.bak"), None);
    }

    #[test]
    fn parse_flags_happy_path() {
        let args: Vec<String> =
            ["--out", "/tmp/x", "--vehicles", "8"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.get("out").map(String::as_str), Some("/tmp/x"));
        assert_eq!(f.get("vehicles").map(String::as_str), Some("8"));
    }

    #[test]
    fn parse_flags_rejects_bare_values() {
        let args: Vec<String> = ["simulate"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_flags_rejects_missing_value() {
        let args: Vec<String> = ["--out"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_flags_boolean_switches_take_no_value() {
        let args: Vec<String> =
            ["--metrics", "--dir", "/tmp/x", "--trace"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.get("metrics").map(String::as_str), Some("1"));
        assert_eq!(f.get("trace").map(String::as_str), Some("1"));
        assert_eq!(f.get("dir").map(String::as_str), Some("/tmp/x"));
    }

    #[test]
    fn get_num_defaults_and_parses() {
        let f = flags(&[("days", "42")]);
        assert_eq!(get_num::<usize>(&f, "days", 7).unwrap(), 42);
        assert_eq!(get_num::<usize>(&f, "missing", 7).unwrap(), 7);
        let bad = flags(&[("days", "not-a-number")]);
        assert!(get_num::<usize>(&bad, "days", 7).is_err());
    }

    #[test]
    fn load_events_filters_and_sorts() {
        let dir = std::env::temp_dir().join("navarchos-cli-test-events");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.csv");
        std::fs::write(
            &path,
            "vehicle,timestamp,kind\n1,200,repair\n0,100,service\n1,50,service\n1,75,inspection\n",
        )
        .unwrap();
        let all = load_events(&path, None).unwrap();
        assert_eq!(all, vec![(50, false), (100, false), (200, true)], "inspections dropped");
        let only_v1 = load_events(&path, Some(1)).unwrap();
        assert_eq!(only_v1, vec![(50, false), (200, true)]);
        // A missing file is not an error (events are optional).
        assert!(load_events(&dir.join("nope.csv"), None).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! End-to-end tests of the `navarchos` binary: simulate → evaluate →
//! monitor → explore over a temporary directory.

use std::path::PathBuf;
use std::process::Command;

fn navarchos() -> Command {
    Command::new(env!("CARGO_BIN_EXE_navarchos"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("navarchos-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn simulate_then_evaluate_and_explore() {
    let dir = temp_dir("flow");
    let out = navarchos()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--vehicles", "6", "--days", "80", "--failures", "2", "--seed", "5"])
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("vehicle-00.csv").exists());
    assert!(dir.join("events.csv").exists());
    assert!(dir.join("ground_truth.csv").exists());

    let out = navarchos()
        .args(["evaluate", "--dir", dir.to_str().unwrap(), "--ph", "30"])
        .output()
        .expect("run evaluate");
    assert!(out.status.success(), "evaluate failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("threshold-factor sweep"));
    assert!(text.contains("best: factor"));

    let out = navarchos()
        .args(["monitor", "--telemetry"])
        .arg(dir.join("vehicle-00.csv"))
        .args(["--events"])
        .arg(dir.join("events.csv"))
        .args(["--factor", "12"])
        .output()
        .expect("run monitor");
    assert!(out.status.success(), "monitor failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("loaded"));

    let out = navarchos()
        .args(["explore", "--dir", dir.to_str().unwrap(), "--clusters", "4"])
        .output()
        .expect("run explore");
    assert!(out.status.success(), "explore failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("cluster 0"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_metrics_writes_valid_manifest_and_trace() {
    let dir = temp_dir("manifest");
    let out = navarchos()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--vehicles", "5", "--days", "60", "--failures", "1", "--seed", "9"])
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));

    let manifest = dir.join("run-manifest.json");
    let out = navarchos()
        .args(["evaluate", "--dir", dir.to_str().unwrap(), "--metrics"])
        .args(["--manifest", manifest.to_str().unwrap()])
        .output()
        .expect("run evaluate --metrics");
    assert!(out.status.success(), "evaluate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(manifest.exists(), "manifest written");

    // The manifest parses, validates and carries per-stage timings plus the
    // pipeline's counters.
    let text = std::fs::read_to_string(&manifest).unwrap();
    let doc = navarchos_obs::json::parse(&text).expect("manifest is valid JSON");
    navarchos_obs::manifest::validate(&doc).expect("manifest matches schema");
    let stages = match doc.get("stages") {
        Some(navarchos_obs::Json::Arr(s)) => s,
        other => panic!("stages: {other:?}"),
    };
    let names: Vec<_> =
        stages.iter().filter_map(|s| s.get("name").and_then(navarchos_obs::Json::as_str)).collect();
    assert_eq!(names, ["load", "score_vehicles", "factor_sweep", "alarm_replay"]);
    let records = doc
        .get("counters")
        .and_then(|c| c.get("runner.records"))
        .and_then(navarchos_obs::Json::as_num)
        .expect("runner.records counter present");
    assert!(records > 0.0, "vehicles streamed records: {records}");
    assert!(doc.get("metrics").and_then(|m| m.get("f05")).is_some(), "detection metrics recorded");

    // An NDJSON trace was written next to it, and every line round-trips
    // through the hand-rolled parser.
    let trace = manifest.with_extension("trace.ndjson");
    assert!(trace.exists(), "trace written");
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    let mut events = 0;
    for line in trace_text.lines() {
        navarchos_obs::parse_line(line).expect("trace line parses");
        events += 1;
    }
    assert!(events > 0, "trace is not empty");

    // The alarm-replay pass recorded emission latencies.
    let latency = doc.get("histograms").and_then(|h| h.get("alarm.latency_ns"));
    let p99 = latency.and_then(|h| h.get("p99")).and_then(navarchos_obs::Json::as_num);
    assert!(p99.is_some(), "alarm.latency_ns p99 present: {latency:?}");

    // check-manifest accepts the real manifest (and says what it checked),
    // gates the latency SLO in both directions, diffs the manifest against
    // itself cleanly, and rejects garbage.
    let out = navarchos()
        .args(["check-manifest", "--path", manifest.to_str().unwrap()])
        .output()
        .expect("run check-manifest");
    assert!(out.status.success(), "check failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("valid"));
    assert!(text.contains("evaluate @"), "identity line names the command: {text}");
    assert!(text.contains("vehicles=5"), "identity line summarises config: {text}");

    let out = navarchos()
        .args(["check-manifest", "--path", manifest.to_str().unwrap()])
        .args(["--slo-p99-ms", "60000"])
        .output()
        .unwrap();
    assert!(out.status.success(), "lenient SLO failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("SLO ok"));

    let out = navarchos()
        .args(["check-manifest", "--path", manifest.to_str().unwrap()])
        .args(["--slo-p99-ms", "0.000001"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "impossible SLO must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("SLO exceeded"));

    let out = navarchos()
        .args(["check-manifest", "--path", manifest.to_str().unwrap()])
        .args(["--against", manifest.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "self-diff failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no regressions"));

    let bogus = dir.join("bogus.json");
    std::fs::write(&bogus, "{\"schema\": \"navarchos-run-manifest/v1\"}").unwrap();
    let out =
        navarchos().args(["check-manifest", "--path", bogus.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "incomplete manifest must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing required key"));

    std::fs::remove_dir_all(&dir).ok();
}

/// A baseline with an artificially inflated stage time must make
/// `check-manifest --against` exit nonzero and name the offending metric:
/// the other direction of the regression gate (current slower than
/// baseline).
#[test]
fn check_manifest_against_flags_inflated_stage_time() {
    let dir = temp_dir("diff");
    let out = navarchos()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--vehicles", "4", "--days", "50", "--failures", "1", "--seed", "11"])
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));

    let manifest = dir.join("run-manifest.json");
    let out = navarchos()
        .args(["evaluate", "--dir", dir.to_str().unwrap(), "--metrics"])
        .args(["--manifest", manifest.to_str().unwrap()])
        .output()
        .expect("run evaluate --metrics");
    assert!(out.status.success(), "evaluate failed: {}", String::from_utf8_lossy(&out.stderr));

    // Shrink the baseline's score_vehicles wall time to a tenth: the real
    // manifest now looks 10x slower than "before".
    let text = std::fs::read_to_string(&manifest).unwrap();
    let doc = navarchos_obs::json::parse(&text).unwrap();
    let wall = doc
        .get("stages")
        .and_then(|s| match s {
            navarchos_obs::Json::Arr(items) => items
                .iter()
                .find(|st| {
                    st.get("name").and_then(navarchos_obs::Json::as_str) == Some("score_vehicles")
                })
                .and_then(|st| st.get("wall_seconds"))
                .and_then(navarchos_obs::Json::as_num),
            _ => None,
        })
        .expect("score_vehicles wall time");
    let baseline = dir.join("baseline.json");
    let shrunk = text.replacen(
        &format!("\"wall_seconds\": {wall}"),
        &format!("\"wall_seconds\": {}", wall / 10.0),
        1,
    );
    assert_ne!(shrunk, text, "surgery must hit the stage time");
    std::fs::write(&baseline, shrunk).unwrap();

    let out = navarchos()
        .args(["check-manifest", "--path", manifest.to_str().unwrap()])
        .args(["--against", baseline.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "10x stage inflation must regress");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("stages.score_vehicles.wall_seconds"),
        "offending metric named: {stdout}"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("regression"), "{stdout}");

    // The same diff passes once the offending key is ignored (the knob CI
    // uses for known-noisy stages).
    let out = navarchos()
        .args(["check-manifest", "--path", manifest.to_str().unwrap()])
        .args(["--against", baseline.to_str().unwrap()])
        .args(["--ignore", "stages.score_vehicles.wall_seconds,stages.score_vehicles.cpu_seconds"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "--ignore must clear the gate: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn monitor_attributes_alarms_by_day_and_feature_name() {
    let dir = temp_dir("monitor");
    let out = navarchos()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--vehicles", "4", "--days", "80", "--failures", "2", "--seed", "3"])
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));

    // A tight factor makes alarms near-certain on a failing vehicle; accept
    // either outcome but require the new format whenever one fires.
    let out = navarchos()
        .args(["monitor", "--telemetry"])
        .arg(dir.join("vehicle-00.csv"))
        .args(["--events"])
        .arg(dir.join("events.csv"))
        .args(["--factor", "2"])
        .output()
        .expect("run monitor");
    assert!(out.status.success(), "monitor failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    for line in text.lines().filter(|l| l.contains("OPERATOR ALARM")) {
        assert!(line.starts_with("day "), "alarm line carries a day offset: {line}");
        assert!(line.contains("features: "), "alarm line names features: {line}");
        let names = line.split("features: ").nth(1).unwrap_or("");
        assert!(
            names.chars().any(|c| c.is_alphabetic()),
            "feature attribution is by name, not index: {line}"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = navarchos().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = navarchos().args(["evaluate", "--dir", "/definitely/not/here"]).output().unwrap();
    assert!(!out.status.success());

    let out = navarchos().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn resample_roundtrip() {
    let dir = temp_dir("resample");
    let input = dir.join("raw.csv");
    // Two rides, 30 s cadence, separated by a >6 h gap.
    let mut csv = String::from("timestamp,rpm,speed\n");
    for i in 0..20 {
        csv.push_str(&format!("{},{},{}\n", i * 30, 1500 + i * 10, 40 + i));
    }
    let resume = 19 * 30 + 8 * 3_600;
    for i in 0..20 {
        csv.push_str(&format!("{},{},{}\n", resume + i * 30, 2000, 60));
    }
    std::fs::write(&input, csv).unwrap();

    let out_path = dir.join("gridded.csv");
    let out = navarchos()
        .args(["resample", "--telemetry", input.to_str().unwrap()])
        .args(["--out", out_path.to_str().unwrap(), "--period", "60"])
        .output()
        .expect("run resample");
    assert!(out.status.success(), "resample failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&out_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].contains("rpm"), "header preserved: {}", lines[0]);
    // Regular 60 s spacing within rides, and no grid points inside the gap.
    let stamps: Vec<i64> =
        lines[1..].iter().map(|l| l.split(',').next().unwrap().parse().unwrap()).collect();
    assert!(stamps.windows(2).all(|w| (w[1] - w[0]) % 60 == 0));
    assert!(!stamps.iter().any(|&t| t > 19 * 30 && t < resume), "gap bridged");

    // Invalid method is rejected.
    let out = navarchos()
        .args(["resample", "--telemetry", input.to_str().unwrap()])
        .args(["--out", out_path.to_str().unwrap(), "--method", "cubic"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_replay_writes_parsable_alarm_journal() {
    let dir = temp_dir("journal");
    let journal = dir.join("alarms.ndjson");
    let out = navarchos()
        .args(["serve-replay", "--vehicles", "12", "--days", "30", "--seed", "7"])
        .args(["--shards", "2", "--dirty", "99", "--verify"])
        .args(["--journal", journal.to_str().unwrap()])
        .output()
        .expect("run serve-replay");
    assert!(out.status.success(), "serve-replay failed: {}", String::from_utf8_lossy(&out.stderr));

    // The journal is NDJSON with the exact schema `xtask alarm-latency`
    // consumes: one object per alarm, stage stamps monotonically ordered.
    let text = std::fs::read_to_string(&journal).expect("journal written");
    assert!(!text.trim().is_empty(), "a 12-vehicle dirty replay must raise alarms");
    for (i, line) in text.lines().enumerate() {
        let doc = navarchos_obs::json::parse(line)
            .unwrap_or_else(|e| panic!("journal line {}: {e}", i + 1));
        for key in [
            "vehicle",
            "shard",
            "alarm_timestamp",
            "channel",
            "watermark_ts",
            "arrival_ns",
            "release_ns",
            "emit_ns",
            "buffer_wait_ns",
            "pipeline_ns",
        ] {
            assert!(doc.get(key).is_some(), "journal line {} lacks `{key}`", i + 1);
        }
        let num = |k: &str| doc.get(k).and_then(navarchos_obs::Json::as_num).unwrap();
        assert!(num("release_ns") >= num("arrival_ns"), "line {}: negative buffer wait", i + 1);
        assert!(num("emit_ns") >= num("release_ns"), "line {}: negative pipeline time", i + 1);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_replay_ops_plane_is_scrapable_live() {
    // Pid-salted port so parallel test invocations don't collide.
    let port = 21000 + (std::process::id() % 20000) as u16;
    let addr = format!("127.0.0.1:{port}");
    let mut child = navarchos()
        .args(["serve-replay", "--vehicles", "10", "--days", "30", "--seed", "11"])
        .args(["--shards", "2", "--batch-size", "2000"])
        .args(["--metrics-addr", &addr, "--snapshot-ms", "50", "--hold-s", "60"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve-replay");

    // Poll the live endpoint until a snapshot carries both the ingest
    // counters and the per-shard health gauges (they appear once the
    // sampler has ticked after the first batch); the clean stream must
    // report every shard Ok (gauge value 0).
    let mut seen = false;
    let mut last = String::new();
    for _ in 0..150 {
        if let Ok(text) = navarchos_obs::scrape(&addr) {
            last = text;
            let samples =
                navarchos_obs::parse_exposition(&last).expect("endpoint speaks exposition format");
            let healths: Vec<f64> = samples
                .iter()
                .filter(|s| s.name.starts_with("ingest_shard") && s.name.ends_with("_health"))
                .map(|s| s.value)
                .collect();
            if samples.iter().any(|s| s.name == "ingest_records") && healths.len() == 2 {
                assert!(
                    healths.iter().all(|&v| v == 0.0),
                    "clean stream must scrape as Ok on every shard, got {healths:?}\n{last}"
                );
                seen = true;
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(seen, "never scraped ingest counters + 2 health gauges from {addr}; last:\n{last}");
}

//! End-to-end tests of the `navarchos` binary: simulate → evaluate →
//! monitor → explore over a temporary directory.

use std::path::PathBuf;
use std::process::Command;

fn navarchos() -> Command {
    Command::new(env!("CARGO_BIN_EXE_navarchos"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("navarchos-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn simulate_then_evaluate_and_explore() {
    let dir = temp_dir("flow");
    let out = navarchos()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--vehicles", "6", "--days", "80", "--failures", "2", "--seed", "5"])
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("vehicle-00.csv").exists());
    assert!(dir.join("events.csv").exists());
    assert!(dir.join("ground_truth.csv").exists());

    let out = navarchos()
        .args(["evaluate", "--dir", dir.to_str().unwrap(), "--ph", "30"])
        .output()
        .expect("run evaluate");
    assert!(out.status.success(), "evaluate failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("threshold-factor sweep"));
    assert!(text.contains("best: factor"));

    let out = navarchos()
        .args(["monitor", "--telemetry"])
        .arg(dir.join("vehicle-00.csv"))
        .args(["--events"])
        .arg(dir.join("events.csv"))
        .args(["--factor", "12"])
        .output()
        .expect("run monitor");
    assert!(out.status.success(), "monitor failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("loaded"));

    let out = navarchos()
        .args(["explore", "--dir", dir.to_str().unwrap(), "--clusters", "4"])
        .output()
        .expect("run explore");
    assert!(out.status.success(), "explore failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("cluster 0"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = navarchos().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = navarchos().args(["evaluate", "--dir", "/definitely/not/here"]).output().unwrap();
    assert!(!out.status.success());

    let out = navarchos().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn resample_roundtrip() {
    let dir = temp_dir("resample");
    let input = dir.join("raw.csv");
    // Two rides, 30 s cadence, separated by a >6 h gap.
    let mut csv = String::from("timestamp,rpm,speed\n");
    for i in 0..20 {
        csv.push_str(&format!("{},{},{}\n", i * 30, 1500 + i * 10, 40 + i));
    }
    let resume = 19 * 30 + 8 * 3_600;
    for i in 0..20 {
        csv.push_str(&format!("{},{},{}\n", resume + i * 30, 2000, 60));
    }
    std::fs::write(&input, csv).unwrap();

    let out_path = dir.join("gridded.csv");
    let out = navarchos()
        .args(["resample", "--telemetry", input.to_str().unwrap()])
        .args(["--out", out_path.to_str().unwrap(), "--period", "60"])
        .output()
        .expect("run resample");
    assert!(out.status.success(), "resample failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&out_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines[0].contains("rpm"), "header preserved: {}", lines[0]);
    // Regular 60 s spacing within rides, and no grid points inside the gap.
    let stamps: Vec<i64> =
        lines[1..].iter().map(|l| l.split(',').next().unwrap().parse().unwrap()).collect();
    assert!(stamps.windows(2).all(|w| (w[1] - w[0]) % 60 == 0));
    assert!(!stamps.iter().any(|&t| t > 19 * 30 && t < resume), "gap bridged");

    // Invalid method is rejected.
    let out = navarchos()
        .args(["resample", "--telemetry", input.to_str().unwrap()])
        .args(["--out", out_path.to_str().unwrap(), "--method", "cubic"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

//! Property-based tests for the fleet simulator.

use navarchos_fleetsim::faults::{FaultEffects, FaultKind, FaultWindow};
use navarchos_fleetsim::physics::{ambient_temperature, simulate_ride, ThermalState};
use navarchos_fleetsim::types::pid;
use navarchos_fleetsim::usage::RideKind;
use navarchos_fleetsim::vehicle::VehicleModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn signals_physically_plausible(
        seed in 0u64..1000,
        kind_ix in 0usize..6,
        minutes in 5usize..120,
        ambient in -5.0f64..35.0,
    ) {
        let kind = [
            RideKind::Urban,
            RideKind::Regional,
            RideKind::Highway,
            RideKind::Short,
            RideKind::ExtraShort,
            RideKind::Long,
        ][kind_ix];
        let model = VehicleModel::compact();
        let mut thermal = ThermalState::cold(ambient);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        simulate_ride(
            &model, &FaultEffects::default(), &mut thermal, kind, 0, minutes, ambient, &mut rng, &mut out,
        );
        prop_assert_eq!(out.len(), minutes);
        for (_, r) in &out {
            prop_assert!((0.0..8000.0).contains(&r[pid::RPM]));
            prop_assert!((0.0..=200.0).contains(&r[pid::SPEED]));
            prop_assert!(r[pid::COOLANT] > ambient - 10.0 && r[pid::COOLANT] <= 128.0);
            prop_assert!((5.0..255.0).contains(&r[pid::MAP]));
            prop_assert!((0.0..650.0).contains(&r[pid::MAF]));
        }
    }

    #[test]
    fn severity_always_in_unit_interval(start in 0i64..1000, len in 1i64..1000, t in -2000i64..4000) {
        let w = FaultWindow {
            vehicle: 0,
            start,
            repair: start + len,
            kind: FaultKind::IntakeLeak,
        };
        let s = w.severity(t);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn severity_monotone_inside_window(start in 0i64..100, len in 10i64..1000, f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        let w = FaultWindow { vehicle: 0, start, repair: start + len, kind: FaultKind::MafSensorDrift };
        let (a, b) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let t1 = start + (a * (len - 1) as f64) as i64;
        let t2 = start + (b * (len - 1) as f64) as i64;
        prop_assert!(w.severity(t1) <= w.severity(t2) + 1e-12);
    }

    #[test]
    fn fault_effects_bounded(sev in 0.0f64..1.0) {
        for kind in FaultKind::all() {
            let mut fx = FaultEffects::default();
            fx.accumulate(kind, sev);
            prop_assert!(fx.cooling_scale > 0.0 && fx.cooling_scale <= 2.0);
            prop_assert!(fx.maf_gain > 0.0 && fx.maf_gain <= 1.0);
            prop_assert!((0.0..1.0).contains(&fx.maf_dropout_p));
            prop_assert!((0.0..1.0).contains(&fx.map_surge_p));
        }
    }

    #[test]
    fn ambient_seasonal_bounds(day in 0usize..365, hour in 0.0f64..24.0) {
        let t = ambient_temperature(day, hour, 0.0);
        prop_assert!((-5.0..40.0).contains(&t), "ambient {t}");
    }

    #[test]
    fn rides_deterministic(seed in 0u64..500) {
        let model = VehicleModel::sedan();
        let run = || {
            let mut thermal = ThermalState::cold(15.0);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            simulate_ride(
                &model, &FaultEffects::default(), &mut thermal, RideKind::Urban, 0, 30, 15.0,
                &mut rng, &mut out,
            );
            out
        };
        prop_assert_eq!(run(), run());
    }
}

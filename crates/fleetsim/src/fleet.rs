//! Fleet assembly: puts vehicles, usage, physics, faults and events
//! together into a complete, deterministic synthetic dataset with the same
//! shape as the paper's Navarchos fleet.

use crate::events::{sort_events, Event, EventKind};
use crate::faults::{FaultEffects, FaultKind, FaultWindow};
use crate::physics::{ambient_temperature_with, simulate_ride, ThermalState};
use crate::types::{VehicleId, PID_NAMES, START_EPOCH};
use crate::usage::UsageProfile;
use crate::vehicle::VehicleModel;
use navarchos_tsframe::Frame;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Seconds per simulated day.
const DAY: i64 = 86_400;

/// Configuration of a simulated fleet.
///
/// ```
/// use navarchos_fleetsim::FleetConfig;
///
/// let fleet = FleetConfig::small(7).generate();
/// assert_eq!(fleet.vehicles.len(), 6);
/// assert_eq!(fleet.recorded_repair_count(), 2);
/// // Deterministic: the same seed always produces the same fleet.
/// assert_eq!(fleet.total_records(), FleetConfig::small(7).generate().total_records());
/// ```
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of vehicles.
    pub n_vehicles: usize,
    /// Number of simulated days.
    pub n_days: usize,
    /// Master seed; every run with the same config is bit-identical.
    pub seed: u64,
    /// Number of vehicles whose events are recorded by the FMS
    /// (the paper's `setting26`).
    pub n_recorded: usize,
    /// Number of failure (fault → repair) episodes, all placed on recorded
    /// vehicles.
    pub n_failures: usize,
    /// Range of degradation lead time before a repair, in days.
    pub fault_lead_days: (usize, usize),
    /// Range of the periodic service interval, in days.
    pub service_interval_days: (usize, usize),
    /// Probability that a service/inspection on a recorded vehicle is
    /// actually reported to the FMS (human indifference).
    pub recording_reliability: f64,
    /// Seasonal ambient-temperature amplitude (°C); 0 removes seasonality
    /// entirely (the seasonal-drift ablation's knob).
    pub seasonal_amplitude: f64,
}

impl FleetConfig {
    /// The paper's fleet: 40 vehicles over one year, 26 with recorded
    /// events, 9 failures. Produces ≈ 1.5 M records.
    pub fn navarchos() -> Self {
        FleetConfig {
            n_vehicles: 40,
            n_days: 365,
            seed: 20_240_326,
            n_recorded: 26,
            n_failures: 9,
            fault_lead_days: (25, 40),
            service_interval_days: (70, 100),
            recording_reliability: 0.85,
            seasonal_amplitude: 5.5,
        }
    }

    /// An urban-delivery fleet: dense short rides, tight service cadence —
    /// the regime where correlation windows are hardest to fill.
    pub fn urban_delivery(seed: u64) -> Self {
        FleetConfig {
            n_vehicles: 20,
            n_days: 365,
            seed,
            n_recorded: 16,
            n_failures: 5,
            fault_lead_days: (20, 35),
            service_interval_days: (45, 70),
            recording_reliability: 0.9,
            seasonal_amplitude: 5.5,
        }
    }

    /// A long-haul fleet: few vehicles, long motorway rides, sparse
    /// services — long detection segments with pronounced seasonal drift.
    pub fn long_haul(seed: u64) -> Self {
        FleetConfig {
            n_vehicles: 12,
            n_days: 365,
            seed,
            n_recorded: 10,
            n_failures: 4,
            fault_lead_days: (30, 45),
            service_interval_days: (100, 140),
            recording_reliability: 0.8,
            seasonal_amplitude: 5.5,
        }
    }

    /// A scaled-down fleet for tests and examples (≈ 60 k records).
    pub fn small(seed: u64) -> Self {
        FleetConfig {
            n_vehicles: 6,
            n_days: 100,
            seed,
            n_recorded: 4,
            n_failures: 2,
            fault_lead_days: (15, 25),
            service_interval_days: (30, 45),
            recording_reliability: 0.9,
            seasonal_amplitude: 5.5,
        }
    }

    /// Generates the fleet.
    ///
    /// # Panics
    /// If `n_recorded > n_vehicles` or `n_failures > n_recorded`.
    pub fn generate(&self) -> FleetData {
        assert!(self.n_recorded <= self.n_vehicles, "more recorded vehicles than vehicles");
        assert!(self.n_failures <= self.n_recorded, "failures must land on recorded vehicles");
        assert!(self.fault_lead_days.0 <= self.fault_lead_days.1);
        assert!(self.service_interval_days.0 <= self.service_interval_days.1);

        let mut rng = StdRng::seed_from_u64(self.seed);

        // --- Vehicle roster ---------------------------------------------
        let (models, usages) = self.roster(&mut rng);

        // --- Recorded subset & failure plan -------------------------------
        let mut indices: Vec<usize> = (0..self.n_vehicles).collect();
        indices.shuffle(&mut rng);
        let recorded_set: Vec<usize> = indices[..self.n_recorded].to_vec();
        let mut failure_vehicles: Vec<usize> = recorded_set.clone();
        failure_vehicles.shuffle(&mut rng);
        failure_vehicles.truncate(self.n_failures);

        let mut faults = Vec::with_capacity(self.n_failures);
        for (i, &v) in failure_vehicles.iter().enumerate() {
            let lead = rng.gen_range(self.fault_lead_days.0..=self.fault_lead_days.1) as i64;
            // Leave ≥ 45 healthy days before degradation starts, so a
            // reference profile exists that predates the fault.
            let earliest = (lead + 45).min(self.n_days as i64 - 1);
            let latest = (self.n_days as i64 - 3).max(earliest + 1);
            let repair_day = rng.gen_range(earliest..latest);
            let kind = FaultKind::all()[i % FaultKind::all().len()];
            faults.push(FaultWindow {
                vehicle: v,
                start: START_EPOCH + (repair_day - lead) * DAY,
                repair: START_EPOCH + repair_day * DAY + rng.gen_range(8..18) * 3600,
                kind,
            });
        }

        // --- DTC plan (Figure 1 semantics) --------------------------------
        // One failure vehicle emits DTCs during its degradation (the rare
        // predictive case); another emits a long spurious burst after its
        // repair; a couple of healthy vehicles emit sporadic noise codes.
        let dtc_before_failure = failure_vehicles.first().copied();
        let dtc_after_repair = failure_vehicles.get(1).copied();
        let mut spurious_dtc_vehicles = Vec::new();
        for _ in 0..(self.n_vehicles / 10).max(1) {
            spurious_dtc_vehicles.push(rng.gen_range(0..self.n_vehicles));
        }

        // --- Per-vehicle generation ---------------------------------------
        let mut vehicles = Vec::with_capacity(self.n_vehicles);
        for v in 0..self.n_vehicles {
            let mut vrng = StdRng::seed_from_u64(
                self.seed ^ (0x9E37_79B9_7F4A_7C15u64).wrapping_mul(v as u64 + 1),
            );
            let recorded = recorded_set.contains(&v);
            let model = models[v].clone().jitter(&mut vrng);
            let usage = usages[v].clone();

            let mut frame = Frame::with_capacity(&PID_NAMES, self.n_days * 120);
            let mut events: Vec<Event> = Vec::new();
            let mut thermal = ThermalState::cold(12.0);
            let mut ride_buf: Vec<(i64, [f64; 6])> = Vec::with_capacity(256);
            // Every service slightly re-baselines the vehicle (new filters,
            // recalibrated sensors, fresh fluids): the paper's reason to
            // rebuild the reference profile after each maintenance event.
            let mut live_model = model.clone();

            // Service schedule.
            let mut next_service = vrng.gen_range(15..self.service_interval_days.1.max(16)) as i64;

            for day in 0..self.n_days {
                let day_start = START_EPOCH + day as i64 * DAY;

                // Planned maintenance events occur in the morning.
                if day as i64 == next_service {
                    events.push(Event {
                        vehicle: v,
                        timestamp: day_start + 8 * 3600,
                        kind: EventKind::Service,
                        recorded: recorded && vrng.gen_bool(self.recording_reliability),
                    });
                    next_service += vrng
                        .gen_range(self.service_interval_days.0..=self.service_interval_days.1)
                        as i64;
                    // Post-service re-baseline: small persistent shifts in
                    // sensor noise floors, idle calibration, manifold
                    // baseline and thermostat point.
                    for (n, base) in live_model.sensor_noise.iter_mut().zip(&model.sensor_noise) {
                        let step = 1.0 + 0.12 * crate::faults::normal(&mut vrng);
                        *n = (*n * step).clamp(base * 0.7, base * 1.4);
                    }
                    live_model.idle_rpm = (live_model.idle_rpm
                        + 10.0 * crate::faults::normal(&mut vrng))
                    .clamp(model.idle_rpm - 40.0, model.idle_rpm + 40.0);
                    live_model.map_idle_kpa = (live_model.map_idle_kpa
                        + 0.6 * crate::faults::normal(&mut vrng))
                    .clamp(model.map_idle_kpa - 2.0, model.map_idle_kpa + 2.0);
                    live_model.thermostat_open_c = (live_model.thermostat_open_c
                        + 0.5 * crate::faults::normal(&mut vrng))
                    .clamp(model.thermostat_open_c - 1.5, model.thermostat_open_c + 1.5);
                }
                // Rare inspections.
                if vrng.gen_bool(0.002) {
                    events.push(Event {
                        vehicle: v,
                        timestamp: day_start + 9 * 3600,
                        kind: EventKind::Inspection,
                        recorded: recorded && vrng.gen_bool(self.recording_reliability),
                    });
                }

                // Repairs (from the fault plan) — always recorded: these are
                // the 9 ground-truth failures of the dataset.
                for w in faults.iter().filter(|w| w.vehicle == v) {
                    if w.repair >= day_start && w.repair < day_start + DAY {
                        events.push(Event {
                            vehicle: v,
                            timestamp: w.repair,
                            kind: EventKind::Repair,
                            recorded: true,
                        });
                    }
                }

                // DTC emissions.
                self.emit_dtcs(
                    v,
                    day,
                    day_start,
                    &faults,
                    dtc_before_failure,
                    dtc_after_repair,
                    &spurious_dtc_vehicles,
                    &mut events,
                    &mut vrng,
                );

                // Operation.
                if !vrng.gen_bool(usage.operating_probability) {
                    continue;
                }
                let rides = usage.sample_ride_count(&mut vrng);
                let daily_jitter = 2.5 * crate::faults::normal(&mut vrng);
                let mut clock = day_start + vrng.gen_range(6 * 60..9 * 60) as i64 * 60;
                let day_end = day_start + 22 * 3600;
                for _ in 0..rides {
                    let kind = usage.sample_ride(&mut vrng);
                    let (lo, hi) = kind.duration_range();
                    let dur = vrng.gen_range(lo..hi);
                    if clock + (dur as i64) * 60 > day_end {
                        break;
                    }
                    let hour = ((clock - day_start) / 3600) as f64;
                    let ambient =
                        ambient_temperature_with(day, hour, daily_jitter, self.seasonal_amplitude);
                    let fx = FaultEffects::at(&faults, v, clock);
                    ride_buf.clear();
                    simulate_ride(
                        &live_model,
                        &fx,
                        &mut thermal,
                        kind,
                        clock,
                        dur,
                        ambient,
                        &mut vrng,
                        &mut ride_buf,
                    );
                    for (t, rec) in &ride_buf {
                        frame.push_row(*t, rec);
                    }
                    // Parking gap before the next ride.
                    clock += (dur as i64) * 60 + vrng.gen_range(30..200) as i64 * 60;
                }
            }

            sort_events(&mut events);
            vehicles.push(VehicleData {
                id: VehicleId(v as u32),
                model,
                usage,
                recorded,
                frame,
                events,
            });
        }

        FleetData { n_days: self.n_days, vehicles, faults }
    }

    /// Assigns model families and usage profiles across the fleet. A fixed
    /// fraction of "oddball" one-off vehicles with their own usage
    /// reproduces the single-vehicle clusters of the paper's Figure 2.
    fn roster(&self, rng: &mut StdRng) -> (Vec<VehicleModel>, Vec<UsageProfile>) {
        let n = self.n_vehicles;
        let mut models = Vec::with_capacity(n);
        let mut usages = Vec::with_capacity(n);
        let n_oddballs = if n >= 12 {
            4
        } else if n >= 6 {
            1
        } else {
            0
        };
        for v in 0..n {
            if v < n_oddballs {
                models.push(VehicleModel::oddball(v as u32));
                usages.push(match v % 4 {
                    0 => UsageProfile::micro_trips(),
                    1 => UsageProfile::motorway(),
                    2 => UsageProfile::errands(),
                    _ => UsageProfile::long_haul(),
                });
            } else {
                let m = match rng.gen_range(0..100) {
                    0..=39 => VehicleModel::compact(),
                    40..=59 => VehicleModel::sedan(),
                    60..=79 => VehicleModel::van(),
                    _ => VehicleModel::citycar(),
                };
                models.push(m);
                usages.push(match rng.gen_range(0..100) {
                    0..=59 => UsageProfile::regular(),
                    60..=74 => UsageProfile::errands(),
                    75..=89 => UsageProfile::long_haul(),
                    _ => UsageProfile::motorway(),
                });
            }
        }
        (models, usages)
    }

    // too_many_arguments: private per-day emission hook; bundling the fault
    // windows, logs and RNG into a struct would outlive this one call site.
    #[allow(clippy::too_many_arguments)]
    fn emit_dtcs(
        &self,
        v: usize,
        day: usize,
        day_start: i64,
        faults: &[FaultWindow],
        dtc_before_failure: Option<usize>,
        dtc_after_repair: Option<usize>,
        spurious: &[usize],
        events: &mut Vec<Event>,
        rng: &mut StdRng,
    ) {
        let _ = day;
        // Predictive DTCs: only the designated vehicle, while degradation
        // severity is high.
        if dtc_before_failure == Some(v) {
            for w in faults.iter().filter(|w| w.vehicle == v) {
                let sev = w.severity(day_start + 12 * 3600);
                if sev > 0.5 && rng.gen_bool(0.18 * sev) {
                    events.push(Event {
                        vehicle: v,
                        timestamp: day_start + rng.gen_range(7..21) as i64 * 3600,
                        kind: EventKind::Dtc(dtc_code_for(w.kind)),
                        recorded: true,
                    });
                }
            }
        }
        // Post-repair spurious burst: a stale code kept re-appearing long
        // after the repair (paper's vehicle 1).
        if dtc_after_repair == Some(v) {
            for w in faults.iter().filter(|w| w.vehicle == v) {
                let after = day_start - w.repair;
                if after > 0 && after < 70 * DAY && rng.gen_bool(0.25) {
                    events.push(Event {
                        vehicle: v,
                        timestamp: day_start + rng.gen_range(7..21) as i64 * 3600,
                        kind: EventKind::Dtc(dtc_code_for(w.kind)),
                        recorded: true,
                    });
                }
            }
        }
        // Background noise codes on a few vehicles, unrelated to health.
        if spurious.contains(&v) && rng.gen_bool(0.01) {
            events.push(Event {
                vehicle: v,
                timestamp: day_start + rng.gen_range(7..21) as i64 * 3600,
                kind: EventKind::Dtc(0o420_u16 + rng.gen_range(0..5)),
                recorded: true,
            });
        }
    }
}

/// A nominal DTC code per fault kind (cosmetic — codes render in Figure 1).
fn dtc_code_for(kind: FaultKind) -> u16 {
    match kind {
        FaultKind::ThermostatStuckOpen => 128, // P0128 coolant below thermostat temp
        FaultKind::RadiatorDegradation => 217, // P0217 engine overheat
        FaultKind::MafSensorDrift => 101,      // P0101 MAF range/performance
        FaultKind::IntakeLeak => 171,          // P0171 system too lean
    }
}

/// One simulated vehicle: its physical identity, telemetry and event log.
#[derive(Debug, Clone)]
pub struct VehicleData {
    /// Fleet-wide identifier.
    pub id: VehicleId,
    /// Physical model (after per-vehicle jitter).
    pub model: VehicleModel,
    /// Usage profile.
    pub usage: UsageProfile,
    /// Whether this vehicle's maintenance events are recorded by the FMS.
    pub recorded: bool,
    /// Telemetry: one row per operating minute, columns = [`PID_NAMES`].
    pub frame: Frame,
    /// All events (recorded and unrecorded), time-sorted.
    pub events: Vec<Event>,
}

impl VehicleData {
    /// Events visible to the pipeline (recorded only).
    pub fn recorded_events(&self) -> Vec<Event> {
        self.events.iter().copied().filter(|e| e.recorded).collect()
    }

    /// Timestamps of recorded repair events (the evaluation ground truth).
    pub fn recorded_repairs(&self) -> Vec<i64> {
        self.events
            .iter()
            .filter(|e| e.recorded && e.kind == EventKind::Repair)
            .map(|e| e.timestamp)
            .collect()
    }

    /// Timestamps of recorded maintenance events (services + repairs) —
    /// the reference-reset triggers of the paper's main policy.
    pub fn recorded_maintenance(&self) -> Vec<i64> {
        self.events
            .iter()
            .filter(|e| e.recorded && e.kind.is_maintenance())
            .map(|e| e.timestamp)
            .collect()
    }
}

/// A complete simulated fleet.
#[derive(Debug, Clone)]
pub struct FleetData {
    /// Number of simulated days.
    pub n_days: usize,
    /// Per-vehicle data, indexed by `VehicleId::index`.
    pub vehicles: Vec<VehicleData>,
    /// Ground-truth fault windows (including their true start times, which
    /// the pipeline never sees).
    pub faults: Vec<FaultWindow>,
}

impl FleetData {
    /// Total telemetry records across the fleet.
    pub fn total_records(&self) -> usize {
        self.vehicles.iter().map(|v| v.frame.len()).sum()
    }

    /// All events of all vehicles, time-sorted.
    pub fn all_events(&self) -> Vec<Event> {
        let mut evs: Vec<Event> = self.vehicles.iter().flat_map(|v| v.events.clone()).collect();
        sort_events(&mut evs);
        evs
    }

    /// Vehicle indices of the paper's `setting40` (all vehicles).
    pub fn setting40(&self) -> Vec<usize> {
        (0..self.vehicles.len()).collect()
    }

    /// Vehicle indices of the paper's `setting26` (vehicles with at least
    /// one recorded event).
    pub fn setting26(&self) -> Vec<usize> {
        (0..self.vehicles.len())
            .filter(|&v| self.vehicles[v].events.iter().any(|e| e.recorded))
            .collect()
    }

    /// Count of recorded events across the fleet (the paper's "121 events
    /// of interest").
    pub fn recorded_event_count(&self) -> usize {
        self.vehicles
            .iter()
            .flat_map(|v| &v.events)
            .filter(|e| e.recorded && !matches!(e.kind, EventKind::Dtc(_)))
            .count()
    }

    /// Count of recorded repair events (the paper's "9 failures").
    pub fn recorded_repair_count(&self) -> usize {
        self.vehicles
            .iter()
            .flat_map(|v| &v.events)
            .filter(|e| e.recorded && e.kind == EventKind::Repair)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::pid;

    fn small_fleet() -> FleetData {
        FleetConfig::small(7).generate()
    }

    #[test]
    fn deterministic_generation() {
        let a = FleetConfig::small(3).generate();
        let b = FleetConfig::small(3).generate();
        assert_eq!(a.total_records(), b.total_records());
        assert_eq!(a.vehicles[0].frame, b.vehicles[0].frame);
        assert_eq!(a.vehicles[2].events, b.vehicles[2].events);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FleetConfig::small(3).generate();
        let b = FleetConfig::small(4).generate();
        assert_ne!(a.vehicles[0].frame, b.vehicles[0].frame);
    }

    #[test]
    fn fleet_shape() {
        let fleet = small_fleet();
        assert_eq!(fleet.vehicles.len(), 6);
        assert!(fleet.total_records() > 10_000, "got {}", fleet.total_records());
        assert_eq!(fleet.faults.len(), 2);
        assert_eq!(fleet.recorded_repair_count(), 2);
        // Failures only on recorded vehicles.
        for w in &fleet.faults {
            assert!(fleet.vehicles[w.vehicle].recorded);
        }
    }

    #[test]
    fn setting26_subset_of_setting40() {
        let fleet = small_fleet();
        let s26 = fleet.setting26();
        let s40 = fleet.setting40();
        assert!(s26.len() <= s40.len());
        assert!(s26.iter().all(|v| s40.contains(v)));
        // Every setting26 vehicle has a recorded event.
        for &v in &s26 {
            assert!(!fleet.vehicles[v].recorded_events().is_empty());
        }
    }

    #[test]
    fn frames_time_ordered_and_physical() {
        let fleet = small_fleet();
        for vd in &fleet.vehicles {
            let ts = vd.frame.timestamps();
            assert!(ts.windows(2).all(|w| w[0] <= w[1]));
            let rpm = vd.frame.column(pid::RPM);
            let speed = vd.frame.column(pid::SPEED);
            assert!(rpm.iter().all(|&r| (0.0..8000.0).contains(&r)));
            assert!(speed.iter().all(|&s| (0.0..=160.0).contains(&s)));
        }
    }

    #[test]
    fn repairs_match_fault_windows() {
        let fleet = small_fleet();
        for w in &fleet.faults {
            let repairs = fleet.vehicles[w.vehicle].recorded_repairs();
            assert!(repairs.contains(&w.repair), "repair event exists at fault end");
        }
    }

    #[test]
    fn unrecorded_vehicles_have_no_recorded_events() {
        let fleet = small_fleet();
        for vd in &fleet.vehicles {
            if !vd.recorded {
                assert!(
                    vd.recorded_events().iter().all(|e| matches!(e.kind, EventKind::Dtc(_))),
                    "only telemetry-borne DTCs may appear for unrecorded vehicles"
                );
            }
            // But services still *happen* to everyone.
            assert!(
                vd.events.iter().any(|e| e.kind == EventKind::Service),
                "vehicle {} had no service at all",
                vd.id
            );
        }
    }

    #[test]
    fn maintenance_reset_times_sorted() {
        let fleet = small_fleet();
        for vd in &fleet.vehicles {
            let m = vd.recorded_maintenance();
            assert!(m.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn scenario_presets_generate() {
        for cfg in [FleetConfig::urban_delivery(3), FleetConfig::long_haul(3)] {
            let mut small = cfg.clone();
            small.n_days = 40; // keep the test quick
            small.n_failures = small.n_failures.min(2);
            let fleet = small.generate();
            assert_eq!(fleet.vehicles.len(), small.n_vehicles);
            assert!(fleet.total_records() > 0);
        }
    }

    #[test]
    fn navarchos_scale_config() {
        let cfg = FleetConfig::navarchos();
        assert_eq!(cfg.n_vehicles, 40);
        assert_eq!(cfg.n_recorded, 26);
        assert_eq!(cfg.n_failures, 9);
    }
}

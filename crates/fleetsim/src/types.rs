//! Shared identifiers and constants of the simulated fleet.

/// The six OBD-II PID signals the paper collects, in canonical column
/// order. Every frame produced by the simulator uses exactly these names.
pub const PID_NAMES: [&str; 6] =
    ["rpm", "speed", "coolantTemp", "intakeTemp", "mapIntake", "mafAirFlowRate"];

/// Index of each PID in [`PID_NAMES`] (kept in one place so physics code
/// reads declaratively).
pub mod pid {
    /// Engine speed (revolutions per minute).
    pub const RPM: usize = 0;
    /// Road speed (km/h).
    pub const SPEED: usize = 1;
    /// Engine coolant temperature (°C).
    pub const COOLANT: usize = 2;
    /// Intake manifold air temperature (°C).
    pub const INTAKE_TEMP: usize = 3;
    /// Manifold absolute pressure (kPa).
    pub const MAP: usize = 4;
    /// Mass air-flow rate (g/s).
    pub const MAF: usize = 5;
}

/// Sampling interval: one record per minute of operation, as in the paper.
pub const RECORD_INTERVAL_SECONDS: i64 = 60;

/// Simulation start timestamp (2023-01-01T00:00:00Z). A fixed epoch keeps
/// every run reproducible.
pub const START_EPOCH: i64 = 1_672_531_200;

/// Identifier of a vehicle within a fleet (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VehicleId(pub u32);

impl VehicleId {
    /// Index into fleet-ordered collections.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VehicleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vehicle-{:02}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_indices_match_names() {
        assert_eq!(PID_NAMES[pid::RPM], "rpm");
        assert_eq!(PID_NAMES[pid::SPEED], "speed");
        assert_eq!(PID_NAMES[pid::COOLANT], "coolantTemp");
        assert_eq!(PID_NAMES[pid::INTAKE_TEMP], "intakeTemp");
        assert_eq!(PID_NAMES[pid::MAP], "mapIntake");
        assert_eq!(PID_NAMES[pid::MAF], "mafAirFlowRate");
    }

    #[test]
    fn vehicle_id_display() {
        assert_eq!(VehicleId(7).to_string(), "vehicle-07");
        assert_eq!(VehicleId(23).index(), 23);
    }
}

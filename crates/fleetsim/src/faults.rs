//! Fault models. Every fault is designed to perturb the *relationships*
//! between PID signals while keeping each individual signal inside its
//! normal range most of the time — the property that makes the paper's
//! correlation transformation effective and raw-space distances blind.

use rand::Rng;

/// The component failure developing before a repair event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Thermostat progressively stuck (partially) open: the coolant
    /// regulates lower and starts tracking road speed inversely. Raw
    /// coolant values (65–85 °C) still overlap the warm-up phase of every
    /// healthy ride, but corr(speed, coolantTemp) flips sign persistently.
    ThermostatStuckOpen,
    /// Radiator/fan degradation: cooling capacity fades, coolant rises
    /// with load instead of sitting at the thermostat point —
    /// corr(rpm, coolantTemp) turns strongly positive.
    RadiatorDegradation,
    /// Mass-airflow sensor drift: the MAF reading loses gain and gains
    /// noise — corr(mafAirFlowRate, mapIntake) and corr(maf, rpm) decay.
    MafSensorDrift,
    /// Intake manifold leak: unmetered air raises manifold pressure at low
    /// throttle and lifts idle rpm — corr(mapIntake, mafAirFlowRate)
    /// weakens and the map/rpm relationship shifts.
    IntakeLeak,
}

impl FaultKind {
    /// All fault kinds, used round-robin when planning fleet failures.
    pub fn all() -> [FaultKind; 4] {
        [
            FaultKind::ThermostatStuckOpen,
            FaultKind::RadiatorDegradation,
            FaultKind::MafSensorDrift,
            FaultKind::IntakeLeak,
        ]
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ThermostatStuckOpen => "thermostat-stuck-open",
            FaultKind::RadiatorDegradation => "radiator-degradation",
            FaultKind::MafSensorDrift => "maf-sensor-drift",
            FaultKind::IntakeLeak => "intake-leak",
        }
    }
}

/// A planned fault: severity ramps linearly from 0 at `start` to 1 at
/// `repair`, after which the component is fixed.
#[derive(Debug, Clone, Copy)]
pub struct FaultWindow {
    /// Index of the affected vehicle.
    pub vehicle: usize,
    /// Timestamp at which degradation begins.
    pub start: i64,
    /// Timestamp of the repair that ends the fault.
    pub repair: i64,
    /// The failing component.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Severity in [0, 1] at time `t`: 0 before `start` and after
    /// `repair`, linear ramp in between.
    pub fn severity(&self, t: i64) -> f64 {
        if t < self.start || t >= self.repair {
            0.0
        } else {
            // Super-linear ramp: degradation accelerates as the component
            // approaches failure, so the last weeks carry most of the
            // signature while the early window stays subtle.
            let lin = (t - self.start) as f64 / (self.repair - self.start).max(1) as f64;
            lin.powf(1.5)
        }
    }
}

/// Effective physics modifiers produced by active faults; the physics
/// engine consumes these on top of the vehicle's base model.
#[derive(Debug, Clone, Copy)]
pub struct FaultEffects {
    /// Replacement thermostat opening temperature offset (°C, ≤ 0).
    pub thermostat_offset_c: f64,
    /// Fraction of full radiator flow leaking through a stuck-open
    /// thermostat *below* the opening point (0 = healthy, sealed).
    /// A stuck thermostat keeps the radiator permanently in circuit, so
    /// the coolant floats at a speed/load-dependent balance point instead
    /// of regulating at the setpoint.
    pub thermostat_stuck_fraction: f64,
    /// Multiplier on radiator cooling capacity (≤ 1).
    pub cooling_scale: f64,
    /// Multiplier on the measured MAF reading (≤ 1).
    pub maf_gain: f64,
    /// Extra Gaussian noise on the MAF reading (g/s).
    pub maf_noise: f64,
    /// Probability per record of an intermittent MAF dropout (the sensor
    /// momentarily reads a fraction of the true flow) — the decorrelating
    /// signature of a dying MAF sensor.
    pub maf_dropout_p: f64,
    /// Probability per record of an intermittent manifold-leak surge
    /// (the leak opens with vibration, spiking MAP at low load).
    pub map_surge_p: f64,
    /// Surge magnitude (kPa at closed throttle).
    pub map_surge_kpa: f64,
    /// Additive manifold pressure at low throttle (kPa, ≥ 0).
    pub map_idle_offset: f64,
    /// Low-throttle manifold pressure instability (kPa of extra noise,
    /// scaled by (1 − load)): a leaking manifold hunts instead of holding
    /// steady vacuum, which decorrelates MAP from rpm/MAF.
    pub map_noise: f64,
    /// Additive idle rpm (≥ 0).
    pub idle_rpm_offset: f64,
}

impl Default for FaultEffects {
    fn default() -> Self {
        FaultEffects {
            thermostat_offset_c: 0.0,
            thermostat_stuck_fraction: 0.0,
            cooling_scale: 1.0,
            maf_gain: 1.0,
            maf_noise: 0.0,
            maf_dropout_p: 0.0,
            map_surge_p: 0.0,
            map_surge_kpa: 0.0,
            map_idle_offset: 0.0,
            map_noise: 0.0,
            idle_rpm_offset: 0.0,
        }
    }
}

impl FaultEffects {
    /// Accumulates the effect of one fault at the given severity.
    pub fn accumulate(&mut self, kind: FaultKind, severity: f64) {
        let s = severity.clamp(0.0, 1.0);
        // Reject NaN severities explicitly — clamp preserves them.
        if s.is_nan() || s <= 0.0 {
            return;
        }
        match kind {
            FaultKind::ThermostatStuckOpen => {
                // The thermostat progressively sticks open: a growing
                // fraction of radiator flow bypasses the (closed) valve, so
                // the coolant floats at a speed/load-dependent balance
                // point below the setpoint instead of regulating there.
                self.thermostat_stuck_fraction += 0.30 * s;
                self.thermostat_offset_c -= 6.0 * s;
            }
            FaultKind::RadiatorDegradation => {
                self.cooling_scale *= 1.0 - 0.80 * s;
            }
            FaultKind::MafSensorDrift => {
                self.maf_gain *= 1.0 - 0.25 * s;
                self.maf_noise += 4.0 * s;
                self.maf_dropout_p += 0.45 * s;
            }
            FaultKind::IntakeLeak => {
                self.map_idle_offset += 8.0 * s;
                self.map_surge_p += 0.50 * s;
                self.map_surge_kpa += 45.0 * s;
                self.idle_rpm_offset += 180.0 * s;
                self.maf_gain *= 1.0 - 0.12 * s;
            }
        }
    }

    /// Combined effects of all `windows` active on vehicle `vehicle` at
    /// time `t`.
    pub fn at(windows: &[FaultWindow], vehicle: usize, t: i64) -> FaultEffects {
        let mut fx = FaultEffects::default();
        for w in windows.iter().filter(|w| w.vehicle == vehicle) {
            let s = w.severity(t);
            if s > 0.0 {
                fx.accumulate(w.kind, s);
            }
        }
        fx
    }

    /// Applies the measurement-side corruption (MAF gain/noise) to a
    /// measured MAF value.
    pub fn corrupt_maf<R: Rng>(&self, maf_true: f64, rng: &mut R) -> f64 {
        let mut out = maf_true;
        if self.maf_noise > 0.0 {
            out += self.maf_noise * normal(rng);
        }
        out *= self.maf_gain;
        if self.maf_dropout_p > 0.0 && rng.gen_bool(self.maf_dropout_p.clamp(0.0, 1.0)) {
            out *= 0.15;
        }
        out.max(0.0)
    }

    /// Applies the intermittent manifold-leak surge to the low-throttle MAP
    /// contribution (called by the physics with the current load).
    pub fn map_surge<R: Rng>(&self, load: f64, rng: &mut R) -> f64 {
        if self.map_surge_p > 0.0 && rng.gen_bool(self.map_surge_p.clamp(0.0, 1.0)) {
            self.map_surge_kpa * (1.0 - load)
        } else {
            0.0
        }
    }
}

/// Standard normal draw via Box–Muller (kept local: `rand_distr` is not in
/// the sanctioned dependency set).
pub fn normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn severity_ramp() {
        let w = FaultWindow { vehicle: 0, start: 100, repair: 200, kind: FaultKind::IntakeLeak };
        assert_eq!(w.severity(50), 0.0);
        assert_eq!(w.severity(100), 0.0);
        assert!((w.severity(150) - 0.5f64.powf(1.5)).abs() < 1e-12);
        assert!(w.severity(199) > 0.98);
        assert_eq!(w.severity(200), 0.0, "fixed at repair time");
        assert_eq!(w.severity(250), 0.0);
    }

    #[test]
    fn effects_accumulate_per_kind() {
        let mut fx = FaultEffects::default();
        fx.accumulate(FaultKind::ThermostatStuckOpen, 1.0);
        assert!(fx.thermostat_stuck_fraction > 0.2);
        assert!(fx.thermostat_offset_c < 0.0);

        let mut fx = FaultEffects::default();
        fx.accumulate(FaultKind::RadiatorDegradation, 1.0);
        assert!(fx.cooling_scale < 0.5);

        let mut fx = FaultEffects::default();
        fx.accumulate(FaultKind::MafSensorDrift, 1.0);
        assert!(fx.maf_gain <= 0.8);
        assert!(fx.maf_noise > 0.0);
        assert!(fx.maf_dropout_p > 0.3);

        let mut fx = FaultEffects::default();
        fx.accumulate(FaultKind::IntakeLeak, 1.0);
        assert!(fx.map_idle_offset > 4.0);
        assert!(fx.map_surge_p > 0.3);
        assert!(fx.map_surge_kpa > 20.0);
        assert!(fx.idle_rpm_offset > 100.0);
    }

    #[test]
    fn zero_severity_is_identity() {
        let mut fx = FaultEffects::default();
        for kind in FaultKind::all() {
            fx.accumulate(kind, 0.0);
        }
        assert_eq!(fx.cooling_scale, 1.0);
        assert_eq!(fx.maf_gain, 1.0);
        assert_eq!(fx.thermostat_offset_c, 0.0);
    }

    #[test]
    fn at_combines_only_matching_vehicle() {
        let windows = vec![
            FaultWindow { vehicle: 0, start: 0, repair: 100, kind: FaultKind::MafSensorDrift },
            FaultWindow { vehicle: 1, start: 0, repair: 100, kind: FaultKind::IntakeLeak },
        ];
        let fx0 = FaultEffects::at(&windows, 0, 50);
        assert!(fx0.maf_gain < 1.0);
        assert_eq!(fx0.map_idle_offset, 0.0);
        let fx2 = FaultEffects::at(&windows, 2, 50);
        assert_eq!(fx2.maf_gain, 1.0);
    }

    #[test]
    fn corrupt_maf_scales_and_stays_nonnegative() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut fx = FaultEffects::default();
        fx.accumulate(FaultKind::MafSensorDrift, 1.0);
        let vals: Vec<f64> = (0..400).map(|_| fx.corrupt_maf(20.0, &mut rng)).collect();
        assert!(vals.iter().all(|&v| v >= 0.0));
        // Gain 0.75 with 45 % dropouts at 15 %: E ≈ 20·0.75·(0.55 + 0.45·0.15) ≈ 9.3
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 9.3).abs() < 1.5, "expected ≈ 9.3, got {mean}");
        // Dropout records are visible as a distinct low mode.
        let lows = vals.iter().filter(|&&v| v < 4.0).count();
        assert!(lows > 100, "dropouts present: {lows}");
    }

    #[test]
    fn normal_is_standard() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }
}

//! Per-vehicle physical models. The fleet mixes a few mainstream model
//! families with deliberately idiosyncratic one-off vehicles, because the
//! paper's exploration found several clusters consisting of the data of a
//! single vehicle (Figure 2: clusters 2, 3, 5, 7).

use rand::Rng;

/// Static physical parameters of one vehicle.
#[derive(Debug, Clone)]
pub struct VehicleModel {
    /// Human-readable family name ("compact", "van", …).
    pub family: &'static str,
    /// Idle engine speed (rpm).
    pub idle_rpm: f64,
    /// Engine displacement (litres) — scales airflow.
    pub displacement_l: f64,
    /// Volumetric efficiency (0–1) — scales airflow.
    pub volumetric_efficiency: f64,
    /// Gearing table: rpm added per km/h within each speed band; longer
    /// gearing (smaller values) for highway-oriented vehicles.
    pub gear_ratios: [f64; 5],
    /// Speed-band upper bounds (km/h) for the gearing table's first four
    /// entries.
    pub gear_bands: [f64; 4],
    /// Thermostat opening temperature (°C) — coolant regulates here.
    pub thermostat_open_c: f64,
    /// Coolant thermal inertia: °C change per unit net heat per minute.
    pub thermal_mass: f64,
    /// Heat input coefficient (per unit load·krpm).
    pub heat_gain: f64,
    /// Radiator cooling coefficient above thermostat opening.
    pub cooling_gain: f64,
    /// Additional per-signal Gaussian sensor noise std, in signal units:
    /// [rpm, speed, coolant, intakeTemp, map, maf].
    pub sensor_noise: [f64; 6],
    /// Manifold pressure at closed throttle (kPa).
    pub map_idle_kpa: f64,
    /// Manifold pressure at wide-open throttle (kPa).
    pub map_wot_kpa: f64,
}

impl VehicleModel {
    /// A mainstream compact car (the "regular rides" bulk of the fleet).
    pub fn compact() -> Self {
        VehicleModel {
            family: "compact",
            idle_rpm: 820.0,
            displacement_l: 1.4,
            volumetric_efficiency: 0.82,
            gear_ratios: [72.0, 52.0, 40.0, 32.0, 26.0],
            gear_bands: [18.0, 38.0, 62.0, 88.0],
            thermostat_open_c: 89.0,
            thermal_mass: 0.055,
            heat_gain: 10.5,
            cooling_gain: 0.16,
            sensor_noise: [9.0, 0.5, 0.4, 0.5, 1.0, 0.5],
            map_idle_kpa: 31.0,
            map_wot_kpa: 99.0,
        }
    }

    /// A light commercial van (heavier, shorter gearing, hotter running).
    pub fn van() -> Self {
        VehicleModel {
            family: "van",
            idle_rpm: 780.0,
            displacement_l: 2.2,
            volumetric_efficiency: 0.86,
            gear_ratios: [80.0, 58.0, 45.0, 36.0, 30.0],
            gear_bands: [16.0, 34.0, 56.0, 82.0],
            thermostat_open_c: 91.0,
            thermal_mass: 0.045,
            heat_gain: 12.0,
            cooling_gain: 0.15,
            sensor_noise: [11.0, 0.6, 0.5, 0.6, 1.2, 0.7],
            map_idle_kpa: 33.0,
            map_wot_kpa: 102.0,
        }
    }

    /// A highway-oriented sedan (long gearing, efficient cruise).
    pub fn sedan() -> Self {
        VehicleModel {
            family: "sedan",
            idle_rpm: 700.0,
            displacement_l: 1.8,
            volumetric_efficiency: 0.84,
            gear_ratios: [68.0, 48.0, 36.0, 28.0, 22.0],
            gear_bands: [20.0, 42.0, 68.0, 95.0],
            thermostat_open_c: 88.0,
            thermal_mass: 0.06,
            heat_gain: 10.0,
            cooling_gain: 0.17,
            sensor_noise: [8.0, 0.45, 0.35, 0.45, 0.9, 0.45],
            map_idle_kpa: 30.0,
            map_wot_kpa: 98.0,
        }
    }

    /// A small city runabout.
    pub fn citycar() -> Self {
        VehicleModel {
            family: "citycar",
            idle_rpm: 900.0,
            displacement_l: 1.0,
            volumetric_efficiency: 0.80,
            gear_ratios: [85.0, 60.0, 47.0, 38.0, 33.0],
            gear_bands: [15.0, 32.0, 52.0, 75.0],
            thermostat_open_c: 90.0,
            thermal_mass: 0.07,
            heat_gain: 9.0,
            cooling_gain: 0.18,
            sensor_noise: [10.0, 0.5, 0.45, 0.55, 1.1, 0.5],
            map_idle_kpa: 32.0,
            map_wot_kpa: 97.0,
        }
    }

    /// A deliberately idiosyncratic one-off (odd gearing and thermals);
    /// `variant` perturbs the base so each one-off is unique. These are the
    /// vehicles that formed their own clusters in the paper's Figure 2.
    pub fn oddball(variant: u32) -> Self {
        let v = variant as f64;
        VehicleModel {
            family: "oddball",
            idle_rpm: 950.0 + 120.0 * (v % 3.0),
            displacement_l: 2.8 + 0.4 * (v % 2.0),
            volumetric_efficiency: 0.88,
            gear_ratios: [
                95.0 + 6.0 * v,
                70.0 + 4.0 * v,
                55.0 + 3.0 * v,
                45.0 + 2.0 * v,
                38.0 + 2.0 * v,
            ],
            gear_bands: [14.0, 30.0, 48.0, 70.0],
            thermostat_open_c: 93.0 + (v % 2.0) * 3.0,
            thermal_mass: 0.04,
            heat_gain: 12.0 + 0.5 * v,
            cooling_gain: 0.13,
            sensor_noise: [13.0, 0.7, 0.55, 0.7, 1.4, 0.9],
            map_idle_kpa: 35.0,
            map_wot_kpa: 105.0,
        }
    }

    /// Applies small per-vehicle manufacturing scatter so no two fleet
    /// members are numerically identical.
    pub fn jitter<R: Rng>(mut self, rng: &mut R) -> Self {
        fn j<R: Rng>(rng: &mut R, v: f64, rel: f64) -> f64 {
            v * (1.0 + rng.gen_range(-rel..rel))
        }
        self.idle_rpm = j(rng, self.idle_rpm, 0.03);
        self.displacement_l = j(rng, self.displacement_l, 0.02);
        self.volumetric_efficiency = j(rng, self.volumetric_efficiency, 0.02).clamp(0.7, 0.95);
        for g in &mut self.gear_ratios {
            *g *= 1.0 + rng.gen_range(-0.03..0.03);
        }
        self.thermostat_open_c = j(rng, self.thermostat_open_c, 0.01);
        self.heat_gain = j(rng, self.heat_gain, 0.05);
        self.cooling_gain = j(rng, self.cooling_gain, 0.05);
        self
    }

    /// Rpm added per km/h at road speed `v`. Gear selection by speed band
    /// with a smooth 24 km/h cross-fade around each shift point: wide
    /// enough that `v · ratio(v)` stays monotone in `v` (a narrower blend
    /// would make rpm *fall* as speed rises inside the shift zone, flipping
    /// the rpm–speed coupling for windows that cruise near a boundary).
    pub fn rpm_per_kmh(&self, v: f64) -> f64 {
        const BLEND: f64 = 24.0;
        let mut ratio = self.gear_ratios[0];
        for (i, band) in self.gear_bands.iter().enumerate() {
            // Fraction of the shift to the next gear completed at speed v.
            let t = ((v - (band - BLEND / 2.0)) / BLEND).clamp(0.0, 1.0);
            ratio += t * (self.gear_ratios[i + 1] - self.gear_ratios[i]);
        }
        ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gearing_decreases_with_speed() {
        for m in [
            VehicleModel::compact(),
            VehicleModel::van(),
            VehicleModel::sedan(),
            VehicleModel::citycar(),
            VehicleModel::oddball(0),
        ] {
            let mut last = f64::INFINITY;
            for v in [5.0, 25.0, 50.0, 75.0, 110.0] {
                let r = m.rpm_per_kmh(v);
                assert!(r <= last, "{}: ratio not monotone at {v}", m.family);
                last = r;
            }
        }
    }

    #[test]
    fn oddballs_differ_by_variant() {
        let a = VehicleModel::oddball(0);
        let b = VehicleModel::oddball(1);
        assert_ne!(a.gear_ratios[0], b.gear_ratios[0]);
        assert_ne!(a.heat_gain, b.heat_gain);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let base = VehicleModel::compact();
        let j1 = base.clone().jitter(&mut rng1);
        let j2 = base.clone().jitter(&mut rng2);
        assert_eq!(j1.idle_rpm, j2.idle_rpm, "same seed, same jitter");
        assert!((j1.idle_rpm - base.idle_rpm).abs() / base.idle_rpm < 0.031);
        assert!(j1.volumetric_efficiency >= 0.7 && j1.volumetric_efficiency <= 0.95);
    }
}

//! Per-minute signal generation: a compact longitudinal + thermal vehicle
//! model. Signals are produced in the canonical PID order of
//! [`crate::types::PID_NAMES`].

use crate::faults::{normal, FaultEffects};
use crate::types::pid;
use crate::usage::RideKind;
use crate::vehicle::VehicleModel;
use rand::Rng;

/// Thermal state carried between rides (coolant retains heat while
/// parked).
#[derive(Debug, Clone, Copy)]
pub struct ThermalState {
    /// Coolant temperature (°C).
    pub coolant_c: f64,
    /// Timestamp at which the vehicle last stopped operating.
    pub last_stop: i64,
}

impl ThermalState {
    /// A vehicle that has been parked long enough to be fully cold.
    pub fn cold(ambient_c: f64) -> Self {
        ThermalState { coolant_c: ambient_c, last_stop: i64::MIN / 2 }
    }

    /// Exponential cool-down toward ambient while parked (time constant
    /// ~45 minutes).
    pub fn cool_down(&mut self, now: i64, ambient_c: f64) {
        let parked_min = ((now - self.last_stop).max(0) as f64) / 60.0;
        let decay = (-parked_min / 45.0).exp();
        self.coolant_c = ambient_c + (self.coolant_c - ambient_c) * decay;
    }
}

/// One generated record: the six PID values, in canonical order.
pub type PidRecord = [f64; 6];

/// Simulates a single ride, appending one record per minute to `out` and
/// updating the thermal state.
///
/// `effects` carries any active fault modifiers; pass
/// `FaultEffects::default()` for a healthy vehicle.
// too_many_arguments: the ride is a function of exactly these physical
// inputs; a parameter struct would just rename the argument list.
#[allow(clippy::too_many_arguments)]
pub fn simulate_ride<R: Rng>(
    model: &VehicleModel,
    effects: &FaultEffects,
    thermal: &mut ThermalState,
    kind: RideKind,
    start_time: i64,
    duration_min: usize,
    ambient_c: f64,
    rng: &mut R,
    out: &mut Vec<(i64, PidRecord)>,
) {
    thermal.cool_down(start_time, ambient_c);

    let target = kind.target_speed() * rng.gen_range(0.85..1.15);
    let sigma = kind.speed_sigma();
    let stop_p = kind.stop_probability();
    let idle_rpm = model.idle_rpm + effects.idle_rpm_offset;
    let thermostat = model.thermostat_open_c + effects.thermostat_offset_c;
    let cooling_gain = model.cooling_gain * effects.cooling_scale;

    let mut v = 0.0f64;
    let mut stopped_for = 0usize;
    // Traffic-wave OU process: the effective cruise target drifts slowly.
    let mut wave = 0.0f64;
    let wave_sigma = kind.target_wave_sigma();
    // Slow road-grade process (OU): hills modulate engine load even at
    // constant speed, keeping load-coupled signals genuinely co-moving
    // during cruise.
    let mut grade = 0.0f64;

    for minute in 0..duration_min {
        let t = start_time + minute as i64 * 60;

        // --- Longitudinal dynamics -------------------------------------
        wave += 0.10 * (0.0 - wave) + wave_sigma * normal(rng);
        let target_now = if stopped_for > 0 {
            stopped_for -= 1;
            0.0
        } else if rng.gen_bool(stop_p) {
            stopped_for = rng.gen_range(1..3);
            0.0
        } else {
            (target + wave).max(0.0)
        };
        let prev_v = v;
        v += 0.38 * (target_now - v) + sigma * normal(rng) * 0.4;
        v = v.clamp(0.0, 135.0);
        let accel = v - prev_v; // km/h per minute

        // --- Engine speed ----------------------------------------------
        let rpm_true = if v < 2.0 {
            idle_rpm
        } else {
            idle_rpm * 0.35 + v * model.rpm_per_kmh(v) + 18.0 * accel.max(0.0)
        };

        // --- Load & manifold pressure -----------------------------------
        grade += 0.25 * (0.0 - grade) + 0.035 * normal(rng);
        grade = grade.clamp(-0.09, 0.09);
        let load = (0.12
            + 0.004 * v
            + 0.055 * accel.max(0.0)
            + 0.000028 * v * v
            + grade * (0.3 + v / 90.0))
            .clamp(0.08, 1.0);
        let map_true = model.map_idle_kpa
            + (model.map_wot_kpa - model.map_idle_kpa) * load
            + (1.0 - load) * (effects.map_idle_offset + effects.map_noise * normal(rng))
            + effects.map_surge(load, rng);

        // --- Intake air temperature -------------------------------------
        // Heat soak at low speed, ram-air cooling at high speed, plus a
        // small coupling to the coolant (shared engine bay).
        let intake_true = ambient_c
            + 6.0
            + 14.0 * (-v / 35.0).exp()
            + 0.05 * (thermal.coolant_c - ambient_c).max(0.0) * (-v / 60.0).exp();

        // --- Mass airflow (speed–density) --------------------------------
        // g/s = VE · disp(L) · rpm/120 · P(kPa) / (0.287 · T(K))
        let t_kelvin = intake_true + 273.15;
        let maf_true = model.volumetric_efficiency * model.displacement_l * rpm_true / 120.0
            * map_true
            / (0.287 * t_kelvin);

        // --- Coolant thermal ODE (per-minute Euler step) ------------------
        // Sub-linear rpm exponent: real engines shed a growing share of
        // combustion heat through the exhaust at high rpm, so coolant heat
        // input grows slower than rpm.
        let heat = model.heat_gain * load * (rpm_true / 1000.0).powf(0.7);
        // Proportional thermostat: the valve opens over a 4 °C band above
        // the setpoint, so a healthy engine settles smoothly a degree or
        // two above it instead of bang-bang cycling (1.2 °C band). A stuck-open valve
        // (fault) leaks a fraction of full radiator flow even when closed.
        let opening = ((thermal.coolant_c - thermostat) / 1.2).clamp(0.0, 1.0);
        let radiator_flow = opening.max(effects.thermostat_stuck_fraction);
        let cooling =
            radiator_flow * cooling_gain * (thermal.coolant_c - ambient_c) * (1.0 + v / 40.0)
                + 0.012 * (thermal.coolant_c - ambient_c);
        thermal.coolant_c += (heat - cooling) * 0.55;
        thermal.coolant_c = thermal.coolant_c.clamp(ambient_c - 5.0, 125.0);

        // --- Sensor layer -------------------------------------------------
        let n = &model.sensor_noise;
        let mut rec: PidRecord = [0.0; 6];
        rec[pid::RPM] = (rpm_true + n[0] * normal(rng)).max(0.0);
        rec[pid::SPEED] = (v + n[1] * normal(rng)).max(0.0);
        rec[pid::COOLANT] = thermal.coolant_c + n[2] * normal(rng);
        rec[pid::INTAKE_TEMP] = intake_true + n[3] * normal(rng);
        rec[pid::MAP] = (map_true + n[4] * normal(rng)).max(10.0);
        rec[pid::MAF] = effects.corrupt_maf(maf_true + n[5] * normal(rng), rng);

        out.push((t, rec));
    }

    thermal.last_stop = start_time + duration_min as i64 * 60;
}

/// Seasonal + diurnal ambient temperature model (°C) for a day index and
/// an hour of day; mild Mediterranean climate matching the paper's fleet
/// region.
pub fn ambient_temperature(day: usize, hour: f64, daily_jitter: f64) -> f64 {
    ambient_temperature_with(day, hour, daily_jitter, 5.5)
}

/// [`ambient_temperature`] with an explicit seasonal amplitude (°C) — the
/// climate knob of the seasonal-drift ablation.
pub fn ambient_temperature_with(
    day: usize,
    hour: f64,
    daily_jitter: f64,
    seasonal_amplitude: f64,
) -> f64 {
    let seasonal = 15.0
        + seasonal_amplitude
            * ((day as f64 - 15.0) / 365.0 * std::f64::consts::TAU - std::f64::consts::FRAC_PI_2)
                .sin();
    let diurnal = 3.0 * ((hour - 14.0) / 24.0 * std::f64::consts::TAU).cos();
    seasonal + diurnal + daily_jitter
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use navarchos_stat::correlation::pearson;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_ride(
        kind: RideKind,
        effects: &FaultEffects,
        minutes: usize,
        seed: u64,
    ) -> Vec<PidRecord> {
        let model = VehicleModel::compact();
        let mut thermal = ThermalState::cold(15.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        simulate_ride(&model, effects, &mut thermal, kind, 0, minutes, 15.0, &mut rng, &mut out);
        out.into_iter().map(|(_, r)| r).collect()
    }

    #[test]
    fn signals_within_physical_ranges() {
        for kind in [RideKind::Urban, RideKind::Highway, RideKind::ExtraShort, RideKind::Long] {
            let recs = run_ride(kind, &FaultEffects::default(), 90, 1);
            for r in &recs {
                assert!(r[pid::RPM] >= 0.0 && r[pid::RPM] < 8000.0, "{kind:?} rpm {}", r[pid::RPM]);
                assert!(r[pid::SPEED] >= 0.0 && r[pid::SPEED] <= 150.0);
                assert!(r[pid::COOLANT] > 0.0 && r[pid::COOLANT] <= 128.0);
                assert!(r[pid::INTAKE_TEMP] > 0.0 && r[pid::INTAKE_TEMP] < 80.0);
                assert!(r[pid::MAP] >= 10.0 && r[pid::MAP] <= 130.0);
                assert!(r[pid::MAF] >= 0.0 && r[pid::MAF] < 400.0);
            }
        }
    }

    #[test]
    fn coolant_warms_up_and_regulates() {
        let recs = run_ride(RideKind::Regional, &FaultEffects::default(), 120, 2);
        let early = recs[2][pid::COOLANT];
        let late: f64 =
            recs[100..].iter().map(|r| r[pid::COOLANT]).sum::<f64>() / (recs.len() - 100) as f64;
        assert!(early < 50.0, "cold start, got {early}");
        assert!((82.0..98.0).contains(&late), "regulated near thermostat, got {late}");
    }

    #[test]
    fn highway_faster_and_higher_rpm_than_urban() {
        let hw = run_ride(RideKind::Highway, &FaultEffects::default(), 80, 3);
        let ur = run_ride(RideKind::Urban, &FaultEffects::default(), 80, 3);
        let mean =
            |rs: &[PidRecord], i: usize| rs.iter().map(|r| r[i]).sum::<f64>() / rs.len() as f64;
        assert!(mean(&hw, pid::SPEED) > 2.0 * mean(&ur, pid::SPEED));
        assert!(mean(&hw, pid::RPM) > mean(&ur, pid::RPM));
        assert!(mean(&hw, pid::MAF) > mean(&ur, pid::MAF));
    }

    #[test]
    fn rpm_speed_strongly_correlated_when_healthy() {
        let recs = run_ride(RideKind::Regional, &FaultEffects::default(), 120, 4);
        let rpm: Vec<f64> = recs.iter().map(|r| r[pid::RPM]).collect();
        let speed: Vec<f64> = recs.iter().map(|r| r[pid::SPEED]).collect();
        assert!(pearson(&rpm, &speed) > 0.8);
    }

    #[test]
    fn map_maf_correlated_when_healthy_decorrelated_under_maf_drift() {
        let healthy = run_ride(RideKind::Urban, &FaultEffects::default(), 150, 5);
        let mut fx = FaultEffects::default();
        fx.accumulate(FaultKind::MafSensorDrift, 1.0);
        let faulty = run_ride(RideKind::Urban, &fx, 150, 5);
        let corr = |rs: &[PidRecord]| {
            let a: Vec<f64> = rs.iter().map(|r| r[pid::MAP]).collect();
            let b: Vec<f64> = rs.iter().map(|r| r[pid::MAF]).collect();
            pearson(&a, &b)
        };
        let c_h = corr(&healthy);
        let c_f = corr(&faulty);
        assert!(c_h > 0.78, "healthy map~maf = {c_h}");
        assert!(c_f < c_h - 0.12, "drift weakens coupling: {c_f} vs {c_h}");
    }

    /// Simulates a day-like mixed sequence of rides with shared thermal
    /// state (warm restarts), mirroring real operation.
    fn run_mixed_day(effects: &FaultEffects, seed: u64) -> Vec<PidRecord> {
        let model = VehicleModel::compact();
        let mut thermal = ThermalState::cold(15.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut t0 = 0i64;
        for _ in 0..6 {
            simulate_ride(
                &model,
                effects,
                &mut thermal,
                RideKind::Urban,
                t0,
                45,
                15.0,
                &mut rng,
                &mut out,
            );
            t0 += 45 * 60 + 3600;
            simulate_ride(
                &model,
                effects,
                &mut thermal,
                RideKind::Regional,
                t0,
                60,
                15.0,
                &mut rng,
                &mut out,
            );
            t0 += 60 * 60 + 3600;
        }
        out.into_iter().map(|(_, r)| r).collect()
    }

    #[test]
    fn thermostat_fault_unpins_coolant() {
        let mut fx = FaultEffects::default();
        fx.accumulate(FaultKind::ThermostatStuckOpen, 1.0);
        // Single long ride: compare the fully warmed-up tail.
        let run_long = |fx: &FaultEffects, seed: u64| {
            let model = VehicleModel::compact();
            let mut thermal = ThermalState::cold(15.0);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            simulate_ride(
                &model,
                fx,
                &mut thermal,
                RideKind::Regional,
                0,
                150,
                15.0,
                &mut rng,
                &mut out,
            );
            out.into_iter().map(|(_, r)| r).collect::<Vec<PidRecord>>()
        };
        let healthy = run_long(&FaultEffects::default(), 6);
        let faulty = run_long(&fx, 6);
        let tail =
            |rs: &[PidRecord]| -> Vec<f64> { rs[100..].iter().map(|r| r[pid::COOLANT]).collect() };
        let h = tail(&healthy);
        let f = tail(&faulty);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // Healthy: regulated at the setpoint. Faulty: the radiator is
        // permanently in circuit, so the engine settles well below it and
        // the temperature floats with speed/load.
        assert!((85.0..95.0).contains(&mean(&h)), "healthy settles near 89, got {}", mean(&h));
        assert!(mean(&f) < mean(&h) - 5.0, "faulty runs cool: {} vs {}", mean(&f), mean(&h));
        // The faulty engine regularly dips far below any healthy warm
        // temperature.
        let q10_h = navarchos_stat::descriptive::quantile(&h, 0.1);
        let q10_f = navarchos_stat::descriptive::quantile(&f, 0.1);
        assert!(q10_f < q10_h - 5.0, "faulty dips low: {q10_f} vs {q10_h}");
    }

    #[test]
    fn intake_leak_decouples_map() {
        let mut fx = FaultEffects::default();
        fx.accumulate(FaultKind::IntakeLeak, 1.0);
        let healthy = run_mixed_day(&FaultEffects::default(), 8);
        let faulty = run_mixed_day(&fx, 8);
        let corr = |rs: &[PidRecord]| {
            let a: Vec<f64> = rs.iter().map(|r| r[pid::RPM]).collect();
            let b: Vec<f64> = rs.iter().map(|r| r[pid::MAP]).collect();
            pearson(&a, &b)
        };
        let c_h = corr(&healthy);
        let c_f = corr(&faulty);
        assert!(c_f < c_h - 0.08, "leak decouples rpm~map: {c_f} vs {c_h}");
    }

    #[test]
    fn radiator_fault_raises_load_temperature_coupling() {
        let mut fx = FaultEffects::default();
        fx.accumulate(FaultKind::RadiatorDegradation, 1.0);
        let healthy = run_ride(RideKind::Highway, &FaultEffects::default(), 200, 7);
        let faulty = run_ride(RideKind::Highway, &fx, 200, 7);
        let warm_mean = |rs: &[PidRecord]| {
            rs[100..].iter().map(|r| r[pid::COOLANT]).sum::<f64>() / (rs.len() - 100) as f64
        };
        assert!(warm_mean(&faulty) > warm_mean(&healthy) + 3.0, "runs hotter under load");
        assert!(warm_mean(&faulty) < 126.0, "but stays inside the plausible range");
    }

    #[test]
    fn thermal_state_cools_while_parked() {
        let mut ts = ThermalState { coolant_c: 90.0, last_stop: 0 };
        ts.cool_down(3600, 10.0); // parked one hour (timestamps in seconds)
        assert!(ts.coolant_c < 90.0 && ts.coolant_c > 15.0);
        let mut ts2 = ThermalState { coolant_c: 90.0, last_stop: 0 };
        ts2.cool_down(10 * 3600, 10.0); // parked 10 hours → ambient
        assert!((ts2.coolant_c - 10.0).abs() < 2.0);
    }

    #[test]
    fn ambient_seasonality() {
        let summer = ambient_temperature(200, 14.0, 0.0);
        let winter = ambient_temperature(20, 14.0, 0.0);
        assert!(summer > winter + 10.0, "summer {summer} vs winter {winter}");
        let noon = ambient_temperature(100, 14.0, 0.0);
        let night = ambient_temperature(100, 2.0, 0.0);
        assert!(noon > night);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_ride(RideKind::Urban, &FaultEffects::default(), 30, 42);
        let b = run_ride(RideKind::Urban, &FaultEffects::default(), 30, 42);
        assert_eq!(a, b);
    }
}

//! Maintenance and diagnostic events: services, repairs, inspections and
//! DTCs, each carrying the *recorded* flag that encodes the paper's partial
//! information (events happen to every vehicle, but the FMS only learns
//! about a subset).

/// The kind of a fleet event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Scheduled periodic service.
    Service,
    /// Unscheduled repair fixing a developed failure — the events PdM must
    /// predict.
    Repair,
    /// Minor maintenance that neither fixes nor indicates a failure (tyre
    /// change, inspection, recall visit).
    Inspection,
    /// Diagnostic trouble code emitted by the ECU. The payload is a
    /// compact code id (e.g. 301 renders as "P0301").
    Dtc(u16),
}

impl EventKind {
    /// True for the events that reset the reference profile under the
    /// paper's main policy (services *and* repairs).
    pub fn is_maintenance(&self) -> bool {
        matches!(self, EventKind::Service | EventKind::Repair)
    }

    /// Paper-style display label.
    pub fn label(&self) -> String {
        match self {
            EventKind::Service => "service".to_string(),
            EventKind::Repair => "repair".to_string(),
            EventKind::Inspection => "inspection".to_string(),
            EventKind::Dtc(code) => format!("DTC P{code:04}"),
        }
    }
}

/// One event in a vehicle's life.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Index of the vehicle the event belongs to.
    pub vehicle: usize,
    /// Event timestamp.
    pub timestamp: i64,
    /// What happened.
    pub kind: EventKind,
    /// Whether the operator's FMS learned about the event. Unrecorded
    /// events exist in the ground truth but are invisible to the pipeline.
    pub recorded: bool,
}

/// Sorts events chronologically (stable on equal timestamps).
pub fn sort_events(events: &mut [Event]) {
    events.sort_by_key(|e| (e.timestamp, e.vehicle));
}

/// The recorded subset of an event stream, preserving order.
pub fn recorded_only(events: &[Event]) -> Vec<Event> {
    events.iter().copied().filter(|e| e.recorded).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintenance_classification() {
        assert!(EventKind::Service.is_maintenance());
        assert!(EventKind::Repair.is_maintenance());
        assert!(!EventKind::Inspection.is_maintenance());
        assert!(!EventKind::Dtc(301).is_maintenance());
    }

    #[test]
    fn dtc_label_format() {
        assert_eq!(EventKind::Dtc(301).label(), "DTC P0301");
        assert_eq!(EventKind::Repair.label(), "repair");
    }

    #[test]
    fn sort_and_filter() {
        let mut evs = vec![
            Event { vehicle: 1, timestamp: 50, kind: EventKind::Repair, recorded: true },
            Event { vehicle: 0, timestamp: 10, kind: EventKind::Service, recorded: false },
            Event { vehicle: 0, timestamp: 30, kind: EventKind::Dtc(420), recorded: true },
        ];
        sort_events(&mut evs);
        assert_eq!(evs[0].timestamp, 10);
        assert_eq!(evs[2].timestamp, 50);
        let rec = recorded_only(&evs);
        assert_eq!(rec.len(), 2);
        assert!(rec.iter().all(|e| e.recorded));
    }
}

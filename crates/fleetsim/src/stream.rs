//! Fleet stream construction: interleaving per-vehicle histories into one
//! tagged event stream, and a deterministic dirty-stream adapter that
//! injects the faults real telematics feeds carry.
//!
//! The simulator's native output is per-vehicle (one [`Frame`] plus an
//! event log each); a serving-path ingest engine instead consumes a single
//! multiplexed feed. [`interleave_fleet`] produces that feed in canonical
//! (clean) order; [`dirty_stream`] then perturbs it — out-of-order
//! arrivals bounded by a horizon, exact duplicates, gaps, corrupted
//! records — reproducibly from a seed, so the engine's tolerance
//! guarantees can be tested against a known ground truth.

use navarchos_tsframe::Frame;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fleet::FleetData;

/// One element of a multiplexed fleet feed, tagged with its vehicle.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamItem {
    /// Source vehicle id (the wire-level tag, not a fleet index).
    pub vehicle: u32,
    /// Event time in epoch seconds.
    pub timestamp: i64,
    /// Telemetry record or maintenance marker.
    pub body: StreamBody,
}

/// Payload of a [`StreamItem`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamBody {
    /// One telemetry record: the vehicle's signal values at the timestamp.
    Record(Vec<f64>),
    /// A maintenance-log entry (service or repair).
    Maintenance {
        /// True for repairs (component replacements), false for services.
        is_repair: bool,
    },
}

impl StreamBody {
    /// Canonical ordering rank at equal timestamps: maintenance sorts
    /// before records, matching `replay_stream`'s "process events with
    /// `mt <= t` before the record at `t`" contract.
    pub fn rank(&self) -> u8 {
        match self {
            StreamBody::Maintenance { .. } => 0,
            StreamBody::Record(_) => 1,
        }
    }
}

/// Interleaves per-vehicle `(frame, maintenance)` histories into one
/// clean stream, sorted by `(timestamp, vehicle, rank)` — so each
/// vehicle's subsequence is its sorted history with maintenance markers
/// preceding same-timestamp records.
pub fn interleave_streams(vehicles: &[(u32, &Frame, &[(i64, bool)])]) -> Vec<StreamItem> {
    let total: usize = vehicles.iter().map(|(_, f, m)| f.len() + m.len()).sum();
    let mut out = Vec::with_capacity(total);
    for &(vehicle, frame, maintenance) in vehicles {
        let mut row = Vec::with_capacity(frame.width());
        for i in 0..frame.len() {
            frame.row_into(i, &mut row);
            out.push(StreamItem {
                vehicle,
                timestamp: frame.timestamps()[i],
                body: StreamBody::Record(row.clone()),
            });
        }
        for &(timestamp, is_repair) in maintenance {
            out.push(StreamItem {
                vehicle,
                timestamp,
                body: StreamBody::Maintenance { is_repair },
            });
        }
    }
    out.sort_by(|a, b| {
        (a.timestamp, a.vehicle, a.body.rank()).cmp(&(b.timestamp, b.vehicle, b.body.rank()))
    });
    out
}

/// Interleaves a simulated fleet into one clean stream (every vehicle's
/// records plus its *recorded* maintenance events — the partial-information
/// log, exactly what a live feed would carry).
pub fn interleave_fleet(fleet: &FleetData) -> Vec<StreamItem> {
    let maintenance: Vec<(u32, Vec<(i64, bool)>)> = fleet
        .vehicles
        .iter()
        .map(|vd| {
            let log = vd
                .events
                .iter()
                .filter(|e| e.recorded && e.kind.is_maintenance())
                .map(|e| (e.timestamp, e.kind == crate::events::EventKind::Repair))
                .collect();
            (vd.id.0, log)
        })
        .collect();
    let refs: Vec<(u32, &Frame, &[(i64, bool)])> = fleet
        .vehicles
        .iter()
        .zip(&maintenance)
        .map(|(vd, (id, log))| (*id, &vd.frame, log.as_slice()))
        .collect();
    interleave_streams(&refs)
}

/// Fault-injection knobs for [`dirty_stream`]. All draws come from one
/// `StdRng` seeded with `seed`, so a config is a complete description of
/// the dirt: same config + same clean stream = same dirty stream.
#[derive(Debug, Clone)]
pub struct DirtyConfig {
    /// Seed for the fault RNG.
    pub seed: u64,
    /// Probability an item is delayed (arrives out of order).
    pub reorder_prob: f64,
    /// Maximum arrival delay in seconds, **exclusive**: delays are drawn
    /// from `[0, reorder_horizon_s)`, so an ingest reorder buffer with a
    /// lateness horizon `>= reorder_horizon_s` provably never drops a
    /// delayed original.
    pub reorder_horizon_s: i64,
    /// Probability an item is followed by an exact duplicate (the copy
    /// gets its own independent arrival delay).
    pub dup_prob: f64,
    /// Probability an item is silently dropped (a feed gap).
    pub drop_prob: f64,
    /// Probability a record's payload is corrupted (non-finite value,
    /// truncated row, or emptied row — all malformed on the wire).
    pub corrupt_prob: f64,
    /// Optional targeted fault: one chosen vehicle's records are
    /// deterministically corrupted from an onset point onward, modelling a
    /// single failing sensor head rather than fleet-wide wire noise. Does
    /// not consume RNG draws, so enabling it never perturbs the background
    /// dirt drawn from `seed`.
    pub targeted: Option<TargetedCorruption>,
}

/// A deterministic per-vehicle corruption campaign for [`DirtyConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct TargetedCorruption {
    /// Vehicle whose records are corrupted.
    pub vehicle: u32,
    /// Fraction of the clean stream (by index, `0.0..=1.0`) after which
    /// the corruption switches on; records before the onset pass clean.
    pub onset: f64,
    /// What the corruption does to each record past the onset.
    pub mode: CorruptionMode,
}

/// Payload transform applied by [`TargetedCorruption`].
#[derive(Debug, Clone, PartialEq)]
pub enum CorruptionMode {
    /// Every signal value becomes NaN — the record is malformed on the
    /// wire (dead-letters downstream) and drives NaN-fraction monitors.
    NanBurst,
    /// Every signal value gains a constant additive bias — records stay
    /// finite and well-formed, so only distribution-drift monitors see it.
    Bias(f64),
}

impl DirtyConfig {
    /// Lossless dirt: reorder + duplicate faults only. Under this config
    /// the dirty stream carries exactly the clean stream's information, so
    /// engine alarms must match sorted replay byte-for-byte.
    pub fn reorder_and_dup(seed: u64) -> Self {
        DirtyConfig {
            seed,
            reorder_prob: 0.3,
            reorder_horizon_s: 1800,
            dup_prob: 0.02,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            targeted: None,
        }
    }

    /// Lossy dirt: everything in [`DirtyConfig::reorder_and_dup`] plus
    /// gaps and corrupted records. Equivalence with clean replay no longer
    /// holds; this config exercises graceful degradation instead.
    pub fn lossy(seed: u64) -> Self {
        DirtyConfig { drop_prob: 0.01, corrupt_prob: 0.005, ..DirtyConfig::reorder_and_dup(seed) }
    }

    /// Adds a targeted corruption campaign on top of the existing dirt.
    /// Background faults are unchanged (targeting spends no RNG draws).
    pub fn with_target(mut self, vehicle: u32, onset: f64, mode: CorruptionMode) -> Self {
        self.targeted = Some(TargetedCorruption { vehicle, onset, mode });
        self
    }
}

/// Applies [`DirtyConfig`] faults to a clean stream, returning the items
/// in *arrival* order (event timestamps untouched; arrival position is
/// event time plus the drawn delay, stably sorted so undelayed items keep
/// their relative order).
pub fn dirty_stream(clean: &[StreamItem], cfg: &DirtyConfig) -> Vec<StreamItem> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut keyed: Vec<(i64, usize, StreamItem)> = Vec::with_capacity(clean.len());
    let mut seq = 0usize;
    let mut push = |keyed: &mut Vec<(i64, usize, StreamItem)>, arrival: i64, item: StreamItem| {
        keyed.push((arrival, seq, item));
        seq += 1;
    };
    let onset_index =
        cfg.targeted.as_ref().map(|t| (t.onset.clamp(0.0, 1.0) * clean.len() as f64) as usize);
    for (index, item) in clean.iter().enumerate() {
        if cfg.drop_prob > 0.0 && rng.gen_bool(cfg.drop_prob) {
            continue;
        }
        let mut it = item.clone();
        if let (Some(t), Some(onset)) = (cfg.targeted.as_ref(), onset_index) {
            if it.vehicle == t.vehicle && index >= onset {
                corrupt_targeted(&mut it, &t.mode);
            }
        }
        if cfg.corrupt_prob > 0.0 && rng.gen_bool(cfg.corrupt_prob) {
            corrupt(&mut it, &mut rng);
        }
        let delay = |rng: &mut StdRng| {
            if cfg.reorder_horizon_s > 0 {
                rng.gen_range(0..cfg.reorder_horizon_s)
            } else {
                0
            }
        };
        let jitter = if cfg.reorder_prob > 0.0 && rng.gen_bool(cfg.reorder_prob) {
            delay(&mut rng)
        } else {
            0
        };
        // Duplicate the post-corruption item: the copy must be an *exact*
        // duplicate of what actually arrived, corrupted or not.
        let dup = if cfg.dup_prob > 0.0 && rng.gen_bool(cfg.dup_prob) {
            Some((it.timestamp + delay(&mut rng), it.clone()))
        } else {
            None
        };
        push(&mut keyed, it.timestamp + jitter, it);
        if let Some((arrival, copy)) = dup {
            push(&mut keyed, arrival, copy);
        }
    }
    keyed.sort_by_key(|&(arrival, seq, _)| (arrival, seq));
    keyed.into_iter().map(|(_, _, item)| item).collect()
}

/// Applies a [`CorruptionMode`] to a record payload. Maintenance markers
/// pass through untouched.
fn corrupt_targeted(item: &mut StreamItem, mode: &CorruptionMode) {
    let StreamBody::Record(row) = &mut item.body else {
        return;
    };
    match mode {
        CorruptionMode::NanBurst => row.iter_mut().for_each(|v| *v = f64::NAN),
        CorruptionMode::Bias(b) => row.iter_mut().for_each(|v| *v += b),
    }
}

/// Mangles a record payload in one of three wire-plausible ways. Leaves
/// maintenance markers alone (they carry no payload to corrupt).
fn corrupt(item: &mut StreamItem, rng: &mut StdRng) {
    let StreamBody::Record(row) = &mut item.body else {
        return;
    };
    match rng.gen_range(0..3u32) {
        0 if !row.is_empty() => {
            let i = rng.gen_range(0..row.len());
            row[i] = f64::NAN;
        }
        1 if !row.is_empty() => {
            row.truncate(row.len() - 1);
        }
        _ => row.clear(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;

    fn tiny_fleet() -> FleetData {
        FleetConfig {
            n_vehicles: 3,
            n_days: 4,
            n_recorded: 3,
            n_failures: 1,
            ..FleetConfig::small(7)
        }
        .generate()
    }

    #[test]
    fn interleave_is_sorted_and_complete() {
        let fleet = tiny_fleet();
        let stream = interleave_fleet(&fleet);
        let n_records: usize = fleet.vehicles.iter().map(|v| v.frame.len()).sum();
        let n_maint: usize = fleet
            .vehicles
            .iter()
            .map(|v| v.events.iter().filter(|e| e.recorded && e.kind.is_maintenance()).count())
            .sum();
        assert_eq!(stream.len(), n_records + n_maint);
        for w in stream.windows(2) {
            let ka = (w[0].timestamp, w[0].vehicle, w[0].body.rank());
            let kb = (w[1].timestamp, w[1].vehicle, w[1].body.rank());
            assert!(ka <= kb, "stream must be sorted: {ka:?} then {kb:?}");
        }
    }

    #[test]
    fn per_vehicle_subsequence_is_the_vehicle_history() {
        let fleet = tiny_fleet();
        let stream = interleave_fleet(&fleet);
        for vd in &fleet.vehicles {
            let records: Vec<i64> = stream
                .iter()
                .filter(|i| i.vehicle == vd.id.0 && matches!(i.body, StreamBody::Record(_)))
                .map(|i| i.timestamp)
                .collect();
            assert_eq!(records, vd.frame.timestamps(), "vehicle {}", vd.id);
        }
    }

    #[test]
    fn dirty_stream_is_deterministic_and_bounded() {
        let fleet = tiny_fleet();
        let clean = interleave_fleet(&fleet);
        let cfg = DirtyConfig::reorder_and_dup(99);
        let a = dirty_stream(&clean, &cfg);
        let b = dirty_stream(&clean, &cfg);
        assert_eq!(a, b, "same seed, same dirt");
        assert!(a.len() >= clean.len(), "lossless dirt only adds duplicates");
        // Every clean item survives (drop_prob = 0) and duplicates exist
        // at this stream length with dup_prob = 0.02.
        assert!(a.len() > clean.len(), "expected at least one duplicate");
    }

    #[test]
    fn lossless_dirt_preserves_multiset_of_items() {
        let fleet = tiny_fleet();
        let clean = interleave_fleet(&fleet);
        let dirty = dirty_stream(&clean, &DirtyConfig::reorder_and_dup(5));
        // Dedup exact copies, then sort by canonical key: must equal clean.
        let mut seen = clean.clone();
        let mut recovered: Vec<StreamItem> = Vec::new();
        for item in &dirty {
            if let Some(pos) = seen.iter().position(|c| c == item) {
                seen.remove(pos);
                recovered.push(item.clone());
            }
        }
        assert!(seen.is_empty(), "every clean item must appear in the dirty stream");
        assert_eq!(recovered.len(), clean.len());
    }

    #[test]
    fn lossy_dirt_corrupts_and_drops() {
        let fleet =
            FleetConfig { n_vehicles: 4, n_days: 10, n_recorded: 4, ..FleetConfig::small(3) }
                .generate();
        let clean = interleave_fleet(&fleet);
        let dirty = dirty_stream(&clean, &DirtyConfig::lossy(11));
        let malformed = dirty
            .iter()
            .filter(|i| match &i.body {
                StreamBody::Record(row) => {
                    row.len() != fleet.vehicles[0].frame.width()
                        || row.iter().any(|v| !v.is_finite())
                }
                StreamBody::Maintenance { .. } => false,
            })
            .count();
        assert!(malformed > 0, "corrupt_prob must produce malformed records");
        assert!(dirty.len() < clean.len() + clean.len() / 50, "drops offset dups");
    }

    #[test]
    fn targeting_never_perturbs_the_background_dirt() {
        let fleet = tiny_fleet();
        let clean = interleave_fleet(&fleet);
        let base = dirty_stream(&clean, &DirtyConfig::reorder_and_dup(99));
        let targeted = dirty_stream(
            &clean,
            &DirtyConfig::reorder_and_dup(99).with_target(u32::MAX, 0.5, CorruptionMode::NanBurst),
        );
        // Target vehicle doesn't exist, so the streams must be identical:
        // enabling targeting spends no RNG draws.
        assert_eq!(base, targeted);
    }

    #[test]
    fn nan_burst_corrupts_only_the_target_after_onset() {
        let fleet = tiny_fleet();
        let clean = interleave_fleet(&fleet);
        let victim = fleet.vehicles[0].id.0;
        let cfg =
            DirtyConfig::reorder_and_dup(42).with_target(victim, 0.5, CorruptionMode::NanBurst);
        let dirty = dirty_stream(&clean, &cfg);
        let is_nan_row = |i: &StreamItem| match &i.body {
            StreamBody::Record(row) => !row.is_empty() && row.iter().all(|v| v.is_nan()),
            StreamBody::Maintenance { .. } => false,
        };
        assert!(dirty.iter().any(|i| i.vehicle == victim && is_nan_row(i)));
        assert!(
            dirty.iter().filter(|i| i.vehicle != victim).all(|i| !is_nan_row(i)),
            "bystander vehicles must stay clean (corrupt_prob is 0 here)"
        );
        // Records before the onset index pass clean: the victim still has
        // well-formed records somewhere in the dirty stream.
        assert!(dirty.iter().any(|i| i.vehicle == victim
            && matches!(&i.body, StreamBody::Record(row) if row.iter().all(|v| v.is_finite()))));
    }

    #[test]
    fn bias_mode_keeps_rows_finite_but_shifted() {
        let fleet = tiny_fleet();
        let clean = interleave_fleet(&fleet);
        let victim = fleet.vehicles[0].id.0;
        let cfg =
            DirtyConfig { reorder_prob: 0.0, dup_prob: 0.0, ..DirtyConfig::reorder_and_dup(7) }
                .with_target(victim, 0.0, CorruptionMode::Bias(1e6));
        let dirty = dirty_stream(&clean, &cfg);
        let mut shifted = 0usize;
        for (c, d) in clean.iter().zip(&dirty) {
            if let (StreamBody::Record(a), StreamBody::Record(b)) = (&c.body, &d.body) {
                assert!(b.iter().all(|v| v.is_finite()), "bias must keep rows finite");
                if c.vehicle == victim {
                    assert!(a.iter().zip(b).all(|(x, y)| (y - x - 1e6).abs() < 1e-6));
                    shifted += 1;
                } else {
                    assert_eq!(a, b);
                }
            }
        }
        assert!(shifted > 0, "onset 0.0 must shift every victim record");
    }
}

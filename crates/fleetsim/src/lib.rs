//! Synthetic fleet telemetry substrate replacing the proprietary Navarchos
//! FMS dataset of the paper.
//!
//! The simulator produces, for a configurable fleet, the six OBD-II PID
//! signals of the paper at one record per minute of operation, plus the
//! maintenance event log (services, repairs, DTCs) with the paper's
//! *partial information* property: only a subset of vehicles has any events
//! recorded, and several true events are silently missing.
//!
//! The generator is physics-grounded rather than noise-grounded so the
//! paper's structural findings reproduce from first principles:
//!
//! * usage (urban / regional / highway / short rides) and vehicle model
//!   dominate the *raw* signal space — clustering day-aggregated raw data
//!   yields usage/model clusters, not health clusters (Section 2, Fig. 2);
//! * faults perturb the *relationships* between signals (thermostat stuck
//!   open, intake leak, MAF drift, radiator degradation), so the
//!   correlation transformation exposes them while raw distances drown in
//!   usage variance (Sections 3–4).
//!
//! Everything is deterministic given [`FleetConfig::seed`].

pub mod events;
pub mod faults;
pub mod fleet;
pub mod physics;
pub mod stream;
pub mod types;
pub mod usage;
pub mod vehicle;

pub use events::{Event, EventKind};
pub use faults::{FaultKind, FaultWindow};
pub use fleet::{FleetConfig, FleetData, VehicleData};
pub use stream::{
    dirty_stream, interleave_fleet, interleave_streams, CorruptionMode, DirtyConfig, StreamBody,
    StreamItem, TargetedCorruption,
};
pub use types::{VehicleId, PID_NAMES, RECORD_INTERVAL_SECONDS, START_EPOCH};
pub use usage::{RideKind, UsageProfile};
pub use vehicle::VehicleModel;

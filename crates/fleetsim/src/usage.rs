//! Usage regimes: what kind of rides a vehicle performs and how often.
//!
//! Usage — not health — is the dominant source of variance in the raw
//! signals, which is the core confounder the paper's framework must
//! overcome. Profiles below reproduce the cluster semantics of Figure 2:
//! regular rides, extremely small rides, high-speed long rides, short
//! rides, and long rides.

use rand::Rng;

/// The kind of one ride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RideKind {
    /// Dense stop-and-go city traffic.
    Urban,
    /// Mixed suburban / regional roads.
    Regional,
    /// Sustained high-speed motorway driving.
    Highway,
    /// Short errand (5–15 minutes).
    Short,
    /// Extremely small hop (2–6 minutes) — the engine barely warms up.
    ExtraShort,
    /// Multi-hour long-distance trip.
    Long,
}

impl RideKind {
    /// Target cruise speed (km/h) for the ride kind.
    pub fn target_speed(&self) -> f64 {
        match self {
            RideKind::Urban => 26.0,
            RideKind::Regional => 58.0,
            RideKind::Highway => 104.0,
            RideKind::Short => 30.0,
            RideKind::ExtraShort => 19.0,
            RideKind::Long => 86.0,
        }
    }

    /// Speed volatility (stop-and-go produces large swings).
    pub fn speed_sigma(&self) -> f64 {
        match self {
            RideKind::Urban => 9.0,
            RideKind::Regional => 6.0,
            RideKind::Highway => 4.0,
            RideKind::Short => 8.0,
            RideKind::ExtraShort => 7.0,
            RideKind::Long => 5.0,
        }
    }

    /// Probability per minute of a full stop (traffic light, junction).
    pub fn stop_probability(&self) -> f64 {
        match self {
            RideKind::Urban => 0.16,
            RideKind::Regional => 0.05,
            RideKind::Highway => 0.004,
            RideKind::Short => 0.12,
            RideKind::ExtraShort => 0.14,
            RideKind::Long => 0.02,
        }
    }

    /// Standard deviation of the slow traffic-wave drift of the target
    /// speed (km/h per minute of OU forcing): even "steady" motorway
    /// cruising breathes with surrounding traffic.
    pub fn target_wave_sigma(&self) -> f64 {
        match self {
            RideKind::Urban => 1.0,
            RideKind::Regional => 2.2,
            RideKind::Highway => 3.5,
            RideKind::Short => 1.0,
            RideKind::ExtraShort => 0.8,
            RideKind::Long => 3.0,
        }
    }

    /// Ride duration range in minutes (inclusive-exclusive).
    pub fn duration_range(&self) -> (usize, usize) {
        match self {
            RideKind::Urban => (20, 55),
            RideKind::Regional => (25, 70),
            RideKind::Highway => (35, 90),
            RideKind::Short => (5, 15),
            RideKind::ExtraShort => (2, 6),
            RideKind::Long => (110, 220),
        }
    }
}

/// A vehicle's long-run usage pattern: a categorical distribution over ride
/// kinds plus an operating-intensity knob.
#[derive(Debug, Clone)]
pub struct UsageProfile {
    /// Profile name (mirrors the cluster descriptions of Figure 2).
    pub name: &'static str,
    /// `(kind, weight)` pairs; weights need not sum to 1.
    pub ride_weights: Vec<(RideKind, f64)>,
    /// Mean number of rides per operating day.
    pub rides_per_day: f64,
    /// Probability that the vehicle operates at all on a given day.
    pub operating_probability: f64,
}

impl UsageProfile {
    /// The bulk of the fleet: everyday mixed usage ("regular rides").
    pub fn regular() -> Self {
        UsageProfile {
            name: "regular",
            ride_weights: vec![
                (RideKind::Urban, 0.45),
                (RideKind::Regional, 0.30),
                (RideKind::Short, 0.15),
                (RideKind::Highway, 0.10),
            ],
            rides_per_day: 2.4,
            operating_probability: 0.86,
        }
    }

    /// Vehicles doing almost exclusively tiny hops ("extremely small
    /// rides").
    pub fn micro_trips() -> Self {
        UsageProfile {
            name: "micro-trips",
            ride_weights: vec![(RideKind::ExtraShort, 0.7), (RideKind::Short, 0.3)],
            rides_per_day: 4.5,
            operating_probability: 0.9,
        }
    }

    /// High-speed, long-distance usage ("high speed/rpm involving long
    /// rides").
    pub fn motorway() -> Self {
        UsageProfile {
            name: "motorway",
            ride_weights: vec![(RideKind::Highway, 0.6), (RideKind::Long, 0.4)],
            rides_per_day: 1.6,
            operating_probability: 0.8,
        }
    }

    /// Mostly short errands ("short rides").
    pub fn errands() -> Self {
        UsageProfile {
            name: "errands",
            ride_weights: vec![(RideKind::Short, 0.6), (RideKind::Urban, 0.4)],
            rides_per_day: 3.0,
            operating_probability: 0.82,
        }
    }

    /// Long regional hauling ("long rides").
    pub fn long_haul() -> Self {
        UsageProfile {
            name: "long-haul",
            ride_weights: vec![(RideKind::Long, 0.55), (RideKind::Regional, 0.45)],
            rides_per_day: 1.3,
            operating_probability: 0.78,
        }
    }

    /// Samples a ride kind from the profile's categorical distribution.
    pub fn sample_ride<R: Rng>(&self, rng: &mut R) -> RideKind {
        let total: f64 = self.ride_weights.iter().map(|&(_, w)| w).sum();
        let mut u = rng.gen_range(0.0..total);
        for &(kind, w) in &self.ride_weights {
            if u < w {
                return kind;
            }
            u -= w;
        }
        self.ride_weights.last().expect("profile has at least one ride kind").0
    }

    /// Samples the number of rides on an operating day (≥ 1).
    pub fn sample_ride_count<R: Rng>(&self, rng: &mut R) -> usize {
        // Rounded exponential-ish scatter around the mean.
        let lambda = self.rides_per_day.max(1.0);
        let jittered = lambda + rng.gen_range(-1.0..1.0);
        jittered.round().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ride_kinds_ordering() {
        assert!(RideKind::Highway.target_speed() > RideKind::Regional.target_speed());
        assert!(RideKind::Regional.target_speed() > RideKind::Urban.target_speed());
        assert!(RideKind::Urban.stop_probability() > RideKind::Highway.stop_probability());
        let (lo, hi) = RideKind::ExtraShort.duration_range();
        assert!(lo >= 2 && hi <= 6);
    }

    #[test]
    fn sample_ride_respects_weights() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = UsageProfile::micro_trips();
        let mut extra_short = 0;
        for _ in 0..1000 {
            if p.sample_ride(&mut rng) == RideKind::ExtraShort {
                extra_short += 1;
            }
        }
        // Weight 0.7 → expect roughly 700.
        assert!((600..800).contains(&extra_short), "got {extra_short}");
    }

    #[test]
    fn sample_ride_only_profile_kinds() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = UsageProfile::motorway();
        for _ in 0..200 {
            let k = p.sample_ride(&mut rng);
            assert!(k == RideKind::Highway || k == RideKind::Long);
        }
    }

    #[test]
    fn ride_count_positive_and_near_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = UsageProfile::regular();
        let counts: Vec<usize> = (0..500).map(|_| p.sample_ride_count(&mut rng)).collect();
        assert!(counts.iter().all(|&c| c >= 1));
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!((mean - p.rides_per_day).abs() < 0.5, "mean={mean}");
    }
}

//! Property-based tests for the framework layer.

use navarchos_core::evaluation::{
    alarm_instances, dedup_alarms, evaluate_vehicle, EvalCounts, EvalParams,
};
use navarchos_core::reference::ReferenceProfile;
use navarchos_core::threshold::{batch_thresholds, SelfTuningThreshold};
use proptest::prelude::*;

proptest! {
    #[test]
    fn threshold_monotone_in_factor(
        scores in prop::collection::vec(0.0f64..100.0, 3..64),
        f1 in 0.0f64..10.0,
        f2 in 0.0f64..10.0,
    ) {
        let holdout = vec![scores];
        let (a, b) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let ta = batch_thresholds(&holdout, a, None)[0];
        let tb = batch_thresholds(&holdout, b, None)[0];
        prop_assert!(ta <= tb + 1e-9);
    }

    #[test]
    fn violations_shrink_with_factor(
        healthy in prop::collection::vec(0.0f64..10.0, 4..32),
        queries in prop::collection::vec(0.0f64..50.0, 1..32),
    ) {
        let mut th_low = SelfTuningThreshold::new(1, 1.0);
        let mut th_high = SelfTuningThreshold::new(1, 5.0);
        for &s in &healthy {
            th_low.observe(&[s]);
            th_high.observe(&[s]);
        }
        th_low.fit();
        th_high.fit();
        let v_low: usize = queries.iter().map(|&q| th_low.violations(&[q]).len()).sum();
        let v_high: usize = queries.iter().map(|&q| th_high.violations(&[q]).len()).sum();
        prop_assert!(v_high <= v_low);
    }

    #[test]
    fn dedup_never_increases_count(
        mut alarms in prop::collection::vec(0i64..10_000_000, 0..64),
        window in 1i64..1_000_000,
        min_v in 1usize..4,
    ) {
        alarms.sort_unstable();
        let d = dedup_alarms(&alarms, window, min_v);
        prop_assert!(d.len() <= alarms.len());
        // Outputs are a subset of group-start times, strictly spaced.
        for w in d.windows(2) {
            prop_assert!(w[1] - w[0] >= window);
        }
    }

    #[test]
    fn instance_channels_rule(
        events in prop::collection::vec((0i64..100i64, 0usize..4), 0..64),
        min_channels in 1usize..4,
    ) {
        let mut evs = events.clone();
        evs.sort();
        let inst = alarm_instances(&evs, 10, 1, min_channels);
        let lenient = alarm_instances(&evs, 10, 1, 1);
        prop_assert!(inst.len() <= lenient.len(), "stricter channel rule cannot add instances");
    }

    #[test]
    fn evaluation_counts_consistent(
        mut alarms in prop::collection::vec(0i64..(365 * 86_400i64), 0..32),
        mut repairs in prop::collection::vec(0i64..(365 * 86_400i64), 0..6),
    ) {
        alarms.sort_unstable();
        repairs.sort_unstable();
        repairs.dedup();
        let params = EvalParams { min_instance_violations: 1, ..EvalParams::days(30) };
        let c = evaluate_vehicle(&alarms, &repairs, params);
        prop_assert_eq!(c.tp + c.fn_, repairs.len(), "every failure is hit or missed");
        let instances = dedup_alarms(&alarms, params.dedup_seconds, 1);
        prop_assert!(c.tp + c.fp <= instances.len() + repairs.len());
    }

    #[test]
    fn fbeta_bounded(tp in 0usize..20, fp in 0usize..20, fn_ in 0usize..20, beta in 0.1f64..4.0) {
        let c = EvalCounts { tp, fp, fn_ };
        let f = c.f_beta(beta);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!((0.0..=1.0).contains(&c.precision()));
        prop_assert!((0.0..=1.0).contains(&c.recall()));
    }

    #[test]
    fn reference_profile_capacity_respected(
        dim in 1usize..6,
        capacity in 1usize..32,
        extra in 0usize..16,
    ) {
        let mut p = ReferenceProfile::new(dim, capacity);
        let sample: Vec<f64> = (0..dim).map(|i| i as f64).collect();
        let mut completed = 0;
        for _ in 0..(capacity + extra) {
            if p.push(&sample) {
                completed += 1;
            }
        }
        prop_assert_eq!(p.len(), capacity);
        prop_assert_eq!(completed, 1, "exactly one completing push");
    }
}

mod detector_props {
    use navarchos_core::detectors::{
        ClosestPairDetector, Detector, DetectorParams, GrandDetector, GrandNcm,
        IsolationForestDetector, KdeDetector, MlpDetector, PcaDetector, SaxNoveltyDetector,
        TranAdDetector, XgboostDetector,
    };
    use navarchos_core::reference::ReferenceProfile;
    use proptest::prelude::*;

    fn profile_from(rows: &[(f64, f64, f64)]) -> ReferenceProfile {
        let mut p = ReferenceProfile::new(3, rows.len());
        for &(a, b, c) in rows {
            p.push(&[a, b, c]);
        }
        p
    }

    proptest! {
        #[test]
        fn pca_residual_is_non_negative_and_translation_invariant(
            rows in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0), 8..64),
            query in (-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0),
            shift in -100.0f64..100.0,
        ) {
            let mut d = PcaDetector::new(3, &DetectorParams::default());
            d.fit(&profile_from(&rows));
            let s = d.score(&[query.0, query.1, query.2])[0];
            prop_assert!(s >= 0.0 && s.is_finite());

            // Shifting the profile and the query together leaves the
            // residual unchanged (PCA centres on the mean).
            let shifted: Vec<(f64, f64, f64)> =
                rows.iter().map(|&(a, b, c)| (a + shift, b + shift, c + shift)).collect();
            let mut d2 = PcaDetector::new(3, &DetectorParams::default());
            d2.fit(&profile_from(&shifted));
            let s2 = d2.score(&[query.0 + shift, query.1 + shift, query.2 + shift])[0];
            prop_assert!((s - s2).abs() <= 1e-6 * (1.0 + s.abs()), "{s} vs {s2}");
        }

        #[test]
        fn pca_reference_samples_score_below_profile_diameter(
            rows in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0), 8..40),
        ) {
            let profile = profile_from(&rows);
            let mut d = PcaDetector::new(3, &DetectorParams::default());
            d.fit(&profile);
            // A residual is a distance to an affine subspace through the
            // data mean, so it can never exceed the distance to the mean,
            // which is itself bounded by the profile diameter.
            let diameter = rows
                .iter()
                .flat_map(|a| rows.iter().map(move |b| {
                    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2) + (a.2 - b.2).powi(2)).sqrt()
                }))
                .fold(0.0f64, f64::max);
            for &(a, b, c) in &rows {
                let s = d.score(&[a, b, c])[0];
                prop_assert!(s <= diameter + 1e-9, "residual {s} > diameter {diameter}");
            }
        }

        #[test]
        fn kde_density_decreases_away_from_the_data(
            rows in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), 8..40),
            direction in (0.1f64..1.0, 0.1f64..1.0, 0.1f64..1.0),
        ) {
            let mut d = KdeDetector::new(3, &DetectorParams::default());
            d.fit(&profile_from(&rows));
            // Walk far away along `direction`. Once every coordinate
            // exceeds the data's (|coord| <= 5, direction >= 0.1 so k >= 60
            // suffices), the distance to every kernel centre grows with k
            // and novelty must grow monotonically.
            let mut prev = f64::NEG_INFINITY;
            for k in [60.0, 120.0, 240.0] {
                let s = d.score(&[k * direction.0, k * direction.1, k * direction.2])[0];
                prop_assert!(s.is_finite());
                prop_assert!(s > prev, "novelty not growing: {s} after {prev}");
                prev = s;
            }
        }

        #[test]
        fn closest_pair_scores_are_finite_and_non_negative(
            rows in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0), 4..48),
            query in (-80.0f64..80.0, -80.0f64..80.0, -80.0f64..80.0),
        ) {
            let mut d = ClosestPairDetector::new(&["a", "b", "c"]);
            prop_assert!(d.score(&[query.0, query.1, query.2]).iter().all(|v| v.is_nan()));
            d.fit(&profile_from(&rows));
            let s = d.score(&[query.0, query.1, query.2]);
            prop_assert_eq!(s.len(), d.n_channels());
            prop_assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0), "{:?}", s);
            // A reference member has a zero-distance closest pair in every
            // channel.
            let (a, b, c) = rows[0];
            prop_assert!(d.score(&[a, b, c]).iter().all(|&v| v == 0.0));
        }

        #[test]
        fn grand_deviation_stays_in_unit_interval(
            rows in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), 8..32),
            queries in prop::collection::vec((-8.0f64..8.0, -8.0f64..8.0, -8.0f64..8.0), 1..16),
            ncm_i in 0usize..3,
        ) {
            let ncm = [GrandNcm::Median, GrandNcm::Knn, GrandNcm::Lof][ncm_i];
            let mut d = GrandDetector::new(3, ncm, 3, 20);
            d.fit(&profile_from(&rows));
            for q in &queries {
                let s = d.score(&[q.0, q.1, q.2]);
                prop_assert_eq!(s.len(), 1);
                prop_assert!((0.0..=1.0).contains(&s[0]), "deviation {} for {:?}", s[0], ncm);
            }
        }

        #[test]
        fn isolation_forest_scores_bounded_and_deterministic(
            rows in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), 8..32),
            query in (-20.0f64..20.0, -20.0f64..20.0, -20.0f64..20.0),
        ) {
            let profile = profile_from(&rows);
            let q = [query.0, query.1, query.2];
            let mut d = IsolationForestDetector::new(3, &DetectorParams::default());
            d.fit(&profile);
            let s = d.score(&q);
            prop_assert_eq!(s.len(), 1);
            prop_assert!((0.0..=1.0).contains(&s[0]), "score {}", s[0]);
            // Same seed + same data → identical forest.
            let mut d2 = IsolationForestDetector::new(3, &DetectorParams::default());
            d2.fit(&profile);
            prop_assert_eq!(d2.score(&q), s);
        }

        #[test]
        fn sax_novelty_scores_are_finite_and_non_negative(
            rows in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), 30..45),
            queries in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0), 1..40),
        ) {
            let mut d = SaxNoveltyDetector::new(&["a", "b", "c"], &DetectorParams::default());
            d.fit(&profile_from(&rows));
            for q in &queries {
                let s = d.score(&[q.0, q.1, q.2]);
                prop_assert_eq!(s.len(), 3);
                prop_assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0), "{:?}", s);
            }
        }

        #[test]
        fn kde_log_density_never_exceeds_max_kernel_height(
            rows in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), 8..40),
            query in (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0),
        ) {
            let mut d = KdeDetector::new(3, &DetectorParams::default());
            d.fit(&profile_from(&rows));
            // Density ≤ product of kernel peaks: ln f(x) ≤ -Σ ln(h_j √2π).
            let cap: f64 = -d
                .bandwidths()
                .iter()
                .map(|h| (h * (2.0 * std::f64::consts::PI).sqrt()).ln())
                .sum::<f64>();
            let ld = d.log_density(&[query.0, query.1, query.2]);
            prop_assert!(ld <= cap + 1e-9, "log-density {ld} above cap {cap}");
        }
    }

    // The trained detectors (gradient boosting / neural nets) pay a real
    // fit cost per case, so they run with a reduced case budget.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn xgboost_errors_are_finite_and_non_negative(
            rows in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), 8..24),
            query in (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0),
        ) {
            let mut d = XgboostDetector::new(&["a", "b", "c"], &DetectorParams::default());
            d.fit(&profile_from(&rows));
            let s = d.score(&[query.0, query.1, query.2]);
            prop_assert_eq!(s.len(), 3);
            prop_assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0), "{:?}", s);
        }

        #[test]
        fn mlp_errors_are_finite_and_non_negative(
            rows in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0), 8..20),
            query in (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0),
        ) {
            let mut d = MlpDetector::new(&["a", "b", "c"], &DetectorParams::default());
            d.fit(&profile_from(&rows));
            let s = d.score(&[query.0, query.1, query.2]);
            prop_assert_eq!(s.len(), 3);
            prop_assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0), "{:?}", s);
        }

        #[test]
        fn tranad_scores_finite_through_warmup(
            rows in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0), 10..20),
            queries in prop::collection::vec((-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0), 1..12),
        ) {
            let mut d = TranAdDetector::new(3, &DetectorParams::default());
            d.fit(&profile_from(&rows));
            // Scores must be finite both before the rolling window fills
            // (training-mean fallback) and after (real reconstructions).
            for q in &queries {
                let s = d.score(&[q.0, q.1, q.2]);
                prop_assert_eq!(s.len(), 1);
                prop_assert!(s[0].is_finite() && s[0] >= 0.0, "score {}", s[0]);
            }
        }
    }
}

proptest! {
    #[test]
    fn par_map_equals_serial_map(
        items in prop::collection::vec(prop::collection::vec(-1e3f64..1e3, 0..32), 0..48),
    ) {
        // The scoped fork-join helper must be a drop-in for the serial
        // loop: same results, original order, every index visited once.
        let par = navarchos_core::par_map(&items, |i, v: &Vec<f64>| (i, v.iter().sum::<f64>()));
        let serial: Vec<(usize, f64)> =
            items.iter().enumerate().map(|(i, v)| (i, v.iter().sum::<f64>())).collect();
        prop_assert_eq!(par, serial);
    }
}

/// Spans opened inside `par_map` workers nest per worker thread: every
/// task-level span parents onto nothing from another thread (the workers
/// have no enclosing frame), ids stay unique, and the caller's own span
/// stack is untouched by the fan-out — no interleaving corruption.
#[test]
fn par_map_span_nesting_is_isolated() {
    navarchos_obs::set_metrics_enabled(true);
    let caller_span = navarchos_obs::span("props.caller");
    let caller_id = caller_span.id().expect("enabled span has an id");
    let items: Vec<usize> = (0..64).collect();
    let spans: Vec<(Option<u64>, Option<u64>, usize)> = navarchos_core::par_map(&items, |_, _| {
        // The worker's own `par_map.worker` span is already on this
        // thread's stack; task spans nest under it, never under the
        // caller's frame or another worker's.
        let worker_id = navarchos_obs::current_span_id();
        let outer = navarchos_obs::span("props.task");
        let inner = navarchos_obs::span("props.task.inner");
        assert_eq!(outer.parent(), worker_id, "outer nests under this worker's span");
        assert_eq!(inner.parent(), outer.id(), "inner nests under this worker's outer");
        (outer.id(), outer.parent(), navarchos_obs::span::current_depth())
    });
    // The caller's stack is still intact after the scope joins.
    assert_eq!(navarchos_obs::current_span_id(), Some(caller_id));
    let mut ids = Vec::new();
    for (id, parent, depth) in spans {
        let id = id.expect("worker spans are live while metrics are on");
        assert_ne!(Some(id), Some(caller_id));
        assert_ne!(parent, Some(caller_id), "worker spans must not adopt the caller's frame");
        assert_eq!(depth, 3, "worker + outer + inner on the worker's own stack");
        ids.push(id);
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), items.len(), "span ids are globally unique across workers");
}

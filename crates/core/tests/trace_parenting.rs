//! Trace-fixture test for fork-join span parenting (ROADMAP item): spans
//! opened on `par_map` / `par_map_mut` worker threads must parent onto the
//! fan-out span, so a traced run folds into one tree instead of a forest
//! with one root per worker thread.
//!
//! Integration test on purpose: it installs a process-global NDJSON sink,
//! and `tests/` binaries run in their own process, so no other test's
//! events can leak into the capture.

use std::collections::HashMap;
use std::sync::Mutex;

use navarchos_core::{par_map, par_map_mut};
use navarchos_obs as obs;
use navarchos_obs::SpanClose;

/// The sink is process-global, so tests in this binary must not overlap.
/// (Ignore poisoning: a failed test must not cascade into the others.)
static SINK_LOCK: Mutex<()> = Mutex::new(());

/// Runs `work` with an NDJSON sink installed, returns the captured span
/// closes keyed by id.
fn capture_spans(tag: &str, work: impl FnOnce()) -> HashMap<u64, SpanClose> {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let dir = std::env::temp_dir().join("navarchos-trace-parenting");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{tag}.ndjson"));
    let sink = obs::NdjsonSink::create(&path).expect("create trace sink");
    obs::set_sink(std::sync::Arc::new(sink));
    work();
    obs::set_events_enabled(false);
    obs::set_sink(std::sync::Arc::new(obs::NullSink));
    let text = std::fs::read_to_string(&path).expect("read trace");
    std::fs::remove_file(&path).ok();
    text.lines()
        .filter_map(|l| obs::parse_line(l).ok())
        .filter_map(|e| SpanClose::from_event(&e))
        .map(|s| (s.id, s))
        .collect()
}

fn spans_named<'a>(spans: &'a HashMap<u64, SpanClose>, name: &str) -> Vec<&'a SpanClose> {
    spans.values().filter(|s| s.name == name).collect()
}

#[test]
fn par_map_worker_spans_parent_onto_the_fanout_span() {
    let spans = capture_spans("par_map", || {
        let _root = obs::span("evaluate");
        let items: Vec<usize> = (0..32).collect();
        let _ = par_map(&items, |_, &x| {
            let _inner = obs::span("score_vehicle");
            x * 2
        });
    });

    let root = spans_named(&spans, "evaluate");
    assert_eq!(root.len(), 1, "exactly one root span");
    let fanout = spans_named(&spans, "par_map");
    assert_eq!(fanout.len(), 1, "exactly one par_map span");
    assert_eq!(fanout[0].parent, Some(root[0].id), "par_map nests under the caller");

    let workers = spans_named(&spans, "par_map.worker");
    assert!(!workers.is_empty(), "workers must open spans");
    for w in &workers {
        assert_eq!(
            w.parent,
            Some(fanout[0].id),
            "worker span {} must inherit the par_map span as parent",
            w.id
        );
    }
    let worker_ids: Vec<u64> = workers.iter().map(|w| w.id).collect();
    let inner = spans_named(&spans, "score_vehicle");
    assert_eq!(inner.len(), 32, "one span per item");
    for s in &inner {
        let parent = s.parent.expect("inner spans must have a parent");
        assert!(
            worker_ids.contains(&parent),
            "span {} parents onto {parent}, which is not a worker span",
            s.id
        );
    }
}

#[test]
fn par_map_mut_worker_spans_parent_onto_the_fanout_span() {
    let spans = capture_spans("par_map_mut", || {
        let _root = obs::span("ingest");
        let mut shards: Vec<u64> = (0..8).collect();
        let _ = par_map_mut(&mut shards, |_, shard| {
            let _inner = obs::span("shard_drain");
            *shard += 1;
            *shard
        });
    });

    let root = spans_named(&spans, "ingest");
    let fanout = spans_named(&spans, "par_map_mut");
    assert_eq!(fanout.len(), 1);
    assert_eq!(fanout[0].parent, Some(root[0].id));
    let workers = spans_named(&spans, "par_map.worker");
    assert!(!workers.is_empty());
    for w in &workers {
        assert_eq!(w.parent, Some(fanout[0].id));
    }
    let worker_ids: Vec<u64> = workers.iter().map(|w| w.id).collect();
    for s in spans_named(&spans, "shard_drain") {
        assert!(worker_ids.contains(&s.parent.expect("parented")));
    }
}

#[test]
fn traced_fanout_folds_into_one_tree() {
    // The flamegraph consequence of parenting: every folded stack of a
    // traced fan-out starts at the single root frame.
    let _guard = SINK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let dir = std::env::temp_dir().join("navarchos-trace-parenting");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("fold.ndjson");
    let sink = obs::NdjsonSink::create(&path).expect("create trace sink");
    obs::set_sink(std::sync::Arc::new(sink));
    {
        let _root = obs::span("evaluate");
        let items: Vec<usize> = (0..16).collect();
        let _ = par_map(&items, |_, &x| {
            let _inner = obs::span("score_vehicle");
            x + 1
        });
    }
    obs::set_events_enabled(false);
    obs::set_sink(std::sync::Arc::new(obs::NullSink));
    let text = std::fs::read_to_string(&path).expect("read trace");
    std::fs::remove_file(&path).ok();

    let (folded, _skipped) = obs::fold_trace(&text).expect("fold");
    assert!(!folded.is_empty());
    for (stack, _) in &folded {
        assert!(
            stack == "evaluate" || stack.starts_with("evaluate;"),
            "stack `{stack}` is not rooted at the single root span"
        );
    }
    // And the deep stack exists: root → fan-out → worker → item.
    assert!(
        folded.iter().any(|(s, _)| s == "evaluate;par_map;par_map.worker;score_vehicle"),
        "expected the full four-deep stack, got {folded:?}"
    );
}

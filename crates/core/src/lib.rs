//! The Navarchos PdM framework — the paper's primary contribution.
//!
//! The framework detects behavioural changes of fleet vehicles that
//! precede failures, from six OBD-II PID signals and a *partial* event
//! log, with three pluggable steps (Section 3 of the paper):
//!
//! 1. **Data transformation** (re-exported from `navarchos-tsframe`):
//!    raw, delta, windowed mean, or windowed pairwise correlation.
//! 2. **Reference profile** ([`crate::reference`]): a dynamic "healthy" dataset
//!    `Ref`, rebuilt after each recorded maintenance event under a
//!    configurable [`reference::ResetPolicy`].
//! 3. **Unsupervised scoring** ([`detectors`]): Closest-pair, Grand
//!    inductive, TranAD, or per-feature XGBoost regression, behind one
//!    [`detectors::Detector`] trait.
//!
//! [`threshold`] implements the self-tuning threshold (mean + factor·std
//! on held-out healthy scores), [`pipeline`] the streaming loop of the
//! paper's Algorithm 1, [`runner`] the batch scorer used by experiments,
//! [`evaluation`] the PH-based precision/recall/F-score protocol, and
//! [`par`] the scoped fork-join helper behind every fleet-parallel loop.

pub mod aggregator;
pub mod detectors;
pub mod evaluation;
pub mod fleet_grand;
pub mod par;
pub mod pipeline;
pub mod prelude;
pub mod reference;
pub mod runner;
pub mod threshold;

pub use aggregator::{AlarmAggregator, AlarmInstance};
pub use detectors::{Detector, DetectorKind};
pub use evaluation::{evaluate, sweep_best, EvalCounts, EvalParams};
pub use fleet_grand::{fleet_grand_scores, FleetGrandParams, VehicleSeries};
pub use par::{par_map, par_map_mut};
pub use pipeline::{replay_interleaved, replay_stream, Alarm, PipelineConfig, StreamingPipeline};
pub use reference::ResetPolicy;
pub use runner::{run_vehicle, RunnerParams, VehicleScores};
pub use threshold::SelfTuningThreshold;

// Re-export the transformation layer so downstream users need only this
// crate for the full framework.
pub use navarchos_tsframe::{
    CorrelationTransform, DeltaTransform, Frame, MeanTransform, RawTransform, Transform,
    TransformKind,
};

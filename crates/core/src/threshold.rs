//! The self-tuning threshold of Giannoulidis et al. (SIGKDD Explorations
//! 2022), adopted by the paper for every detector except Grand: for each
//! score channel, `threshold = mean + factor · std` computed over the
//! anomaly scores of a small portion of presumed-healthy data, so each
//! vehicle (and each reference rebuild) tunes itself with one shared
//! `factor` parameter.

use navarchos_stat::descriptive::RunningStats;
use navarchos_stat::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

/// Per-channel self-tuning threshold state.
#[derive(Debug, Clone)]
pub struct SelfTuningThreshold {
    factor: f64,
    stats: Vec<RunningStats>,
    thresholds: Vec<f64>,
    fitted: bool,
}

impl SelfTuningThreshold {
    /// Creates a threshold over `channels` score channels with the given
    /// factor.
    pub fn new(channels: usize, factor: f64) -> Self {
        assert!(channels > 0, "at least one score channel required");
        SelfTuningThreshold {
            factor,
            stats: vec![RunningStats::new(); channels],
            thresholds: vec![f64::INFINITY; channels],
            fitted: false,
        }
    }

    /// Feeds one healthy score vector (one value per channel). Non-finite
    /// scores are skipped.
    pub fn observe(&mut self, scores: &[f64]) {
        assert_eq!(scores.len(), self.stats.len(), "channel count mismatch");
        for (st, &s) in self.stats.iter_mut().zip(scores) {
            if s.is_finite() {
                st.push(s);
            }
        }
    }

    /// Number of healthy observations seen on the first channel.
    pub fn observed(&self) -> u64 {
        self.stats.first().map(|s| s.count()).unwrap_or(0)
    }

    /// Freezes the thresholds from the collected statistics. Channels with
    /// fewer than two observations keep an infinite threshold (they can
    /// never alarm), which is the safe behaviour for dead channels.
    pub fn fit(&mut self) {
        for (th, st) in self.thresholds.iter_mut().zip(&self.stats) {
            *th = if st.count() >= 2 {
                threshold_value(st.mean(), st.sample_std(), self.factor)
            } else {
                f64::INFINITY
            };
        }
        self.fitted = true;
        // Retune telemetry: rare (once per reference rebuild), so the
        // registry lookup is fine here; sweep paths use `with_factor` /
        // `batch_thresholds`, which stay untouched.
        if navarchos_obs::metrics_enabled() {
            navarchos_obs::counter("threshold.retunes").incr();
        }
        if navarchos_obs::events_enabled() {
            navarchos_obs::emit(
                &navarchos_obs::Event::new("threshold.retune")
                    .field("factor", self.factor)
                    .field("channels", self.stats.len())
                    .field("observed", self.observed()),
            );
        }
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }

    /// The per-channel thresholds (infinite before `fit`).
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Indices of channels whose score exceeds its threshold.
    pub fn violations(&self, scores: &[f64]) -> Vec<usize> {
        scores
            .iter()
            .zip(&self.thresholds)
            .enumerate()
            .filter(|(_, (&s, &t))| s.is_finite() && s > t)
            .map(|(i, _)| i)
            .collect()
    }

    /// Resets all state (new reference profile).
    pub fn reset(&mut self) {
        for st in &mut self.stats {
            *st = RunningStats::new();
        }
        self.thresholds.iter_mut().for_each(|t| *t = f64::INFINITY);
        self.fitted = false;
    }

    /// Recomputes thresholds for a different factor from the same
    /// statistics — the cheap path behind factor sweeps.
    pub fn with_factor(&self, factor: f64) -> Vec<f64> {
        self.stats
            .iter()
            .map(|st| {
                if st.count() >= 2 {
                    threshold_value(st.mean(), st.sample_std(), factor)
                } else {
                    f64::INFINITY
                }
            })
            .collect()
    }
}

// State restores field-direct rather than via `fit()`: a re-fit on restore
// would bump the `threshold.retunes` counter and re-emit the retune event,
// making a restart visible in telemetry that should only count genuine
// retunes.
impl Snapshot for SelfTuningThreshold {
    fn write_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.stats.len());
        for st in &self.stats {
            st.write_state(w);
        }
        w.put_f64_slice(&self.thresholds);
        w.put_bool(self.fitted);
    }
}

impl Restore for SelfTuningThreshold {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let channels = r.get_len(8)?;
        if channels != self.stats.len() {
            return Err(SnapError::Corrupt("SelfTuningThreshold channel count mismatch"));
        }
        for st in &mut self.stats {
            st.read_state(r)?;
        }
        let thresholds = r.get_f64_vec()?;
        if thresholds.len() != self.thresholds.len() {
            return Err(SnapError::Corrupt("SelfTuningThreshold threshold count mismatch"));
        }
        self.thresholds = thresholds;
        self.fitted = r.get_bool()?;
        Ok(())
    }
}

/// `mean + factor · std`, floored by a relative epsilon so a zero-variance
/// holdout (e.g. perfectly correlated signals) cannot alarm on floating-
/// point noise.
fn threshold_value(mean: f64, std: f64, factor: f64) -> f64 {
    mean + factor * std + 1e-9 * (1.0 + mean.abs())
}

/// Computes `mean + factor · std` thresholds for a batch of per-channel
/// healthy scores (`holdout[i]` = scores of channel `i`). `std_floors`
/// (if given, one per channel) bound each channel's std from below: a
/// holdout that happened to be quiet must not produce a threshold tighter
/// than the channel's intrinsic resolution — the runner passes 5 % of the
/// reference profile's per-channel value spread.
pub fn batch_thresholds(holdout: &[Vec<f64>], factor: f64, std_floors: Option<&[f64]>) -> Vec<f64> {
    holdout
        .iter()
        .enumerate()
        .map(|(c, scores)| {
            let mut st = RunningStats::new();
            for &s in scores {
                if s.is_finite() {
                    st.push(s);
                }
            }
            if st.count() >= 2 {
                let floor = std_floors.and_then(|f| f.get(c)).copied().unwrap_or(0.0);
                threshold_value(st.mean(), st.sample_std().max(floor), factor)
            } else {
                f64::INFINITY
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_mean_plus_factor_std() {
        let mut th = SelfTuningThreshold::new(1, 2.0);
        for s in [1.0, 2.0, 3.0] {
            th.observe(&[s]);
        }
        th.fit();
        // mean 2, sample std 1 → threshold 4.
        assert!((th.thresholds()[0] - 4.0).abs() < 1e-7);
        assert!(th.violations(&[4.1]) == vec![0]);
        assert!(th.violations(&[3.9]).is_empty());
    }

    #[test]
    fn before_fit_nothing_alarm() {
        let th = SelfTuningThreshold::new(3, 1.0);
        assert!(th.violations(&[1e9, 1e9, 1e9]).is_empty());
        assert!(!th.is_fitted());
    }

    #[test]
    fn nan_scores_are_skipped() {
        let mut th = SelfTuningThreshold::new(1, 1.0);
        th.observe(&[f64::NAN]);
        th.observe(&[1.0]);
        th.observe(&[3.0]);
        th.fit();
        assert_eq!(th.observed(), 2);
        assert!(th.thresholds()[0].is_finite());
        assert!(th.violations(&[f64::NAN]).is_empty(), "NaN never alarms");
    }

    #[test]
    fn channels_independent() {
        let mut th = SelfTuningThreshold::new(2, 0.0);
        th.observe(&[1.0, 10.0]);
        th.observe(&[3.0, 30.0]);
        th.fit();
        assert!((th.thresholds()[0] - 2.0).abs() < 1e-7);
        assert!((th.thresholds()[1] - 20.0).abs() < 1e-7);
        assert_eq!(th.violations(&[5.0, 5.0]), vec![0]);
    }

    #[test]
    fn factor_monotonicity() {
        let mut th = SelfTuningThreshold::new(1, 1.0);
        for s in [1.0, 5.0, 2.0, 4.0, 3.0] {
            th.observe(&[s]);
        }
        th.fit();
        let mut last = f64::NEG_INFINITY;
        for f in [0.0, 0.5, 1.0, 2.0, 4.0] {
            let t = th.with_factor(f)[0];
            assert!(t > last, "threshold grows with factor");
            last = t;
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut th = SelfTuningThreshold::new(1, 1.0);
        th.observe(&[1.0]);
        th.observe(&[2.0]);
        th.fit();
        th.reset();
        assert!(!th.is_fitted());
        assert_eq!(th.observed(), 0);
        assert!(th.thresholds()[0].is_infinite());
    }

    #[test]
    fn batch_matches_streaming() {
        let scores = vec![vec![1.0, 2.0, 3.0, 4.0]];
        let batch = batch_thresholds(&scores, 1.5, None);
        let mut th = SelfTuningThreshold::new(1, 1.5);
        for &s in &scores[0] {
            th.observe(&[s]);
        }
        th.fit();
        assert!((batch[0] - th.thresholds()[0]).abs() < 1e-12);
    }

    #[test]
    fn degenerate_channel_never_alarms() {
        let mut th = SelfTuningThreshold::new(1, 1.0);
        th.observe(&[2.0]);
        th.fit();
        assert!(th.thresholds()[0].is_infinite());
        assert!(th.violations(&[1e12]).is_empty());
    }
}

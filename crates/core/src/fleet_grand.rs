//! Fleet-level Grand — the *original* "wisdom of the crowd" formulation of
//! Rögnvaldsson et al. (DMKD 2018) that the paper describes before
//! adopting the per-vehicle inductive variant: each vehicle's recent
//! behaviour is scored for strangeness against its *peers'* concurrent
//! behaviour, then a per-vehicle martingale accumulates the evidence.
//!
//! The paper argues this variant is ill-suited to heterogeneous fleets
//! ("in our case, vehicles differ from each other, and so, we follow
//! another strategy"); this implementation exists to let that argument be
//! tested instead of assumed — see the `exp_ablations` experiment.

use navarchos_neighbors::KdTree;
use navarchos_stat::martingale::{conformal_pvalue, PowerMartingale};

/// One vehicle's time-stamped feature series (daily behaviour vectors).
#[derive(Debug, Clone)]
pub struct VehicleSeries {
    /// Day-bucket timestamps (sorted ascending).
    pub timestamps: Vec<i64>,
    /// Row-major feature matrix aligned with `timestamps`.
    pub features: Vec<f64>,
    /// Feature dimension.
    pub dim: usize,
}

impl VehicleSeries {
    /// Feature vector of day `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// Number of days.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }
}

/// Fleet-level Grand parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetGrandParams {
    /// Trailing peer window (days): a vehicle-day is compared against the
    /// other vehicles' days within this horizon.
    pub peer_window_days: i64,
    /// Neighbourhood size of the kNN strangeness measure.
    pub k: usize,
    /// Martingale sliding memory (updates).
    pub martingale_window: usize,
    /// Minimum number of peer samples required to score a day.
    pub min_peers: usize,
}

impl Default for FleetGrandParams {
    fn default() -> Self {
        FleetGrandParams { peer_window_days: 30, k: 5, martingale_window: 30, min_peers: 20 }
    }
}

/// Deviation-level series (one value in [0, 1] per scored day) per
/// vehicle, aligned with each input series' timestamps (`NaN` where too
/// few peers existed).
pub fn fleet_grand_scores(series: &[VehicleSeries], params: &FleetGrandParams) -> Vec<Vec<f64>> {
    assert!(!series.is_empty(), "empty fleet");
    let span = navarchos_obs::span("fleet_grand");
    let obs_on = navarchos_obs::metrics_enabled();
    let dim = series.iter().find(|s| !s.is_empty()).map(|s| s.dim).unwrap_or(0);
    assert!(series.iter().all(|s| s.is_empty() || s.dim == dim), "mixed feature dims");

    // Each vehicle carries its own martingale and only reads its peers'
    // series, so the fleet fans out over scoped threads.
    let out = crate::par::par_map(series, |v, own| {
        let mut martingale = PowerMartingale::default().with_window(params.martingale_window);
        let mut scores = Vec::with_capacity(own.len());
        for i in 0..own.len() {
            let t = own.timestamps[i];
            // Collect the peer pool: other vehicles' days within the window.
            let mut pool: Vec<Vec<f64>> = Vec::new();
            for (u, peer) in series.iter().enumerate() {
                if u == v {
                    continue;
                }
                for j in 0..peer.len() {
                    let pt = peer.timestamps[j];
                    if pt <= t && t - pt <= params.peer_window_days * 86_400 {
                        pool.push(peer.row(j).to_vec());
                    }
                }
            }
            if pool.len() < params.min_peers.max(params.k + 1) {
                scores.push(f64::NAN);
                continue;
            }
            // The k-d tree returns exactly the brute-force distances but
            // turns the O(|pool|²) leave-one-out calibration into
            // O(|pool| log |pool|).
            let index = KdTree::new(&pool, dim);
            // Strangeness of the vehicle-day and of each peer (leave-one-out)
            // — the conformal calibration set.
            let s_own = index.knn_score(own.row(i), params.k, None);
            let calibration: Vec<f64> =
                (0..index.len()).map(|p| index.knn_score(&pool[p], params.k, Some(p))).collect();
            let p = conformal_pvalue(&calibration, s_own, 0.5);
            scores.push(martingale.update(p));
        }
        if obs_on {
            // One registry touch per vehicle, after its whole series.
            let scored = scores.iter().filter(|s| s.is_finite()).count();
            navarchos_obs::counter("fleet_grand.scored_days").add(scored as u64);
            navarchos_obs::counter("fleet_grand.skipped_days").add((scores.len() - scored) as u64);
        }
        scores
    });
    drop(span);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A homogeneous fleet of `n` vehicles over `days` days; vehicle 0
    /// drifts away from the crowd starting at `drift_from` (if given).
    fn fleet(n: usize, days: usize, drift_from: Option<usize>) -> Vec<VehicleSeries> {
        (0..n)
            .map(|v| {
                let mut features = Vec::new();
                let mut timestamps = Vec::new();
                for d in 0..days {
                    timestamps.push(d as i64 * 86_400);
                    let base = [
                        (d as f64 * 0.3).sin() + 0.01 * v as f64,
                        (d as f64 * 0.2).cos() - 0.01 * v as f64,
                    ];
                    let drifted = match drift_from {
                        Some(from) if v == 0 && d >= from => [base[0] + 3.0, base[1] - 3.0],
                        _ => base,
                    };
                    features.extend(drifted);
                }
                VehicleSeries { timestamps, features, dim: 2 }
            })
            .collect()
    }

    #[test]
    fn homogeneous_fleet_stays_quiet() {
        let series = fleet(6, 60, None);
        let scores = fleet_grand_scores(&series, &FleetGrandParams::default());
        assert_eq!(scores.len(), 6);
        for vehicle_scores in &scores {
            let max = vehicle_scores.iter().cloned().filter(|s| s.is_finite()).fold(0.0, f64::max);
            assert!(max < 0.9, "peer-consistent vehicles stay low, got {max}");
        }
    }

    #[test]
    fn drifting_vehicle_is_flagged() {
        let series = fleet(6, 80, Some(40));
        let scores = fleet_grand_scores(&series, &FleetGrandParams::default());
        let late_dev =
            scores[0][60..].iter().cloned().filter(|s| s.is_finite()).fold(0.0, f64::max);
        assert!(late_dev > 0.9, "drifting vehicle saturates: {late_dev}");
        // Peers stay low even while vehicle 0 drifts.
        for vehicle_scores in &scores[1..] {
            let max = vehicle_scores.iter().cloned().filter(|s| s.is_finite()).fold(0.0, f64::max);
            assert!(max < 0.9, "peer falsely flagged: {max}");
        }
    }

    #[test]
    fn sparse_fleet_yields_nan() {
        // Two vehicles cannot provide enough peers under the default
        // minimum.
        let series = fleet(2, 10, None);
        let scores = fleet_grand_scores(&series, &FleetGrandParams::default());
        assert!(scores[0].iter().all(|s| s.is_nan()));
    }

    #[test]
    fn early_days_have_fewer_peers() {
        let series = fleet(8, 30, None);
        let params = FleetGrandParams { min_peers: 40, ..Default::default() };
        let scores = fleet_grand_scores(&series, &params);
        // Day 0 has only 7 peer-days (< 40) → NaN; late days have plenty.
        assert!(scores[0][0].is_nan());
        assert!(scores[0].last().unwrap().is_finite());
    }
}

//! Streaming alarm aggregation: turns the raw per-sample threshold
//! violations of [`crate::pipeline::StreamingPipeline`] into the same
//! *alarm instances* the batch evaluation protocol counts (violations
//! grouped over a time window, requiring persistence and multi-channel
//! agreement), so a deployed pipeline raises operator alarms with exactly
//! the semantics the experiments validated.

use crate::evaluation::EvalParams;
use crate::pipeline::Alarm;

/// An operator-facing alarm instance: a persistent multi-channel cluster
/// of threshold violations.
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmInstance {
    /// Timestamp of the first violation in the group.
    pub start: i64,
    /// Number of violations in the group.
    pub violations: usize,
    /// Distinct channels that violated, sorted.
    pub channels: Vec<usize>,
}

/// Streaming grouper applying the evaluation protocol's instance rules.
#[derive(Debug, Clone)]
pub struct AlarmAggregator {
    window: i64,
    min_violations: usize,
    min_channels: usize,
    group_start: Option<i64>,
    count: usize,
    channels: Vec<usize>,
    emitted_current: bool,
}

impl AlarmAggregator {
    /// Creates an aggregator with the evaluation protocol's parameters
    /// (dedup window, persistence and channel requirements); the distinct-
    /// channel requirement is capped by `n_channels` so single-channel
    /// detectors stay usable. (Unlike the daily-aggregated batch path, the
    /// per-sample stream can deliver many violations per channel per day,
    /// so the persistence requirement is not capped.)
    pub fn new(eval: &EvalParams, n_channels: usize) -> Self {
        AlarmAggregator {
            window: eval.dedup_seconds,
            min_violations: eval.min_instance_violations,
            min_channels: eval.min_distinct_channels.min(n_channels.max(1)),
            group_start: None,
            count: 0,
            channels: Vec::new(),
            emitted_current: false,
        }
    }

    /// Feeds one pipeline alarm; returns an instance the moment the
    /// current group first satisfies the rules (at most one instance per
    /// group).
    pub fn push(&mut self, alarm: &Alarm) -> Option<AlarmInstance> {
        match self.group_start {
            Some(start) if alarm.timestamp - start < self.window => {
                self.count += 1;
                if !self.channels.contains(&alarm.channel) {
                    self.channels.push(alarm.channel);
                }
            }
            _ => {
                self.group_start = Some(alarm.timestamp);
                self.count = 1;
                self.channels.clear();
                self.channels.push(alarm.channel);
                self.emitted_current = false;
            }
        }
        if !self.emitted_current
            && self.count >= self.min_violations
            && self.channels.len() >= self.min_channels
        {
            // `count >= 1` implies an open group; checked rather than
            // asserted so a bookkeeping bug degrades to a missed alarm
            // instead of aborting the run.
            let start = self.group_start?;
            self.emitted_current = true;
            let mut channels = self.channels.clone();
            channels.sort_unstable();
            Some(AlarmInstance { start, violations: self.count, channels })
        } else {
            None
        }
    }

    /// Clears the open group (call on reference resets).
    pub fn reset(&mut self) {
        self.group_start = None;
        self.count = 0;
        self.channels.clear();
        self.emitted_current = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alarm(t: i64, channel: usize) -> Alarm {
        Alarm {
            timestamp: t,
            channel,
            channel_name: format!("ch{channel}"),
            score: 1.0,
            threshold: 0.5,
        }
    }

    fn aggregator(min_violations: usize, min_channels: usize) -> AlarmAggregator {
        let eval = EvalParams {
            ph_seconds: 30 * 86_400,
            dedup_seconds: 86_400,
            min_instance_violations: min_violations,
            min_distinct_channels: min_channels,
        };
        AlarmAggregator::new(&eval, 15)
    }

    #[test]
    fn emits_once_when_rules_met() {
        let mut agg = aggregator(3, 2);
        assert!(agg.push(&alarm(0, 0)).is_none());
        assert!(agg.push(&alarm(100, 0)).is_none(), "persistence not yet met");
        let inst = agg.push(&alarm(200, 1)).expect("3 violations on 2 channels");
        assert_eq!(inst.start, 0);
        assert_eq!(inst.violations, 3);
        assert_eq!(inst.channels, vec![0, 1]);
        // Further violations in the same group do not re-emit.
        assert!(agg.push(&alarm(300, 2)).is_none());
    }

    #[test]
    fn single_channel_groups_filtered() {
        let mut agg = aggregator(3, 2);
        for i in 0..10 {
            assert!(agg.push(&alarm(i * 60, 0)).is_none(), "one channel never qualifies");
        }
    }

    #[test]
    fn groups_split_after_window() {
        let mut agg = aggregator(2, 1);
        assert!(agg.push(&alarm(0, 0)).is_none());
        assert!(agg.push(&alarm(10, 1)).is_some());
        // Two days later: a fresh group must re-qualify from scratch.
        assert!(agg.push(&alarm(2 * 86_400, 0)).is_none());
        assert!(agg.push(&alarm(2 * 86_400 + 60, 1)).is_some());
    }

    #[test]
    fn requirements_capped_by_channel_count() {
        // A single-channel detector cannot satisfy min 2 distinct channels:
        // the cap reduces it to 1.
        let eval = EvalParams {
            ph_seconds: 30 * 86_400,
            dedup_seconds: 86_400,
            min_instance_violations: 2,
            min_distinct_channels: 2,
        };
        let mut agg = AlarmAggregator::new(&eval, 1);
        assert!(agg.push(&alarm(0, 0)).is_none(), "persistence still required");
        assert!(agg.push(&alarm(60, 0)).is_some(), "channel requirement capped to 1");
    }

    #[test]
    fn reset_clears_group() {
        let mut agg = aggregator(2, 1);
        agg.push(&alarm(0, 0));
        agg.reset();
        assert!(agg.push(&alarm(10, 1)).is_none(), "count restarted");
    }
}

//! The streaming loop of the paper's Algorithm 1: events that reset the
//! reference profile, records that flow through filtering and
//! transformation, a reference profile that fills and fits the detector,
//! a healthy holdout that tunes the threshold, and alarms with feature
//! attribution.

use std::sync::Arc;
use std::time::Instant;

use crate::detectors::{Detector, DetectorKind, DetectorParams};
use crate::reference::{ReferenceProfile, ResetPolicy};
use crate::threshold::SelfTuningThreshold;
use navarchos_obs as obs;
use navarchos_stat::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use navarchos_tsframe::{FilterSpec, Frame, Transform, TransformKind};

/// Pipeline configuration (one vehicle's instantiation of the framework).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Step-1 data transformation.
    pub transform: TransformKind,
    /// Sliding-window length (records) for the windowed transformations.
    pub window: usize,
    /// Emission stride (records) for the windowed transformations.
    pub stride: usize,
    /// Step-3 detector.
    pub detector: DetectorKind,
    /// Detector tuning knobs.
    pub detector_params: DetectorParams,
    /// Reference profile length (transformed samples).
    pub profile_length: usize,
    /// Healthy samples scored to tune the threshold after each fit.
    pub holdout: usize,
    /// Self-tuning threshold factor (mean + factor · std).
    pub threshold_factor: f64,
    /// Constant threshold for detectors with calibrated [0, 1] scores
    /// (Grand).
    pub constant_threshold: f64,
    /// When the reference profile resets.
    pub reset_policy: ResetPolicy,
    /// Record filter applied before transformation.
    pub filter: FilterSpec,
    /// Dynamics floors for the correlation transformation (None = no
    /// gating).
    pub corr_floors: Option<Vec<f64>>,
}

impl PipelineConfig {
    /// The paper's main configuration for a transformation/detector pair:
    /// hour-long windows emitted every 10 minutes for the windowed
    /// transformations, and profile/holdout sizes scaled to the
    /// transformation's emission rate.
    pub fn paper_default(transform: TransformKind, detector: DetectorKind) -> Self {
        let (window, stride, profile_length, holdout) = match transform {
            TransformKind::Raw | TransformKind::Delta => (1, 1, 1200, 1500),
            TransformKind::Mean
            | TransformKind::Correlation
            | TransformKind::Spectral
            | TransformKind::Histogram => (45, 3, 80, 50),
        };
        PipelineConfig {
            transform,
            window,
            stride,
            detector,
            detector_params: DetectorParams::default(),
            profile_length,
            holdout,
            threshold_factor: 3.0,
            constant_threshold: 0.5,
            reset_policy: ResetPolicy::OnServiceOrRepair,
            filter: FilterSpec::navarchos_default(),
            corr_floors: None,
        }
    }
}

/// One raised alarm, attributed to the score channel that violated its
/// threshold (the paper's "description with the feature that triggered
/// it").
#[derive(Debug, Clone, PartialEq)]
pub struct Alarm {
    /// Timestamp of the transformed sample that alarmed.
    pub timestamp: i64,
    /// Violating score channel.
    pub channel: usize,
    /// Channel name (feature or feature pair).
    pub channel_name: String,
    /// The anomaly score.
    pub score: f64,
    /// The threshold it exceeded.
    pub threshold: f64,
}

/// Pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Collecting transformed samples into the reference profile.
    FillingReference,
    /// Scoring presumed-healthy samples to tune the threshold.
    Holdout(usize),
    /// Producing alarms.
    Detecting,
}

/// Cached metric handles for the pipeline's hot path: resolved once at
/// construction so `process_record` never touches the registry mutex.
/// Stage timings go through [`obs::BatchedRecorder`]s — plain local
/// buffers, no atomics per record — flushed into the shared histograms on
/// drop or via [`StreamingPipeline::flush_obs`]. Score samples likewise
/// buffer in a local [`obs::QuantileSketch`] and merge into the shared
/// registry sketches on flush, so the hot path never takes the sketch
/// mutex either.
#[derive(Debug)]
struct PipelineStats {
    records: Arc<obs::Counter>,
    emissions: Arc<obs::Counter>,
    resets: Arc<obs::Counter>,
    refits: Arc<obs::Counter>,
    alarms: Arc<obs::Counter>,
    filter_ns: obs::BatchedRecorder,
    transform_ns: obs::BatchedRecorder,
    score_ns: obs::BatchedRecorder,
    alarm_latency_ns: obs::BatchedRecorder,
    /// Fleet-wide score distribution; every pipeline merges into it.
    fleet_scores: Arc<obs::Sketch>,
    /// Per-vehicle score distribution when the pipeline is scoped.
    scoped_scores: Option<Arc<obs::Sketch>>,
    /// Unsynchronised local buffer of per-emission max channel scores,
    /// merged into the shared sketches on flush/drop.
    pending_scores: obs::QuantileSketch,
    /// This pipeline's own cumulative score distribution (what the
    /// headroom gauge ranks the threshold against).
    cumulative_scores: obs::QuantileSketch,
    /// % of observed scores safely below the lowest active threshold.
    threshold_headroom: Arc<obs::Gauge>,
    /// Emissions since the detector last fit — reference staleness.
    profile_age: Arc<obs::Gauge>,
    /// |relative change| of the mean tuned threshold at the last refit,
    /// in basis points — how much a retune actually moved the bar.
    retune_delta: Arc<obs::Gauge>,
    emissions_since_refit: u64,
    last_threshold_mean: Option<f64>,
}

impl PipelineStats {
    fn new(scope: Option<&str>) -> PipelineStats {
        let (fleet_scores, scoped_scores, headroom, age, retune) = match scope {
            // Scoped pipelines (one per vehicle in the ingest engine) keep
            // per-vehicle gauges/sketches and still merge into the fleet
            // sketch; unscoped ones (single-vehicle replay) own the plain
            // names so gauges aren't clobbered across vehicles.
            Some(scope) => (
                obs::sketch("pipeline.score"),
                Some(obs::sketch(&format!("pipeline.{scope}.score"))),
                obs::gauge(&format!("pipeline.{scope}.threshold_headroom_pct")),
                obs::gauge(&format!("pipeline.{scope}.profile_age_emissions")),
                obs::gauge(&format!("pipeline.{scope}.retune_delta_bp")),
            ),
            None => (
                obs::sketch("pipeline.score"),
                None,
                obs::gauge("pipeline.threshold_headroom_pct"),
                obs::gauge("pipeline.profile_age_emissions"),
                obs::gauge("pipeline.retune_delta_bp"),
            ),
        };
        PipelineStats {
            records: obs::counter("pipeline.records"),
            emissions: obs::counter("pipeline.emissions"),
            resets: obs::counter("pipeline.resets"),
            refits: obs::counter("pipeline.refits"),
            alarms: obs::counter("pipeline.alarms"),
            filter_ns: obs::BatchedRecorder::new(obs::histogram("pipeline.stage.filter_ns")),
            transform_ns: obs::BatchedRecorder::new(obs::histogram("pipeline.stage.transform_ns")),
            score_ns: obs::BatchedRecorder::new(obs::histogram("pipeline.stage.score_ns")),
            alarm_latency_ns: obs::BatchedRecorder::new(obs::histogram("alarm.latency_ns")),
            fleet_scores,
            scoped_scores,
            pending_scores: obs::QuantileSketch::default(),
            cumulative_scores: obs::QuantileSketch::default(),
            threshold_headroom: headroom,
            profile_age: age,
            retune_delta: retune,
            emissions_since_refit: 0,
            last_threshold_mean: None,
        }
    }

    /// Buffers the emission's max finite channel score.
    fn observe_scores(&mut self, scores: &[f64]) {
        let max =
            scores.iter().copied().filter(|s| s.is_finite()).fold(f64::NEG_INFINITY, f64::max);
        if max.is_finite() {
            self.pending_scores.record(max);
        }
    }

    /// Merges buffered score samples into the shared registry sketches.
    fn merge_scores(&mut self) {
        if self.pending_scores.is_empty() {
            return;
        }
        self.cumulative_scores.merge(&self.pending_scores);
        self.fleet_scores.merge_from(&self.pending_scores);
        if let Some(s) = &self.scoped_scores {
            s.merge_from(&self.pending_scores);
        }
        self.pending_scores = obs::QuantileSketch::default();
    }

    fn flush(&mut self) {
        self.filter_ns.flush();
        self.transform_ns.flush();
        self.score_ns.flush();
        self.alarm_latency_ns.flush();
        self.merge_scores();
    }
}

impl Drop for PipelineStats {
    fn drop(&mut self) {
        // The recorders flush themselves on drop; buffered score samples
        // need the same courtesy or the tail of a run vanishes.
        self.merge_scores();
    }
}

/// Nanoseconds since `t`, saturating.
fn ns_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The streaming pipeline of Algorithm 1 for a single vehicle.
#[derive(Debug)]
pub struct StreamingPipeline {
    cfg: PipelineConfig,
    input_names: Vec<String>,
    transform: Box<dyn Transform>,
    detector: Box<dyn Detector>,
    profile: ReferenceProfile,
    threshold: SelfTuningThreshold,
    channel_names: Vec<String>,
    phase: Phase,
    /// Reused output buffer for the transform's allocation-free fast path.
    feat: Vec<f64>,
    stats: PipelineStats,
}

impl StreamingPipeline {
    /// Creates the pipeline for records with the given column names.
    pub fn new<S: AsRef<str>>(input_names: &[S], cfg: PipelineConfig) -> Self {
        Self::new_scoped(input_names, cfg, None)
    }

    /// Like [`StreamingPipeline::new`], but telemetry that is meaningless
    /// when aggregated across vehicles (score sketch, threshold-headroom /
    /// profile-age / retune gauges) is minted under
    /// `pipeline.<scope>.<metric>` instead of the plain names. The ingest
    /// engine passes the vehicle label here so fleet dashboards get one
    /// gauge family per vehicle.
    pub fn new_scoped<S: AsRef<str>>(
        input_names: &[S],
        cfg: PipelineConfig,
        scope: Option<&str>,
    ) -> Self {
        let input_names: Vec<String> = input_names.iter().map(|s| s.as_ref().to_string()).collect();
        let transform = crate::runner::build_transform(
            cfg.transform,
            &input_names,
            cfg.window,
            cfg.stride,
            &cfg.corr_floors,
        );
        let dim = transform.output_dim();
        let names = transform.output_names();
        let detector = cfg.detector.build(dim, &names, &cfg.detector_params);
        let channels = detector.n_channels();
        let channel_names = detector.channel_names();
        StreamingPipeline {
            profile: ReferenceProfile::new(dim, cfg.profile_length),
            threshold: SelfTuningThreshold::new(channels, cfg.threshold_factor),
            transform,
            detector,
            cfg,
            input_names,
            channel_names,
            phase: Phase::FillingReference,
            feat: vec![0.0; dim],
            stats: PipelineStats::new(scope),
        }
    }

    /// Current phase name (for dashboards / examples).
    pub fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::FillingReference => "filling-reference",
            Phase::Holdout(_) => "threshold-holdout",
            Phase::Detecting => "detecting",
        }
    }

    /// Score-channel names (feature or feature-pair labels), aligned with
    /// [`Alarm::channel`].
    pub fn channel_names(&self) -> &[String] {
        &self.channel_names
    }

    /// Handles a maintenance event; resets the reference profile when the
    /// policy says so.
    pub fn process_event(&mut self, is_repair: bool) {
        if self.cfg.reset_policy.resets_on(is_repair) {
            self.profile.clear();
            self.detector.reset();
            self.threshold.reset();
            self.transform.reset();
            self.phase = Phase::FillingReference;
            self.stats.emissions_since_refit = 0;
            // A fresh reference means the next threshold fit is a first
            // tune, not a retune — there is no previous bar to delta.
            self.stats.last_threshold_mean = None;
            if obs::metrics_enabled() {
                self.stats.resets.incr();
            }
            if obs::events_enabled() {
                obs::emit(&obs::Event::new("pipeline.reset").field("is_repair", is_repair));
            }
        }
    }

    /// Flushes the batched stage/latency recorders into the shared
    /// histograms and buffered score samples into the shared sketches,
    /// then refreshes the model-quality gauges (threshold headroom,
    /// reference-profile age). Runs automatically when the pipeline drops;
    /// call it explicitly before snapshotting metrics from a still-live
    /// pipeline (the `monitor` loop, dashboards).
    pub fn flush_obs(&mut self) {
        self.stats.flush();
        if !obs::metrics_enabled() {
            return;
        }
        self.stats.profile_age.set(self.stats.emissions_since_refit);
        if self.phase == Phase::Detecting && !self.stats.cumulative_scores.is_empty() {
            let thr = if self.detector.uses_constant_threshold() {
                self.cfg.constant_threshold
            } else {
                self.threshold
                    .thresholds()
                    .iter()
                    .copied()
                    .filter(|t| t.is_finite())
                    .fold(f64::INFINITY, f64::min)
            };
            if thr.is_finite() {
                // 100 = every observed score sits below the lowest active
                // threshold; eroding toward 0 as scores crowd past it.
                let headroom = self.stats.cumulative_scores.rank(thr) * 100.0;
                self.stats.threshold_headroom.set(headroom.round() as u64);
            }
        }
    }

    /// Records how far a threshold (re)tune moved the mean bar, in basis
    /// points relative to the previous tune. The first tune after a reset
    /// only seeds the baseline.
    fn observe_retune(&mut self) {
        let finite: Vec<f64> =
            self.threshold.thresholds().iter().copied().filter(|t| t.is_finite()).collect();
        if finite.is_empty() {
            return;
        }
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        if let Some(prev) = self.stats.last_threshold_mean {
            let delta_bp = ((mean - prev).abs() / prev.abs().max(1e-12)) * 10_000.0;
            self.stats.retune_delta.set(delta_bp.min(u64::MAX as f64 / 2.0).round() as u64);
        }
        self.stats.last_threshold_mean = Some(mean);
    }

    /// Handles one raw record; returns any alarms raised.
    ///
    /// With metrics enabled, the filter → transform → score stages are
    /// timed into `pipeline.stage.*_ns` histograms and every raised alarm
    /// records `alarm.latency_ns` — the wall-clock delay from this
    /// record's arrival (entry into this call) to the alarm's emission,
    /// i.e. how long the triggering observation took to become an alarm.
    /// Disabled, the probe cost is one relaxed atomic load.
    pub fn process_record(&mut self, timestamp: i64, row: &[f64]) -> Vec<Alarm> {
        let on = obs::metrics_enabled();
        let events_on = obs::events_enabled();
        // Arrival timestamp of the triggering record, for alarm latency.
        let arrival = (on || events_on).then(Instant::now);
        let mut clock = if on {
            self.stats.records.incr();
            Some(Instant::now())
        } else {
            None
        };
        let kept = self.cfg.filter.keep_row(&self.input_names, row);
        if let Some(t0) = clock {
            self.stats.filter_ns.record(ns_since(t0));
            clock = Some(Instant::now());
        }
        if !kept {
            return Vec::new();
        }
        let emitted = self.transform.push_into(timestamp, row, &mut self.feat);
        if let Some(t0) = clock {
            self.stats.transform_ns.record(ns_since(t0));
            clock = Some(Instant::now());
        }
        let Some(t) = emitted else {
            return Vec::new();
        };
        if on {
            self.stats.emissions.incr();
            self.stats.emissions_since_refit += 1;
        }
        let alarms = match self.phase {
            Phase::FillingReference => {
                if self.profile.push(&self.feat) {
                    self.detector.fit(&self.profile);
                    self.phase = Phase::Holdout(0);
                    if on {
                        self.stats.refits.incr();
                        self.stats.emissions_since_refit = 0;
                    }
                    if obs::events_enabled() {
                        obs::emit(
                            &obs::Event::new("pipeline.refit")
                                .field("timestamp", t)
                                .field("profile_len", self.profile.len()),
                        );
                    }
                }
                Vec::new()
            }
            Phase::Holdout(seen) => {
                let scores = self.detector.score(&self.feat);
                if on {
                    self.stats.observe_scores(&scores);
                }
                self.threshold.observe(&scores);
                let seen = seen + 1;
                if seen >= self.cfg.holdout {
                    self.threshold.fit();
                    self.phase = Phase::Detecting;
                    if on {
                        self.observe_retune();
                    }
                } else {
                    self.phase = Phase::Holdout(seen);
                }
                Vec::new()
            }
            Phase::Detecting => {
                let scores = self.detector.score(&self.feat);
                if on {
                    self.stats.observe_scores(&scores);
                }
                let violations: Vec<usize> = if self.detector.uses_constant_threshold() {
                    scores
                        .iter()
                        .enumerate()
                        .filter(|(_, &s)| s.is_finite() && s > self.cfg.constant_threshold)
                        .map(|(i, _)| i)
                        .collect()
                } else {
                    self.threshold.violations(&scores)
                };
                violations
                    .into_iter()
                    .map(|c| Alarm {
                        timestamp: t,
                        channel: c,
                        channel_name: self.channel_names[c].clone(),
                        score: scores[c],
                        threshold: if self.detector.uses_constant_threshold() {
                            self.cfg.constant_threshold
                        } else {
                            self.threshold.thresholds()[c]
                        },
                    })
                    .collect()
            }
        };
        if let Some(t0) = clock {
            self.stats.score_ns.record(ns_since(t0));
        }
        if !alarms.is_empty() {
            let latency_ns = arrival.map(ns_since);
            if on {
                self.stats.alarms.add(alarms.len() as u64);
                if let Some(l) = latency_ns {
                    // One latency sample per alarm, so the histogram count
                    // stays aligned with the `pipeline.alarms` counter.
                    for _ in 0..alarms.len() {
                        self.stats.alarm_latency_ns.record(l);
                    }
                }
            }
            if events_on {
                for a in &alarms {
                    let mut e = obs::Event::new("pipeline.alarm")
                        .field("timestamp", a.timestamp)
                        .field("channel", a.channel)
                        .field("feature", a.channel_name.as_str())
                        .field("score", a.score)
                        .field("threshold", a.threshold);
                    if let Some(l) = latency_ns {
                        e = e.field("latency_ns", l);
                    }
                    obs::emit(&e);
                }
            }
        }
        alarms
    }
}

// The pipeline's mutable state, in processing order: phase, transform
// buffers, reference profile, tuned threshold, detector streaming state,
// plus the model-quality telemetry needed for gauge continuity. The fitted
// detector model itself is NOT serialised — `fit` is deterministic given
// the profile and seeded params, so `read_state` re-fits from the restored
// profile (the profile data is retained after fitting exactly so this is
// possible) and then restores the detector's evolved streaming state.
impl Snapshot for StreamingPipeline {
    fn write_state(&self, w: &mut SnapWriter) {
        match self.phase {
            Phase::FillingReference => w.put_u8(0),
            Phase::Holdout(seen) => {
                w.put_u8(1);
                w.put_usize(seen);
            }
            Phase::Detecting => w.put_u8(2),
        }
        self.transform.write_state(w);
        self.profile.write_state(w);
        self.threshold.write_state(w);
        self.detector.write_state(w);
        w.put_u64(self.stats.emissions_since_refit);
        w.put_opt_f64(self.stats.last_threshold_mean);
    }
}

impl Restore for StreamingPipeline {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let phase = match r.get_u8()? {
            0 => Phase::FillingReference,
            1 => Phase::Holdout(r.get_usize()?),
            2 => Phase::Detecting,
            _ => return Err(SnapError::Corrupt("pipeline phase tag out of range")),
        };
        self.transform.read_state(r)?;
        self.profile.read_state(r)?;
        self.threshold.read_state(r)?;
        if phase != Phase::FillingReference {
            // Past the filling phase the profile must be complete, or the
            // deterministic re-fit below could panic on a short profile.
            if !self.profile.is_full() {
                return Err(SnapError::Corrupt("pipeline phase past an unfilled profile"));
            }
            self.detector.fit(&self.profile);
        }
        self.detector.read_state(r)?;
        self.phase = phase;
        self.stats.emissions_since_refit = r.get_u64()?;
        self.stats.last_threshold_mean = r.get_opt_f64()?;
        Ok(())
    }
}

/// Streams one vehicle's full history through a fresh
/// [`StreamingPipeline`], interleaving maintenance events at their
/// recorded times — the measurement pass behind `alarm.latency_ns`: the
/// batch runner scores retrospectively and never raises runtime alarms,
/// so `evaluate --metrics` and `bench_baseline` replay the stream through
/// the online path to observe real emission latencies. Returns every
/// alarm raised.
pub fn replay_stream(
    frame: &Frame,
    maintenance: &[(i64, bool)],
    cfg: PipelineConfig,
) -> Vec<Alarm> {
    let _span = obs::span("replay_stream");
    let mut pipeline = StreamingPipeline::new(frame.names(), cfg);
    let mut events = maintenance.iter().peekable();
    let mut row = Vec::with_capacity(frame.width());
    let mut alarms = Vec::new();
    for i in 0..frame.len() {
        let t = frame.timestamps()[i];
        while let Some(&&(mt, is_repair)) = events.peek() {
            if mt > t {
                break;
            }
            events.next();
            pipeline.process_event(is_repair);
        }
        frame.row_into(i, &mut row);
        alarms.extend(pipeline.process_record(t, &row));
    }
    alarms
}

/// Replays a whole fleet per-vehicle through [`replay_stream`], one fresh
/// pipeline per vehicle, in parallel. Returns one alarm vector per input
/// vehicle, in input order.
///
/// This is the equivalence oracle for the sharded ingest engine: an
/// interleaved fleet stream is correct exactly when the engine's
/// per-vehicle alarms match this sorted single-vehicle replay. Each entry
/// pairs the vehicle's frame with its maintenance log as `(timestamp,
/// is_repair)` tuples sorted ascending.
pub fn replay_interleaved(
    vehicles: &[(Frame, Vec<(i64, bool)>)],
    cfg: &PipelineConfig,
) -> Vec<Vec<Alarm>> {
    let _span = obs::span("replay_interleaved");
    crate::par::par_map(vehicles, |_, (frame, maintenance)| {
        replay_stream(frame, maintenance, cfg.clone())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use navarchos_tsframe::FilterSpec;

    /// A tiny two-signal pipeline: correlation transform + closest pair.
    fn tiny_pipeline() -> StreamingPipeline {
        let cfg = PipelineConfig {
            transform: TransformKind::Correlation,
            window: 8,
            stride: 2,
            detector: DetectorKind::ClosestPair,
            detector_params: DetectorParams::default(),
            profile_length: 12,
            holdout: 6,
            threshold_factor: 4.0,
            constant_threshold: 0.5,
            reset_policy: ResetPolicy::OnServiceOrRepair,
            filter: FilterSpec::default(),
            corr_floors: None,
        };
        StreamingPipeline::new(&["a", "b"], cfg)
    }

    /// Feeds `n` correlated records (b tracks a) starting at time `t0`.
    fn feed_healthy(p: &mut StreamingPipeline, t0: i64, n: usize) -> Vec<Alarm> {
        let mut alarms = Vec::new();
        for i in 0..n {
            let t = t0 + i as i64 * 60;
            let a = (i as f64 * 0.7).sin() * 10.0 + 20.0;
            alarms.extend(p.process_record(t, &[a, 2.0 * a + 1.0]));
        }
        alarms
    }

    #[test]
    fn phases_progress_and_healthy_data_is_quiet() {
        let mut p = tiny_pipeline();
        assert_eq!(p.phase_name(), "filling-reference");
        let alarms = feed_healthy(&mut p, 0, 200);
        assert_eq!(p.phase_name(), "detecting");
        assert!(alarms.is_empty(), "healthy stream raised {alarms:?}");
    }

    #[test]
    fn relationship_flip_raises_attributed_alarm() {
        let mut p = tiny_pipeline();
        feed_healthy(&mut p, 0, 200);
        // Flip the relationship: b now anti-tracks a.
        let mut alarms = Vec::new();
        for i in 0..60 {
            let t = 200 * 60 + i as i64 * 60;
            let a = (i as f64 * 0.7).sin() * 10.0 + 20.0;
            alarms.extend(p.process_record(t, &[a, -2.0 * a + 90.0]));
        }
        assert!(!alarms.is_empty(), "flip not detected");
        assert_eq!(alarms[0].channel_name, "a~b");
        assert!(alarms[0].score > alarms[0].threshold);
    }

    #[test]
    fn maintenance_event_resets_reference() {
        let mut p = tiny_pipeline();
        feed_healthy(&mut p, 0, 200);
        assert_eq!(p.phase_name(), "detecting");
        p.process_event(false); // service
        assert_eq!(p.phase_name(), "filling-reference");
        // Refills and returns to detection.
        feed_healthy(&mut p, 200 * 60, 200);
        assert_eq!(p.phase_name(), "detecting");
    }

    #[test]
    fn repair_only_policy_ignores_services() {
        let mut cfgp = tiny_pipeline();
        cfgp.cfg.reset_policy = ResetPolicy::OnRepairOnly;
        feed_healthy(&mut cfgp, 0, 200);
        cfgp.process_event(false);
        assert_eq!(cfgp.phase_name(), "detecting", "service ignored");
        cfgp.process_event(true);
        assert_eq!(cfgp.phase_name(), "filling-reference", "repair resets");
    }

    #[test]
    fn grand_uses_constant_threshold_in_streaming() {
        use crate::detectors::GrandNcm;
        let cfg = PipelineConfig {
            transform: TransformKind::Raw,
            window: 1,
            stride: 1,
            detector: DetectorKind::Grand(GrandNcm::Knn),
            detector_params: DetectorParams { grand_k: 3, ..Default::default() },
            profile_length: 40,
            holdout: 10,
            threshold_factor: 3.0,
            constant_threshold: 0.6,
            reset_policy: ResetPolicy::OnServiceOrRepair,
            filter: FilterSpec::default(),
            corr_floors: None,
        };
        let mut p = StreamingPipeline::new(&["a", "b"], cfg);
        // Healthy 2-D cloud.
        for i in 0..80 {
            let x = (i % 7) as f64 * 0.1;
            let y = (i % 5) as f64 * 0.1;
            let alarms = p.process_record(i as i64 * 60, &[x, y]);
            assert!(alarms.is_empty(), "healthy phase quiet");
        }
        assert_eq!(p.phase_name(), "detecting");
        // Persistent far-out stream must saturate the martingale and cross
        // the constant threshold.
        let mut fired = false;
        for i in 80..200 {
            let alarms = p.process_record(i as i64 * 60, &[9.0, 9.0]);
            if !alarms.is_empty() {
                assert!(alarms[0].score > 0.6, "deviation beyond the constant threshold");
                assert_eq!(alarms[0].threshold, 0.6);
                fired = true;
                break;
            }
        }
        assert!(fired, "Grand never alarmed on a persistent anomaly");
    }

    /// Feeds a healthy stream then a flipped one through `cfg`'s pipeline
    /// shape, returning the alarms from the flipped phase.
    fn flip_alarms(p: &mut StreamingPipeline) -> Vec<Alarm> {
        feed_healthy(p, 0, 200);
        let mut alarms = Vec::new();
        for i in 0..60 {
            let t = 200 * 60 + i as i64 * 60;
            let a = (i as f64 * 0.7).sin() * 10.0 + 20.0;
            alarms.extend(p.process_record(t, &[a, -2.0 * a + 90.0]));
        }
        alarms
    }

    #[test]
    fn alarm_latency_histogram_records_when_metrics_on() {
        obs::set_metrics_enabled(true);
        let before = obs::histogram("alarm.latency_ns").snapshot().count;
        let mut p = tiny_pipeline();
        let alarms = flip_alarms(&mut p);
        assert!(!alarms.is_empty());
        p.flush_obs();
        let after = obs::histogram("alarm.latency_ns").snapshot().count;
        assert!(
            after >= before + alarms.len() as u64,
            "latency samples {before} -> {after} for {} alarms",
            alarms.len()
        );
        // Deliberately not restoring the global flag: concurrent tests in
        // this binary also enable metrics, and a mid-test disable from
        // here would race their histogram-count assertions.
    }

    #[test]
    fn score_sketch_and_quality_gauges_populate() {
        obs::set_metrics_enabled(true);
        let before = obs::sketch("pipeline.score").snapshot().count();
        let mut p = tiny_pipeline();
        feed_healthy(&mut p, 0, 200);
        p.flush_obs();
        let after = obs::sketch("pipeline.score").snapshot().count();
        assert!(after > before, "score sketch grew {before} -> {after}");
        // Healthy stream in detection: scores sit below the tuned bar, so
        // headroom reads high (shared gauge — another unscoped pipeline in
        // this binary may also have written a plausible value; range only).
        let headroom = obs::gauge("pipeline.threshold_headroom_pct").get();
        assert!(headroom <= 100, "headroom is a percentage, got {headroom}");
        // The reference fit recently; age counts emissions since then.
        assert!(obs::gauge("pipeline.profile_age_emissions").get() > 0);
    }

    #[test]
    fn scoped_pipeline_keeps_per_vehicle_sketch_and_gauges() {
        obs::set_metrics_enabled(true);
        let cfg = tiny_pipeline().cfg;
        let mut p = StreamingPipeline::new_scoped(&["a", "b"], cfg, Some("v99"));
        feed_healthy(&mut p, 0, 200);
        p.flush_obs();
        let scoped = obs::sketch("pipeline.v99.score").snapshot();
        assert!(!scoped.is_empty(), "scoped sketch populated");
        assert!(obs::gauge("pipeline.v99.profile_age_emissions").get() > 0);
        // Scoped scores also fold into the fleet sketch.
        assert!(obs::sketch("pipeline.score").snapshot().count() >= scoped.count());
    }

    #[test]
    fn replay_stream_matches_streaming_pipeline() {
        // Same records fed directly and via replay must raise identical
        // alarms (replay is just the loop, not a different pipeline).
        let mut frame = Frame::new(&["a", "b"]);
        for i in 0..260 {
            let a = (i as f64 * 0.7).sin() * 10.0 + 20.0;
            let b = if i < 200 { 2.0 * a + 1.0 } else { -2.0 * a + 90.0 };
            frame.push_row(i as i64 * 60, &[a, b]);
        }
        let mut direct = tiny_pipeline();
        let mut expected = Vec::new();
        for i in 0..frame.len() {
            let mut row = Vec::new();
            frame.row_into(i, &mut row);
            expected.extend(direct.process_record(frame.timestamps()[i], &row));
        }
        let cfg = tiny_pipeline().cfg;
        let replayed = replay_stream(&frame, &[], cfg);
        assert_eq!(replayed, expected);
        assert!(!replayed.is_empty(), "flip must alarm through replay too");
    }

    /// Checkpoint at cut point `k` of a 260-record flip stream, restore
    /// into a fresh pipeline, feed the remainder: alarms must be
    /// byte-identical to the uninterrupted run (scores compared by bits,
    /// not approximately).
    #[test]
    fn checkpoint_restore_resumes_byte_identical() {
        let records: Vec<(i64, [f64; 2])> = (0..260)
            .map(|i| {
                let a = (i as f64 * 0.7).sin() * 10.0 + 20.0;
                let b = if i < 200 { 2.0 * a + 1.0 } else { -2.0 * a + 90.0 };
                (i as i64 * 60, [a, b])
            })
            .collect();
        let mut oracle = tiny_pipeline();
        let mut expected = Vec::new();
        for &(t, row) in &records {
            expected.extend(oracle.process_record(t, &row));
        }
        assert!(!expected.is_empty(), "the flip must alarm");
        for k in [3usize, 47, 120, 199, 205, 259] {
            let mut first = tiny_pipeline();
            for &(t, row) in &records[..k] {
                first.process_record(t, &row);
            }
            let bytes = first.state_bytes();
            let mut resumed = tiny_pipeline();
            {
                let mut r = navarchos_stat::SnapReader::new(&bytes);
                Restore::read_state(&mut resumed, &mut r).unwrap();
                r.finish().unwrap();
            }
            let mut got = Vec::new();
            let mut baseline = tiny_pipeline();
            for &(t, row) in &records[..k] {
                baseline.process_record(t, &row);
            }
            for &(t, row) in &records[k..] {
                got.extend(resumed.process_record(t, &row));
                baseline.process_record(t, &row);
            }
            let tail: Vec<&Alarm> =
                expected.iter().filter(|a| a.timestamp >= k as i64 * 60).collect();
            assert_eq!(got.len(), tail.len(), "cut at {k}: alarm count");
            for (g, e) in got.iter().zip(&tail) {
                assert_eq!(g.timestamp, e.timestamp, "cut at {k}");
                assert_eq!(g.channel, e.channel, "cut at {k}");
                assert_eq!(g.score.to_bits(), e.score.to_bits(), "cut at {k}: score bits");
                assert_eq!(
                    g.threshold.to_bits(),
                    e.threshold.to_bits(),
                    "cut at {k}: threshold bits"
                );
            }
            // snapshot → restore → snapshot is byte-stable.
            assert_eq!(bytes, {
                let mut again = tiny_pipeline();
                let mut r = navarchos_stat::SnapReader::new(&bytes);
                Restore::read_state(&mut again, &mut r).unwrap();
                again.state_bytes()
            });
        }
    }

    /// Truncating the snapshot at every byte boundary must error, never
    /// panic (L11 panic-freedom).
    #[test]
    fn truncated_pipeline_snapshot_errors() {
        let mut p = tiny_pipeline();
        feed_healthy(&mut p, 0, 120);
        let bytes = p.state_bytes();
        for cut in 0..bytes.len() {
            let mut target = tiny_pipeline();
            let mut r = navarchos_stat::SnapReader::new(&bytes[..cut]);
            assert!(
                Restore::read_state(&mut target, &mut r).is_err() || !r.is_at_end(),
                "cut at {cut} silently succeeded"
            );
        }
    }

    #[test]
    fn paper_default_configs_build() {
        for t in TransformKind::all() {
            for d in [DetectorKind::ClosestPair, DetectorKind::Xgboost] {
                let cfg = PipelineConfig::paper_default(t, d);
                let p = StreamingPipeline::new(
                    &["rpm", "speed", "coolantTemp", "intakeTemp", "mapIntake", "mafAirFlowRate"],
                    cfg,
                );
                assert_eq!(p.phase_name(), "filling-reference");
            }
        }
    }
}

//! Batch scorer used by the experiments: runs the framework over one
//! vehicle's full history and records every score with its timestamp and
//! segment structure, so that threshold sweeps (the paper evaluates
//! "multiple factors") never require re-scoring.

use std::time::Instant;

use crate::detectors::{DetectorKind, DetectorParams};
use crate::reference::{ReferenceProfile, ResetPolicy};
use crate::threshold::batch_thresholds;
use navarchos_obs as obs;
use navarchos_tsframe::{FilterSpec, Frame, TransformKind};

/// Parameters of a batch run (mirrors
/// [`crate::pipeline::PipelineConfig`], minus the threshold which is swept
/// afterwards).
#[derive(Debug, Clone)]
pub struct RunnerParams {
    /// Step-1 transformation.
    pub transform: TransformKind,
    /// Window length (records) for windowed transformations.
    pub window: usize,
    /// Emission stride (records).
    pub stride: usize,
    /// Step-3 detector.
    pub detector: DetectorKind,
    /// Detector tuning knobs.
    pub detector_params: DetectorParams,
    /// Reference length in transformed samples.
    pub profile_length: usize,
    /// Healthy holdout samples per segment.
    pub holdout: usize,
    /// Reference reset policy.
    pub reset_policy: ResetPolicy,
    /// Record filter.
    pub filter: FilterSpec,
    /// Dynamics floors for the correlation transformation (None = no
    /// gating).
    pub corr_floors: Option<Vec<f64>>,
    /// Aggregate per-sample scores into per-day channel upper quantiles
    /// (q = 0.8) before thresholding. A developing fault perturbs a large
    /// fraction of each day's windows (intermittent symptoms recur all
    /// day), lifting the day's upper quantile; healthy statistical churn
    /// hits isolated windows (a few percent), which an 80th percentile
    /// ignores. Daily aggregation therefore separates persistent
    /// degradation from noise far better than per-sample scores.
    pub daily_median: bool,
    /// Holdout length in days when `daily_median` is on.
    pub holdout_days: usize,
}

impl RunnerParams {
    /// Paper-default parameters for a transformation/detector pair (same
    /// scaling as [`crate::pipeline::PipelineConfig::paper_default`]).
    pub fn paper_default(transform: TransformKind, detector: DetectorKind) -> Self {
        let (window, stride, profile_length, holdout) = match transform {
            TransformKind::Raw | TransformKind::Delta => (1, 1, 1200, 1500),
            TransformKind::Mean
            | TransformKind::Correlation
            | TransformKind::Spectral
            | TransformKind::Histogram => (45, 3, 80, 50),
        };
        RunnerParams {
            transform,
            window,
            stride,
            detector,
            detector_params: DetectorParams::default(),
            profile_length,
            holdout,
            reset_policy: ResetPolicy::OnServiceOrRepair,
            filter: FilterSpec::navarchos_default(),
            corr_floors: None,
            daily_median: true,
            holdout_days: 8,
        }
    }
}

/// Builds the step-1 transformation with the correlation dynamics floors
/// applied when configured.
pub(crate) fn build_transform(
    kind: TransformKind,
    input_names: &[String],
    window: usize,
    stride: usize,
    corr_floors: &Option<Vec<f64>>,
) -> Box<dyn navarchos_tsframe::Transform> {
    match (kind, corr_floors) {
        (TransformKind::Correlation, Some(floors)) if floors.len() == input_names.len() => {
            Box::new(
                navarchos_tsframe::CorrelationTransform::new(input_names, window, stride)
                    .with_min_std(floors.clone())
                    .with_differencing(),
            )
        }
        (TransformKind::Correlation, None) => Box::new(
            navarchos_tsframe::CorrelationTransform::new(input_names, window, stride)
                .with_differencing(),
        ),
        _ => kind.build(input_names, window, stride),
    }
}

/// One detection segment: the scored samples between two reference
/// rebuilds.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Index of the first scored sample of the segment (the start of the
    /// threshold holdout).
    pub start: usize,
    /// Index one past the last holdout sample; detection alarms only from
    /// here on.
    pub detect_from: usize,
    /// Index one past the segment's last sample.
    pub end: usize,
}

/// Per-segment threshold context: std floors derived from the reference
/// profile's per-channel value spread (empty when not applicable).
#[derive(Debug, Clone, Default)]
pub struct SegmentContext {
    /// Std floor per score channel (5 % of the reference value spread for
    /// per-feature detectors; empty otherwise).
    pub std_floors: Vec<f64>,
}

/// Full score traces of one vehicle.
#[derive(Debug, Clone)]
pub struct VehicleScores {
    /// Timestamp of each scored sample.
    pub timestamps: Vec<i64>,
    /// Per-sample score vectors (`n_samples × n_channels`, row-major).
    pub scores: Vec<f64>,
    /// Channels per sample.
    pub n_channels: usize,
    /// Channel names.
    pub channel_names: Vec<String>,
    /// Segment structure.
    pub segments: Vec<Segment>,
    /// Per-segment threshold context, aligned with `segments`.
    pub contexts: Vec<SegmentContext>,
    /// Whether thresholds are constant (Grand) rather than self-tuned.
    pub constant_threshold: bool,
}

impl VehicleScores {
    /// Score of sample `i` on channel `c`.
    pub fn score(&self, i: usize, c: usize) -> f64 {
        self.scores[i * self.n_channels + c]
    }

    /// Thresholds of one segment for a given parameter.
    fn thresholds_for(&self, seg_idx: usize, threshold_param: f64) -> Vec<f64> {
        let seg = &self.segments[seg_idx];
        if self.constant_threshold {
            return vec![threshold_param; self.n_channels];
        }
        let holdout: Vec<Vec<f64>> = (0..self.n_channels)
            .map(|c| (seg.start..seg.detect_from).map(|i| self.score(i, c)).collect())
            .collect();
        let floors = self.contexts.get(seg_idx).map(|c| c.std_floors.as_slice());
        let floors = floors.filter(|f| f.len() == self.n_channels);
        batch_thresholds(&holdout, threshold_param, floors)
    }

    /// Alarm timestamps for a threshold parameter: the self-tuning factor
    /// for most detectors, the constant threshold for Grand. Each scored
    /// sample with any violating channel contributes one alarm timestamp.
    pub fn alarms(&self, threshold_param: f64) -> Vec<i64> {
        let mut out = Vec::new();
        for (si, seg) in self.segments.iter().enumerate() {
            let thresholds = self.thresholds_for(si, threshold_param);
            for i in seg.detect_from..seg.end {
                let violated = (0..self.n_channels).any(|c| {
                    let s = self.score(i, c);
                    s.is_finite() && s > thresholds[c]
                });
                if violated {
                    out.push(self.timestamps[i]);
                }
            }
        }
        out
    }

    /// Per-channel alarm attribution for a threshold parameter:
    /// `(timestamp, channel)` pairs (used by the Figure 8 experiment).
    pub fn attributed_alarms(&self, threshold_param: f64) -> Vec<(i64, usize)> {
        let mut out = Vec::new();
        for (si, seg) in self.segments.iter().enumerate() {
            let thresholds = self.thresholds_for(si, threshold_param);
            for i in seg.detect_from..seg.end {
                for (c, &th) in thresholds.iter().enumerate() {
                    let s = self.score(i, c);
                    if s.is_finite() && s > th {
                        out.push((self.timestamps[i], c));
                    }
                }
            }
        }
        out
    }

    /// Alarm *instances* under the evaluation protocol's grouping rules:
    /// channel-attributed violations grouped by `eval.dedup_seconds`,
    /// requiring `eval.min_instance_violations` violations on at least
    /// `min(eval.min_distinct_channels, n_channels)` distinct channels.
    pub fn alarm_instances(
        &self,
        threshold_param: f64,
        eval: &crate::evaluation::EvalParams,
    ) -> Vec<i64> {
        let events = self.attributed_alarms(threshold_param);
        // Cap the persistence requirement by what the trace can physically
        // deliver: daily-aggregated single-channel detectors emit at most
        // one violation per channel per day.
        let days = (eval.dedup_seconds / 86_400).max(1) as usize;
        let max_possible = self.n_channels * days;
        crate::evaluation::alarm_instances(
            &events,
            eval.dedup_seconds,
            eval.min_instance_violations.min(max_possible),
            eval.min_distinct_channels.min(self.n_channels),
        )
    }

    /// Per-segment thresholds for a given parameter (Figure 8 rendering).
    pub fn segment_thresholds(&self, threshold_param: f64) -> Vec<Vec<f64>> {
        (0..self.segments.len()).map(|si| self.thresholds_for(si, threshold_param)).collect()
    }
}

/// Runs the framework over one vehicle's telemetry, resetting the
/// reference at the recorded maintenance times in `reset_times`
/// (time-sorted; already filtered to the reset policy's event kinds by
/// the caller via [`ResetPolicy`] is *not* required — the policy in
/// `params` is applied here given `(time, is_repair)` pairs).
/// Per-vehicle observability accumulators: cheap locals bumped inside the
/// scoring loop (no atomics), flushed to the global registry once per
/// vehicle. With metrics disabled the loop pays one branch per record.
///
/// Stage clocks are read only on a 1-in-2^k sampled subset of records
/// (see [`obs::probe_sample_mask`]) — the dominant metrics-on cost was
/// three `Instant::now()` reads per record, not the accumulation — and
/// the sampled sums are scaled back to full-stream estimates at flush.
#[derive(Debug, Default, Clone, Copy)]
struct VehicleObs {
    records: u64,
    emissions: u64,
    resets: u64,
    refits: u64,
    /// Records whose stage clocks were actually read.
    sampled: u64,
    filter_ns: u64,
    transform_ns: u64,
    score_ns: u64,
}

impl VehicleObs {
    fn flush(self, wall_ns: u64) {
        obs::counter("runner.records").add(self.records);
        obs::counter("runner.emissions").add(self.emissions);
        obs::counter("runner.resets").add(self.resets);
        obs::counter("runner.refits").add(self.refits);
        // Scale the sampled stage sums up to the full record stream. The
        // sampling gate fires on a fixed record-count period, which is
        // independent of the filter/emission cadence, so the subset is an
        // unbiased estimator of the per-stage totals.
        let scale = if self.sampled > 0 { self.records as f64 / self.sampled as f64 } else { 0.0 };
        let scaled = |sum: u64| (sum as f64 * scale) as u64;
        obs::histogram("runner.vehicle_ns").record(wall_ns);
        obs::histogram("runner.stage.filter_ns").record(scaled(self.filter_ns));
        obs::histogram("runner.stage.transform_ns").record(scaled(self.transform_ns));
        obs::histogram("runner.stage.score_ns").record(scaled(self.score_ns));
    }
}

pub fn run_vehicle(
    frame: &Frame,
    maintenance: &[(i64, bool)],
    params: &RunnerParams,
) -> VehicleScores {
    let _span = obs::span("run_vehicle");
    let obs_on = obs::metrics_enabled();
    let started = obs_on.then(Instant::now);
    // Loaded once per vehicle: the power-of-two sampling gate for the
    // per-record stage clocks (mask 0 = every record).
    let probe_mask = obs::probe_sample_mask();
    let mut vobs = VehicleObs::default();
    let input_names: Vec<String> = frame.names().to_vec();
    let mut transform = build_transform(
        params.transform,
        &input_names,
        params.window,
        params.stride,
        &params.corr_floors,
    );
    let dim = transform.output_dim();
    let names = transform.output_names();
    let mut detector = params.detector.build(dim, &names, &params.detector_params);
    let n_channels = detector.n_channels();
    let channel_names = detector.channel_names();
    let constant_threshold = detector.uses_constant_threshold();

    let mut profile = ReferenceProfile::new(dim, params.profile_length);
    let mut timestamps: Vec<i64> = Vec::new();
    let mut scores: Vec<f64> = Vec::new();
    let mut segments: Vec<Segment> = Vec::new();
    let mut contexts: Vec<SegmentContext> = Vec::new();
    let mut pending_context = SegmentContext::default();
    // Currently open segment: (start, detect_from if holdout complete).
    let mut open: Option<(usize, Option<usize>)> = None;
    let mut fitted = false;

    let mut reset_iter = maintenance.iter().peekable();
    let mut row_buf = Vec::with_capacity(frame.width());
    // Reused output buffer for the transform's allocation-free fast path.
    let mut feat = vec![0.0; dim];

    let close_segment = |open: &mut Option<(usize, Option<usize>)>,
                         segments: &mut Vec<Segment>,
                         contexts: &mut Vec<SegmentContext>,
                         context: &SegmentContext,
                         end: usize| {
        if let Some((start, detect_from)) = open.take() {
            let detect_from = detect_from.unwrap_or(end);
            if end > detect_from {
                segments.push(Segment { start, detect_from, end });
                contexts.push(context.clone());
            }
        }
    };

    // Std floor per channel: 5 % of the reference profile's per-channel
    // value spread, applicable when score channels correspond one-to-one
    // to transformed features (Closest-pair, XGBoost).
    let spread_floors = |profile: &ReferenceProfile| -> Vec<f64> {
        if n_channels != profile.dim() {
            return Vec::new();
        }
        (0..profile.dim())
            .map(|c| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                for i in 0..profile.len() {
                    let v = profile.sample(i)[c];
                    if v.is_finite() {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                if hi > lo {
                    0.05 * (hi - lo)
                } else {
                    0.0
                }
            })
            .collect()
    };

    for i in 0..frame.len() {
        let t = frame.timestamps()[i];

        // Apply any maintenance events that occurred before this record.
        while let Some(&&(mt, is_repair)) = reset_iter.peek() {
            if mt > t {
                break;
            }
            reset_iter.next();
            if params.reset_policy.resets_on(is_repair) {
                close_segment(
                    &mut open,
                    &mut segments,
                    &mut contexts,
                    &pending_context,
                    timestamps.len(),
                );
                profile.clear();
                detector.reset();
                transform.reset();
                fitted = false;
                vobs.resets += 1;
                if obs::events_enabled() {
                    obs::emit(
                        &obs::Event::new("runner.reset")
                            .field("timestamp", mt)
                            .field("is_repair", is_repair),
                    );
                }
            }
        }

        let mut clock = if obs_on {
            vobs.records += 1;
            if vobs.records & probe_mask == 0 {
                vobs.sampled += 1;
                Some(Instant::now())
            } else {
                None
            }
        } else {
            None
        };
        frame.row_into(i, &mut row_buf);
        let kept = params.filter.keep_row(&input_names, &row_buf);
        if let Some(t0) = clock {
            vobs.filter_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(0);
            clock = Some(Instant::now());
        }
        if !kept {
            continue;
        }
        let emitted = transform.push_into(t, &row_buf, &mut feat);
        if let Some(t0) = clock {
            vobs.transform_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(0);
            clock = Some(Instant::now());
        }
        let Some(ts) = emitted else {
            continue;
        };
        vobs.emissions += 1;

        if !fitted {
            if profile.push(&feat) {
                detector.fit(&profile);
                pending_context = SegmentContext { std_floors: spread_floors(&profile) };
                fitted = true;
                open = Some((timestamps.len(), None));
                vobs.refits += 1;
            }
            continue;
        }

        // Score the sample and record it.
        let s = detector.score(&feat);
        if let Some(t0) = clock {
            vobs.score_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(0);
        }
        timestamps.push(ts);
        scores.extend_from_slice(&s);
        if let Some((start, detect_from @ None)) = &mut open {
            if timestamps.len() - *start >= params.holdout {
                *detect_from = Some(timestamps.len());
            }
        }
    }
    close_segment(&mut open, &mut segments, &mut contexts, &pending_context, timestamps.len());

    if obs_on {
        let wall_ns = started.map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(0));
        vobs.flush(wall_ns.unwrap_or(0));
    }
    if obs::events_enabled() {
        obs::emit(
            &obs::Event::new("runner.vehicle")
                .field("records", vobs.records)
                .field("emissions", vobs.emissions)
                .field("resets", vobs.resets)
                .field("refits", vobs.refits)
                .field("segments", segments.len()),
        );
    }

    let vs = VehicleScores {
        timestamps,
        scores,
        n_channels,
        channel_names,
        segments,
        contexts,
        constant_threshold,
    };
    if params.daily_median {
        to_daily_median(vs, params.holdout_days)
    } else {
        vs
    }
}

/// Compresses per-sample score traces into per-day channel medians,
/// rebuilding the segment structure so that each segment's holdout covers
/// its first `holdout_days` aggregated days.
fn to_daily_median(vs: VehicleScores, holdout_days: usize) -> VehicleScores {
    const DAY: i64 = 86_400;
    let mut timestamps = Vec::new();
    let mut scores = Vec::new();
    let mut segments = Vec::new();
    let mut contexts = Vec::new();

    let mut column = Vec::new();
    for (si, seg) in vs.segments.iter().enumerate() {
        let seg_start_out = timestamps.len();
        let mut i = seg.start;
        while i < seg.end {
            let day = vs.timestamps[i].div_euclid(DAY);
            let mut j = i;
            while j < seg.end && vs.timestamps[j].div_euclid(DAY) == day {
                j += 1;
            }
            timestamps.push(day * DAY);
            for c in 0..vs.n_channels {
                column.clear();
                column.extend((i..j).map(|k| vs.score(k, c)).filter(|v| v.is_finite()));
                column.sort_by(|a, b| a.total_cmp(b));
                scores.push(navarchos_stat::descriptive::quantile_sorted(&column, 0.85));
            }
            i = j;
        }
        let n_days = timestamps.len() - seg_start_out;
        if n_days > holdout_days {
            segments.push(Segment {
                start: seg_start_out,
                detect_from: seg_start_out + holdout_days,
                end: timestamps.len(),
            });
            contexts.push(vs.contexts.get(si).cloned().unwrap_or_default());
        }
    }

    VehicleScores {
        timestamps,
        scores,
        n_channels: vs.n_channels,
        channel_names: vs.channel_names,
        segments,
        contexts,
        constant_threshold: vs.constant_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic two-signal frame: healthy (b = 2a) for the first
    /// `flip_at` minutes, then the relationship flips.
    fn synthetic_frame(n: usize, flip_at: usize) -> Frame {
        let mut f = Frame::new(&["a", "b"]);
        for i in 0..n {
            let a = (i as f64 * 0.7).sin() * 10.0 + 20.0;
            let b = if i < flip_at { 2.0 * a } else { -2.0 * a + 80.0 };
            f.push_row(i as i64 * 60, &[a, b]);
        }
        f
    }

    fn quick_params() -> RunnerParams {
        RunnerParams {
            transform: TransformKind::Correlation,
            window: 8,
            stride: 2,
            detector: DetectorKind::ClosestPair,
            detector_params: DetectorParams::default(),
            profile_length: 15,
            holdout: 10,
            reset_policy: ResetPolicy::OnServiceOrRepair,
            filter: FilterSpec::default(),
            corr_floors: None,
            daily_median: false,
            holdout_days: 8,
        }
    }

    #[test]
    fn detects_flip_and_not_healthy() {
        let frame = synthetic_frame(600, 400);
        let vs = run_vehicle(&frame, &[], &quick_params());
        assert_eq!(vs.segments.len(), 1);
        assert_eq!(vs.n_channels, 1);
        let alarms = vs.alarms(4.0);
        assert!(!alarms.is_empty(), "flip missed");
        // All alarms after the flip time.
        let flip_t = 400 * 60;
        assert!(alarms.iter().all(|&t| t >= flip_t - 8 * 60), "false alarms: {alarms:?}");
    }

    #[test]
    fn maintenance_splits_segments() {
        let frame = synthetic_frame(800, 10_000); // all healthy
        let maintenance = vec![(400 * 60, false)];
        let vs = run_vehicle(&frame, &maintenance, &quick_params());
        assert_eq!(vs.segments.len(), 2, "service creates a second segment");
        // Segments do not overlap and are ordered.
        assert!(vs.segments[0].end <= vs.segments[1].start);
    }

    #[test]
    fn repair_only_policy_keeps_one_segment() {
        let frame = synthetic_frame(800, 10_000);
        let maintenance = vec![(400 * 60, false)]; // a service
        let mut p = quick_params();
        p.reset_policy = ResetPolicy::OnRepairOnly;
        let vs = run_vehicle(&frame, &maintenance, &p);
        assert_eq!(vs.segments.len(), 1, "service ignored under OnRepairOnly");
    }

    #[test]
    fn higher_factor_fewer_alarms() {
        let frame = synthetic_frame(600, 350);
        let vs = run_vehicle(&frame, &[], &quick_params());
        let low = vs.alarms(1.0).len();
        let high = vs.alarms(8.0).len();
        assert!(low >= high, "alarms must shrink with the factor: {low} vs {high}");
    }

    #[test]
    fn attributed_alarms_name_the_channel() {
        let frame = synthetic_frame(600, 350);
        let vs = run_vehicle(&frame, &[], &quick_params());
        let attr = vs.attributed_alarms(4.0);
        assert!(!attr.is_empty());
        assert!(attr.iter().all(|&(_, c)| c == 0));
        assert_eq!(vs.channel_names[0], "a~b");
    }

    #[test]
    fn daily_aggregation_compresses_to_days() {
        let frame = synthetic_frame(3000, 10_000); // ~2 days of minutes
        let mut p = quick_params();
        p.daily_median = true;
        p.holdout_days = 1;
        let vs = run_vehicle(&frame, &[], &p);
        // All timestamps are midnight-aligned day starts.
        assert!(vs.timestamps.iter().all(|t| t % 86_400 == 0));
        // Strictly increasing (one sample per day).
        assert!(vs.timestamps.windows(2).all(|w| w[0] < w[1]));
        // Daily values summarise per-sample scores: finite, non-negative.
        for i in 0..vs.timestamps.len() {
            let s = vs.score(i, 0);
            assert!(s.is_finite() && s >= 0.0);
        }
    }

    #[test]
    fn daily_aggregation_drops_short_segments() {
        let frame = synthetic_frame(600, 10_000);
        let mut p = quick_params();
        p.daily_median = true;
        p.holdout_days = 30; // longer than the data
        let vs = run_vehicle(&frame, &[], &p);
        assert!(vs.segments.is_empty(), "segments shorter than the holdout are dropped");
    }

    #[test]
    fn too_short_history_yields_no_segments() {
        let frame = synthetic_frame(30, 10_000);
        let vs = run_vehicle(&frame, &[], &quick_params());
        assert!(vs.segments.is_empty());
        assert!(vs.alarms(2.0).is_empty());
    }
}

//! The paper's evaluation protocol (Section 4): a *prediction horizon*
//! (PH) ending at each repair event; one or more alarms inside a PH count
//! as a single true positive, every alarm outside any PH counts as a
//! false positive, and the headline metric is F0.5 (precision-weighted).

use crate::runner::VehicleScores;

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvalParams {
    /// Prediction-horizon length in seconds (the paper uses 15 and 30
    /// days).
    pub ph_seconds: i64,
    /// Alarms closer than this are merged into one alarm instance before
    /// counting (one alarm per day by default — per-minute scoring would
    /// otherwise turn one bad afternoon into hundreds of false positives).
    pub dedup_seconds: i64,
    /// Minimum threshold violations within one merged group for it to
    /// count as an alarm instance. Genuine degradation violates
    /// persistently (many windows per day); isolated single-sample tail
    /// events do not constitute an actionable alarm.
    pub min_instance_violations: usize,
    /// Minimum number of *distinct* score channels violating within one
    /// group (capped at the detector's channel count, so single-channel
    /// detectors are unaffected). A real component fault perturbs several
    /// signal relationships at once; a single channel's statistical tail
    /// does not.
    pub min_distinct_channels: usize,
}

impl EvalParams {
    /// PH of `days` days, tuned for daily-median score traces: an alarm
    /// instance is at least two violating days within a three-day span,
    /// on at least two distinct channels.
    pub fn days(days: i64) -> Self {
        EvalParams {
            ph_seconds: days * 86_400,
            dedup_seconds: 3 * 86_400,
            min_instance_violations: 6,
            min_distinct_channels: 2,
        }
    }
}

/// Confusion counts under the PH protocol.
///
/// ```
/// use navarchos_core::EvalCounts;
///
/// // 4 failures detected, 1 false alarm, 5 failures missed — the paper's
/// // headline shape.
/// let counts = EvalCounts { tp: 4, fp: 1, fn_: 5 };
/// assert!((counts.precision() - 0.8).abs() < 1e-12);
/// assert!(counts.f05() > counts.f1(), "F0.5 rewards precision");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalCounts {
    /// Failures with at least one alarm inside their PH.
    pub tp: usize,
    /// Alarm instances outside every PH.
    pub fp: usize,
    /// Failures with no alarm inside their PH.
    pub fn_: usize,
}

impl EvalCounts {
    /// Precision: TP / (TP + FP); 0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall: TP / (TP + FN); 0 when there were no failures.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Fβ score.
    pub fn f_beta(&self, beta: f64) -> f64 {
        let p = self.precision();
        let r = self.recall();
        let b2 = beta * beta;
        // p, r >= 0, so the denominator vanishes exactly when both are 0;
        // `> 0.0` also routes a NaN score to the defined-zero branch.
        let denom = b2 * p + r;
        if denom > 0.0 {
            (1.0 + b2) * p * r / denom
        } else {
            0.0
        }
    }

    /// F0.5 — the paper's headline metric (precision weighs more).
    pub fn f05(&self) -> f64 {
        self.f_beta(0.5)
    }

    /// F1.
    pub fn f1(&self) -> f64 {
        self.f_beta(1.0)
    }

    /// Merges counts from another vehicle.
    pub fn merge(&mut self, other: &EvalCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

/// Deduplicates sorted alarm timestamps: alarms within `window` seconds of
/// the group's first alarm are merged; groups with fewer than
/// `min_violations` members are dropped. Each surviving group is
/// represented by its first timestamp.
pub fn dedup_alarms(alarms: &[i64], window: i64, min_violations: usize) -> Vec<i64> {
    let events: Vec<(i64, usize)> = alarms.iter().map(|&t| (t, 0)).collect();
    alarm_instances(&events, window, min_violations, 1)
}

/// Groups channel-attributed violations `(timestamp, channel)` (sorted by
/// time) into alarm instances: a group spans `window` seconds from its
/// first violation and must contain at least `min_violations` violations
/// on at least `min_channels` distinct channels. Returns the start
/// timestamp of each qualifying group.
pub fn alarm_instances(
    events: &[(i64, usize)],
    window: i64,
    min_violations: usize,
    min_channels: usize,
) -> Vec<i64> {
    let mut out: Vec<i64> = Vec::new();
    let mut group_start: Option<i64> = None;
    let mut count = 0usize;
    let mut channels: Vec<usize> = Vec::new();
    let flush =
        |start: Option<i64>, count: usize, channels: &mut Vec<usize>, out: &mut Vec<i64>| {
            if let Some(s) = start {
                channels.sort_unstable();
                channels.dedup();
                if count >= min_violations && channels.len() >= min_channels {
                    out.push(s);
                }
            }
            channels.clear();
        };
    for &(t, c) in events {
        match group_start {
            Some(start) if t - start < window => {
                count += 1;
                channels.push(c);
            }
            _ => {
                flush(group_start, count, &mut channels, &mut out);
                group_start = Some(t);
                count = 1;
                channels.push(c);
            }
        }
    }
    flush(group_start, count, &mut channels, &mut out);
    out
}

/// Evaluates one vehicle's (sorted) alarms against its repair times.
/// `alarms` are raw violation timestamps; they are grouped into instances
/// with the persistence rule first (channel attribution not available on
/// this path — use [`evaluate_vehicle_instances`] with
/// pre-computed instances for the multi-channel rule).
pub fn evaluate_vehicle(alarms: &[i64], repairs: &[i64], params: EvalParams) -> EvalCounts {
    let alarms = dedup_alarms(alarms, params.dedup_seconds, params.min_instance_violations);
    let mut counts = EvalCounts::default();
    for &r in repairs {
        let hit = alarms.iter().any(|&a| a >= r - params.ph_seconds && a < r);
        if hit {
            counts.tp += 1;
        } else {
            counts.fn_ += 1;
        }
    }
    for &a in &alarms {
        let inside = repairs.iter().any(|&r| a >= r - params.ph_seconds && a < r);
        if !inside {
            counts.fp += 1;
        }
    }
    counts
}

/// Evaluates pre-grouped alarm instances against repair times (no further
/// deduplication).
pub fn evaluate_vehicle_instances(
    instances: &[i64],
    repairs: &[i64],
    params: EvalParams,
) -> EvalCounts {
    let mut counts = EvalCounts::default();
    for &r in repairs {
        let hit = instances.iter().any(|&a| a >= r - params.ph_seconds && a < r);
        if hit {
            counts.tp += 1;
        } else {
            counts.fn_ += 1;
        }
    }
    for &a in instances {
        let inside = repairs.iter().any(|&r| a >= r - params.ph_seconds && a < r);
        if !inside {
            counts.fp += 1;
        }
    }
    counts
}

/// Evaluates a whole fleet: `alarms[v]` and `repairs[v]` are per-vehicle,
/// index-aligned.
pub fn evaluate(alarms: &[Vec<i64>], repairs: &[Vec<i64>], params: EvalParams) -> EvalCounts {
    assert_eq!(alarms.len(), repairs.len(), "vehicle count mismatch");
    let mut total = EvalCounts::default();
    for (a, r) in alarms.iter().zip(repairs) {
        total.merge(&evaluate_vehicle(a, r, params));
    }
    total
}

/// Sweeps a threshold parameter over pre-computed score traces and returns
/// `(best_parameter, best_counts)` by F0.5 — the paper's "multiple
/// factors" protocol. `scores[v]` and `repairs[v]` are index-aligned per
/// vehicle.
pub fn sweep_best(
    scores: &[&VehicleScores],
    repairs: &[Vec<i64>],
    candidates: &[f64],
    params: EvalParams,
) -> (f64, EvalCounts) {
    assert_eq!(scores.len(), repairs.len());
    assert!(!candidates.is_empty());
    let mut best_param = candidates[0];
    let mut best_counts = EvalCounts::default();
    let mut best_f = -1.0;
    for &cand in candidates {
        let mut counts = EvalCounts::default();
        for (vs, reps) in scores.iter().zip(repairs) {
            let instances = vs.alarm_instances(cand, &params);
            counts.merge(&evaluate_vehicle_instances(&instances, reps, params));
        }
        let f = counts.f05();
        if f > best_f {
            best_f = f;
            best_param = cand;
            best_counts = counts;
        }
    }
    (best_param, best_counts)
}

/// Vehicle-level bootstrap confidence interval for F0.5: vehicles are
/// resampled with replacement `n_boot` times, and the (lo, hi) quantiles
/// of the resulting F0.5 distribution returned. With 9 failures on 26
/// vehicles, point estimates are fragile — the paper reports none of this
/// uncertainty; we surface it.
pub fn bootstrap_f05_ci(
    instances: &[Vec<i64>],
    repairs: &[Vec<i64>],
    params: EvalParams,
    n_boot: usize,
    seed: u64,
) -> (f64, f64) {
    assert_eq!(instances.len(), repairs.len(), "vehicle count mismatch");
    assert!(n_boot > 0);
    let n = instances.len();
    // Minimal xorshift generator: rand is not a dependency of this crate's
    // public evaluation layer, and statistical-grade randomness is not
    // required for resampling indices.
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut f05s = Vec::with_capacity(n_boot);
    for _ in 0..n_boot {
        let mut counts = EvalCounts::default();
        for _ in 0..n {
            let v = (next() % n as u64) as usize;
            counts.merge(&evaluate_vehicle_instances(&instances[v], &repairs[v], params));
        }
        f05s.push(counts.f05());
    }
    f05s.sort_by(|a, b| a.total_cmp(b));
    let q = |f: f64| f05s[((f05s.len() - 1) as f64 * f) as usize];
    (q(0.05), q(0.95))
}

/// The self-tuning factor grid used by the experiments.
pub fn factor_grid() -> Vec<f64> {
    vec![
        0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 24.0, 32.0, 48.0,
        64.0, 96.0,
    ]
}

/// The constant-threshold grid used for Grand.
pub fn constant_grid() -> Vec<f64> {
    vec![0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99]
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: i64 = 86_400;

    #[test]
    fn dedup_merges_close_alarms() {
        let alarms = vec![0, 100, 3600, DAY, DAY + 50, 3 * DAY];
        let d = dedup_alarms(&alarms, DAY, 1);
        assert_eq!(d, vec![0, DAY, 3 * DAY]);
        assert_eq!(dedup_alarms(&[], DAY, 1), Vec::<i64>::new());
    }

    #[test]
    fn dedup_persistence_filters_isolated_alarms() {
        // Group at day 0 has 3 violations, day 5 has 1: only the first
        // survives a min of 2.
        let alarms = vec![0, 100, 200, 5 * DAY];
        let d = dedup_alarms(&alarms, DAY, 2);
        assert_eq!(d, vec![0]);
        // A trailing group that qualifies is kept.
        let alarms = vec![0, 5 * DAY, 5 * DAY + 10, 5 * DAY + 20];
        let d = dedup_alarms(&alarms, DAY, 2);
        assert_eq!(d, vec![5 * DAY]);
    }

    fn lenient(days: i64) -> EvalParams {
        EvalParams { min_instance_violations: 1, ..EvalParams::days(days) }
    }

    #[test]
    fn alarm_inside_ph_is_tp() {
        let repairs = vec![30 * DAY];
        let alarms = vec![20 * DAY];
        let c = evaluate_vehicle(&alarms, &repairs, lenient(15));
        assert_eq!(c, EvalCounts { tp: 1, fp: 0, fn_: 0 });
    }

    #[test]
    fn alarm_outside_ph_is_fp_and_failure_missed() {
        let repairs = vec![30 * DAY];
        let alarms = vec![5 * DAY];
        let c = evaluate_vehicle(&alarms, &repairs, lenient(15));
        assert_eq!(c, EvalCounts { tp: 0, fp: 1, fn_: 1 });
    }

    #[test]
    fn multiple_alarms_in_ph_count_once() {
        let repairs = vec![30 * DAY];
        let alarms = vec![20 * DAY, 22 * DAY, 25 * DAY];
        let c = evaluate_vehicle(&alarms, &repairs, lenient(15));
        assert_eq!(c.tp, 1);
        assert_eq!(c.fp, 0);
    }

    #[test]
    fn alarm_at_repair_time_does_not_count() {
        // PH ends *with* the repair: an alarm at the repair instant is not
        // a prediction.
        let repairs = vec![30 * DAY];
        let alarms = vec![30 * DAY];
        let c = evaluate_vehicle(&alarms, &repairs, lenient(15));
        assert_eq!(c, EvalCounts { tp: 0, fp: 1, fn_: 1 });
    }

    #[test]
    fn metrics_known_values() {
        // The paper's headline row: precision 0.78, recall 0.44 → F0.5 ≈ 0.68.
        let c = EvalCounts { tp: 4, fp: 1, fn_: 5 };
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 4.0 / 9.0).abs() < 1e-12);
        let f05 = c.f05();
        assert!(f05 > c.f1(), "F0.5 favours precision here");
        // Degenerate counts.
        let z = EvalCounts::default();
        assert_eq!(z.precision(), 0.0);
        assert_eq!(z.recall(), 0.0);
        assert_eq!(z.f05(), 0.0);
    }

    #[test]
    fn fleet_evaluation_merges() {
        let repairs = vec![vec![30 * DAY], vec![]];
        let alarms = vec![vec![25 * DAY], vec![2 * DAY]];
        let c = evaluate(&alarms, &repairs, lenient(15));
        assert_eq!(c, EvalCounts { tp: 1, fp: 1, fn_: 0 });
    }

    #[test]
    fn f_beta_extremes() {
        let c = EvalCounts { tp: 1, fp: 0, fn_: 9 };
        // precision 1, recall 0.1.
        assert!(c.f_beta(0.25) > c.f_beta(4.0), "small beta weighs precision");
    }

    #[test]
    fn bootstrap_ci_brackets_point_estimate() {
        let params = EvalParams { min_instance_violations: 1, ..EvalParams::days(30) };
        // 6 vehicles: 3 clean detections, 3 with an FP each.
        let mut instances = Vec::new();
        let mut repairs = Vec::new();
        for v in 0..6i64 {
            if v < 3 {
                instances.push(vec![25 * DAY]);
                repairs.push(vec![30 * DAY]);
            } else {
                instances.push(vec![100 * DAY]);
                repairs.push(vec![]);
            }
        }
        let (lo, hi) = bootstrap_f05_ci(&instances, &repairs, params, 500, 7);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        assert!(lo <= hi);
        // Point estimate: tp 3, fp 3 → P 0.5, R 1 → F0.5 ≈ 0.556.
        let mut point = EvalCounts::default();
        for (i, r) in instances.iter().zip(&repairs) {
            point.merge(&evaluate_vehicle_instances(i, r, params));
        }
        assert!(
            lo <= point.f05() + 1e-9 && point.f05() <= hi + 1e-9,
            "[{lo},{hi}] vs {}",
            point.f05()
        );
    }

    #[test]
    fn bootstrap_ci_deterministic() {
        let params = EvalParams { min_instance_violations: 1, ..EvalParams::days(30) };
        let instances = vec![vec![25 * DAY], vec![]];
        let repairs = vec![vec![30 * DAY], vec![]];
        let a = bootstrap_f05_ci(&instances, &repairs, params, 100, 3);
        let b = bootstrap_f05_ci(&instances, &repairs, params, 100, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn grids_are_sorted_and_positive() {
        assert!(factor_grid().windows(2).all(|w| w[0] < w[1]));
        assert!(constant_grid().iter().all(|&c| (0.0..=1.0).contains(&c)));
    }
}

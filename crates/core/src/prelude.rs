//! One-line import surface for downstream users:
//!
//! ```
//! use navarchos_core::prelude::*;
//!
//! let cfg = PipelineConfig::paper_default(TransformKind::Correlation, DetectorKind::ClosestPair);
//! let pipeline = StreamingPipeline::new(&["a", "b", "c", "d", "e", "f"], cfg);
//! assert_eq!(pipeline.phase_name(), "filling-reference");
//! ```

pub use crate::aggregator::{AlarmAggregator, AlarmInstance};
pub use crate::detectors::{Detector, DetectorKind, DetectorParams, GrandNcm};
pub use crate::evaluation::{EvalCounts, EvalParams};
pub use crate::pipeline::{Alarm, PipelineConfig, StreamingPipeline};
pub use crate::reference::{ReferenceProfile, ResetPolicy};
pub use crate::runner::{run_vehicle, RunnerParams, VehicleScores};
pub use crate::threshold::SelfTuningThreshold;
pub use navarchos_tsframe::{FilterSpec, Frame, Transform, TransformKind};

//! Reference-profile construction (framework step 2): the dynamic
//! "healthy" dataset `Ref` that detectors are fitted on, rebuilt whenever
//! a maintenance event signals that the vehicle should be back to normal
//! operation — without any guarantee the collected data is noise-free.

/// When the reference profile is discarded and rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResetPolicy {
    /// Reset on every recorded service *or* repair — the paper's main
    /// policy (Table 2).
    #[default]
    OnServiceOrRepair,
    /// Reset only on recorded repairs — the ablation of Table 3 (ignoring
    /// services keeps vehicles pinned to their initial-state profile).
    OnRepairOnly,
    /// Never reset: the initial profile stays forever.
    Never,
}

impl ResetPolicy {
    /// Whether a maintenance event of the given kind triggers a reset.
    /// `is_repair` distinguishes repairs from plain services.
    pub fn resets_on(&self, is_repair: bool) -> bool {
        match self {
            ResetPolicy::OnServiceOrRepair => true,
            ResetPolicy::OnRepairOnly => is_repair,
            ResetPolicy::Never => false,
        }
    }
}

/// A growable reference profile of transformed samples.
#[derive(Debug, Clone)]
pub struct ReferenceProfile {
    dim: usize,
    capacity: usize,
    data: Vec<f64>,
}

impl ReferenceProfile {
    /// Creates an empty profile collecting up to `capacity` samples of
    /// width `dim`.
    pub fn new(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0 && capacity > 0);
        ReferenceProfile { dim, capacity, data: Vec::with_capacity(dim * capacity) }
    }

    /// Number of samples collected so far.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the profile holds no samples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether the profile reached its target length and is ready for
    /// detector fitting.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Sample width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds a sample while the profile is filling; returns true when this
    /// push completed the profile.
    pub fn push(&mut self, x: &[f64]) -> bool {
        assert_eq!(x.len(), self.dim, "sample width mismatch");
        if self.is_full() {
            return false;
        }
        self.data.extend_from_slice(x);
        let completed = self.is_full();
        if completed && navarchos_obs::metrics_enabled() {
            static FILLS: std::sync::OnceLock<std::sync::Arc<navarchos_obs::Counter>> =
                std::sync::OnceLock::new();
            FILLS.get_or_init(|| navarchos_obs::counter("reference.fills")).incr();
        }
        completed
    }

    /// Discards everything (a maintenance reset).
    pub fn clear(&mut self) {
        if !self.data.is_empty() && navarchos_obs::metrics_enabled() {
            static RESETS: std::sync::OnceLock<std::sync::Arc<navarchos_obs::Counter>> =
                std::sync::OnceLock::new();
            RESETS.get_or_init(|| navarchos_obs::counter("reference.resets")).incr();
        }
        self.data.clear();
    }

    /// The collected samples as a row-major matrix buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Sample `i`.
    pub fn sample(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Copies the samples into per-row vectors (for index structures that
    /// want owned points).
    pub fn rows(&self) -> Vec<Vec<f64>> {
        (0..self.len()).map(|i| self.sample(i).to_vec()).collect()
    }
}

// Restore writes `data` directly instead of replaying `push` so the
// `reference.fills` counter is not re-bumped by a restore — checkpoint
// restore must be invisible to fleet telemetry.
impl navarchos_stat::Snapshot for ReferenceProfile {
    fn write_state(&self, w: &mut navarchos_stat::SnapWriter) {
        w.put_usize(self.dim);
        w.put_usize(self.capacity);
        w.put_f64_slice(&self.data);
    }
}

impl navarchos_stat::Restore for ReferenceProfile {
    fn read_state(
        &mut self,
        r: &mut navarchos_stat::SnapReader<'_>,
    ) -> Result<(), navarchos_stat::SnapError> {
        let dim = r.get_usize()?;
        let capacity = r.get_usize()?;
        if dim != self.dim || capacity != self.capacity {
            return Err(navarchos_stat::SnapError::Corrupt("ReferenceProfile shape mismatch"));
        }
        let data = r.get_f64_vec()?;
        if data.len() % dim != 0 || data.len() > dim * capacity {
            return Err(navarchos_stat::SnapError::Corrupt("ReferenceProfile data mismatch"));
        }
        self.data = data;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_semantics() {
        assert!(ResetPolicy::OnServiceOrRepair.resets_on(false));
        assert!(ResetPolicy::OnServiceOrRepair.resets_on(true));
        assert!(!ResetPolicy::OnRepairOnly.resets_on(false));
        assert!(ResetPolicy::OnRepairOnly.resets_on(true));
        assert!(!ResetPolicy::Never.resets_on(true));
        assert!(!ResetPolicy::Never.resets_on(false));
    }

    #[test]
    fn profile_fills_to_capacity() {
        let mut p = ReferenceProfile::new(2, 3);
        assert!(!p.push(&[1.0, 2.0]));
        assert!(!p.push(&[3.0, 4.0]));
        assert!(p.push(&[5.0, 6.0]), "completing push returns true");
        assert!(p.is_full());
        assert!(!p.push(&[7.0, 8.0]), "pushes after full are ignored");
        assert_eq!(p.len(), 3);
        assert_eq!(p.sample(1), &[3.0, 4.0]);
    }

    #[test]
    fn clear_resets() {
        let mut p = ReferenceProfile::new(1, 2);
        p.push(&[1.0]);
        p.push(&[2.0]);
        assert!(p.is_full());
        p.clear();
        assert!(p.is_empty());
        assert!(!p.is_full());
    }

    #[test]
    fn rows_roundtrip() {
        let mut p = ReferenceProfile::new(2, 2);
        p.push(&[1.0, 2.0]);
        p.push(&[3.0, 4.0]);
        assert_eq!(p.rows(), vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(p.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let mut p = ReferenceProfile::new(2, 2);
        p.push(&[1.0]);
    }
}

//! Closest-pair detection (Section 3.3): each feature is monitored
//! separately, the anomaly score being the distance from the new sample's
//! value to its closest neighbour in the reference profile. Per-feature
//! sorted arrays make every query a binary search — the source of the
//! order-of-magnitude speed advantage in Table 1 of the paper.

use super::Detector;
use crate::reference::ReferenceProfile;
use navarchos_neighbors::SortedNeighbors;

/// Per-feature nearest-neighbour distance detector.
#[derive(Debug, Clone)]
pub struct ClosestPairDetector {
    names: Vec<String>,
    per_feature: Vec<SortedNeighbors>,
}

impl ClosestPairDetector {
    /// Creates an unfitted detector for the named features.
    pub fn new<S: AsRef<str>>(names: &[S]) -> Self {
        ClosestPairDetector {
            names: names.iter().map(|s| s.as_ref().to_string()).collect(),
            per_feature: Vec::new(),
        }
    }
}

impl Detector for ClosestPairDetector {
    fn n_channels(&self) -> usize {
        self.names.len()
    }

    fn channel_names(&self) -> Vec<String> {
        self.names.clone()
    }

    fn fit(&mut self, reference: &ReferenceProfile) {
        assert_eq!(reference.dim(), self.names.len(), "profile width mismatch");
        assert!(!reference.is_empty(), "empty reference profile");
        let n = reference.len();
        let mut column = Vec::with_capacity(n);
        self.per_feature.clear();
        for j in 0..reference.dim() {
            column.clear();
            column.extend((0..n).map(|i| reference.sample(i)[j]));
            self.per_feature.push(SortedNeighbors::new(&column));
        }
    }

    fn score(&mut self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.names.len());
        if self.per_feature.is_empty() {
            return vec![f64::NAN; self.names.len()];
        }
        self.per_feature.iter().zip(x).map(|(nn, &v)| nn.nearest_distance(v)).collect()
    }

    fn is_fitted(&self) -> bool {
        !self.per_feature.is_empty()
    }

    fn reset(&mut self) {
        self.per_feature.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fitted() -> ClosestPairDetector {
        let mut d = ClosestPairDetector::new(&["a", "b"]);
        let mut p = ReferenceProfile::new(2, 3);
        p.push(&[1.0, 10.0]);
        p.push(&[2.0, 20.0]);
        p.push(&[3.0, 30.0]);
        d.fit(&p);
        d
    }

    #[test]
    fn scores_are_per_feature_nn_distances() {
        let mut d = fitted();
        let s = d.score(&[2.4, 5.0]);
        assert!((s[0] - 0.4).abs() < 1e-12);
        assert!((s[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn member_scores_zero() {
        let mut d = fitted();
        let s = d.score(&[2.0, 20.0]);
        assert_eq!(s, vec![0.0, 0.0]);
    }

    #[test]
    fn unfitted_returns_nan() {
        let mut d = ClosestPairDetector::new(&["a", "b"]);
        assert!(!d.is_fitted());
        assert!(d.score(&[1.0, 2.0]).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn reset_unfits() {
        let mut d = fitted();
        assert!(d.is_fitted());
        d.reset();
        assert!(!d.is_fitted());
    }

    #[test]
    fn channel_names_match_features() {
        let d = ClosestPairDetector::new(&["x~y", "x~z"]);
        assert_eq!(d.channel_names(), vec!["x~y", "x~z"]);
        assert_eq!(d.n_channels(), 2);
    }

    #[test]
    fn feature_independence() {
        // A sample far in one feature only alarms that channel.
        let mut d = fitted();
        let s = d.score(&[1000.0, 20.0]);
        assert!(s[0] > 900.0);
        assert_eq!(s[1], 0.0);
    }
}

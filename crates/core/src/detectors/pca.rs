//! PCA reconstruction-error detector (extension): project each sample
//! onto the principal subspace of the reference profile and score the
//! residual norm. Subspace methods are a standard unsupervised baseline
//! in the PdM literature the paper surveys; like the closest-pair
//! detector this one needs no labels and fits in microseconds, but it
//! models the profile's *global* linear structure instead of local
//! neighbourhoods.

use super::{Detector, DetectorParams};
use crate::reference::ReferenceProfile;

/// Reconstruction-error detector on the principal subspace of the
/// reference profile. Emits one score channel (the residual 2-norm),
/// thresholded with the self-tuning threshold.
///
/// ```
/// use navarchos_core::detectors::{Detector, DetectorParams, PcaDetector};
/// use navarchos_core::reference::ReferenceProfile;
///
/// // Reference confined to the line b = 2a.
/// let mut profile = ReferenceProfile::new(2, 16);
/// for i in 0..16 {
///     let a = (i as f64 * 0.5).sin();
///     profile.push(&[a, 2.0 * a]);
/// }
/// let mut det = PcaDetector::new(2, &DetectorParams::default());
/// det.fit(&profile);
/// assert!(det.score(&[0.4, 0.8])[0] < 1e-6);  // on the line
/// assert!(det.score(&[0.4, -0.8])[0] > 0.5);  // off the line
/// ```
#[derive(Debug)]
pub struct PcaDetector {
    dim: usize,
    /// Fraction of total variance the retained subspace must explain.
    energy: f64,
    mean: Vec<f64>,
    /// Retained components, row-major `k × dim`, orthonormal rows.
    components: Vec<f64>,
    k: usize,
    fitted: bool,
}

/// Power-iteration sweeps per component.
const POWER_ITERS: usize = 200;

impl PcaDetector {
    /// Creates an unfitted detector for `dim`-dimensional samples keeping
    /// enough components to explain 90 % of the reference variance.
    pub fn new(dim: usize, _params: &DetectorParams) -> Self {
        Self::with_energy(dim, 0.9)
    }

    /// Creates a detector retaining enough components to explain the
    /// given fraction of variance.
    ///
    /// # Panics
    /// Panics unless `0 < energy < 1` and `dim >= 2` (with one dimension
    /// the subspace is the whole space and every residual is zero).
    pub fn with_energy(dim: usize, energy: f64) -> Self {
        assert!(dim >= 2, "PCA residuals need at least 2 dimensions");
        assert!(energy > 0.0 && energy < 1.0, "energy must be in (0, 1)");
        PcaDetector { dim, energy, mean: Vec::new(), components: Vec::new(), k: 0, fitted: false }
    }

    /// Number of retained components (0 before fitting).
    pub fn n_components(&self) -> usize {
        self.k
    }

    /// Leading eigenvector of the symmetric matrix `cov` (row-major
    /// `d × d`) by power iteration, and its eigenvalue. Returns `None`
    /// when the matrix is (numerically) zero.
    fn leading_eigenpair(cov: &[f64], d: usize) -> Option<(Vec<f64>, f64)> {
        // Deterministic non-degenerate start vector.
        let mut v: Vec<f64> = (0..d).map(|i| 1.0 + (i as f64) * 0.173).collect();
        let norm = |u: &[f64]| u.iter().map(|x| x * x).sum::<f64>().sqrt();
        let n0 = norm(&v);
        for x in &mut v {
            *x /= n0;
        }
        let mut w = vec![0.0; d];
        let mut lambda = 0.0;
        for _ in 0..POWER_ITERS {
            for (i, slot) in w.iter_mut().enumerate() {
                *slot = cov[i * d..(i + 1) * d].iter().zip(&v).map(|(c, x)| c * x).sum();
            }
            let n = norm(&w);
            if n < 1e-12 {
                return None;
            }
            let next_lambda = v.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>();
            for (a, b) in v.iter_mut().zip(&w) {
                *a = b / n;
            }
            if (next_lambda - lambda).abs() <= 1e-12 * next_lambda.abs().max(1.0) {
                lambda = next_lambda;
                break;
            }
            lambda = next_lambda;
        }
        if lambda <= 1e-12 {
            return None;
        }
        Some((v, lambda))
    }
}

impl Detector for PcaDetector {
    fn n_channels(&self) -> usize {
        1
    }

    fn channel_names(&self) -> Vec<String> {
        vec!["pca-residual".to_string()]
    }

    fn fit(&mut self, reference: &ReferenceProfile) {
        let d = self.dim;
        assert_eq!(reference.dim(), d, "profile width mismatch");
        let n = reference.len();
        assert!(n >= 4, "reference too small for PCA");

        self.mean = vec![0.0; d];
        for i in 0..n {
            for (m, &x) in self.mean.iter_mut().zip(reference.sample(i)) {
                *m += x;
            }
        }
        for m in &mut self.mean {
            *m /= n as f64;
        }

        // Covariance, row-major d × d.
        let mut cov = vec![0.0; d * d];
        let mut centered = vec![0.0; d];
        for i in 0..n {
            for (c, (&x, &m)) in centered.iter_mut().zip(reference.sample(i).iter().zip(&self.mean))
            {
                *c = x - m;
            }
            for r in 0..d {
                for c in r..d {
                    cov[r * d + c] += centered[r] * centered[c];
                }
            }
        }
        let denom = (n - 1) as f64;
        for r in 0..d {
            for c in r..d {
                cov[r * d + c] /= denom;
                cov[c * d + r] = cov[r * d + c];
            }
        }
        let total_var: f64 = (0..d).map(|i| cov[i * d + i]).sum();

        // Extract components by power iteration with deflation until the
        // energy target is met. Never retain all d components: a full
        // basis reconstructs everything and the residual is identically
        // zero.
        self.components.clear();
        self.k = 0;
        let mut explained = 0.0;
        while self.k < d - 1 {
            let Some((v, lambda)) = Self::leading_eigenpair(&cov, d) else {
                break;
            };
            explained += lambda;
            self.components.extend_from_slice(&v);
            self.k += 1;
            if total_var > 0.0 && explained / total_var >= self.energy {
                break;
            }
            // Deflate: cov -= lambda v vᵀ.
            for r in 0..d {
                for c in 0..d {
                    cov[r * d + c] -= lambda * v[r] * v[c];
                }
            }
        }
        // A profile with no variance at all still fits (k = 0): every
        // centered sample is its own residual.
        self.fitted = true;
    }

    fn score(&mut self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.dim);
        if !self.fitted {
            return vec![f64::NAN];
        }
        let d = self.dim;
        let mut residual: Vec<f64> = x.iter().zip(&self.mean).map(|(a, m)| a - m).collect();
        for c in 0..self.k {
            let comp = &self.components[c * d..(c + 1) * d];
            let proj: f64 = comp.iter().zip(&residual).map(|(a, b)| a * b).sum();
            for (r, a) in residual.iter_mut().zip(comp) {
                *r -= proj * a;
            }
        }
        vec![residual.iter().map(|r| r * r).sum::<f64>().sqrt()]
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn reset(&mut self) {
        self.mean.clear();
        self.components.clear();
        self.k = 0;
        self.fitted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profile confined to the plane b = 2a, c = a − b (rank 2 in 3-D)
    /// plus tiny noise.
    fn planar_profile(n: usize) -> ReferenceProfile {
        let mut p = ReferenceProfile::new(3, n);
        for i in 0..n {
            let a = (i as f64 * 0.37).sin() * 2.0;
            let b = (i as f64 * 0.59).cos();
            let eps = ((i * 2_654_435_761) % 1_000) as f64 / 1_000.0 * 0.01;
            p.push(&[a, b, a - b + eps]);
        }
        p
    }

    #[test]
    fn on_subspace_scores_low_off_subspace_high() {
        let mut d = PcaDetector::new(3, &DetectorParams::default());
        d.fit(&planar_profile(200));
        assert!(d.n_components() >= 1 && d.n_components() <= 2);
        let on = d.score(&[1.0, 0.5, 0.5])[0];
        let off = d.score(&[1.0, 0.5, 4.0])[0];
        assert!(on < 0.1, "on-plane residual small: {on}");
        assert!(off > 1.0, "off-plane residual large: {off}");
    }

    #[test]
    fn components_are_orthonormal() {
        let mut d = PcaDetector::with_energy(3, 0.99);
        d.fit(&planar_profile(200));
        let k = d.n_components();
        let dim = 3;
        for i in 0..k {
            for j in 0..k {
                let dot: f64 = d.components[i * dim..(i + 1) * dim]
                    .iter()
                    .zip(&d.components[j * dim..(j + 1) * dim])
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-6, "⟨v{i}, v{j}⟩ = {dot}");
            }
        }
    }

    #[test]
    fn never_retains_a_full_basis() {
        // Isotropic data: energy target unreachable below d components,
        // but the detector must stop at d − 1 so residuals stay useful.
        let mut p = ReferenceProfile::new(2, 100);
        for i in 0..100 {
            let a = (i as f64 * 0.7).sin();
            let b = (i as f64 * 1.3).cos();
            p.push(&[a, b]);
        }
        let mut d = PcaDetector::with_energy(2, 0.999);
        d.fit(&p);
        assert_eq!(d.n_components(), 1);
    }

    #[test]
    fn constant_profile_scores_distance_from_mean() {
        let mut p = ReferenceProfile::new(2, 10);
        for _ in 0..10 {
            p.push(&[3.0, -1.0]);
        }
        let mut d = PcaDetector::new(2, &DetectorParams::default());
        d.fit(&p);
        assert_eq!(d.n_components(), 0, "no variance, no components");
        assert!(d.score(&[3.0, -1.0])[0] < 1e-12);
        assert!((d.score(&[3.0, 1.0])[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unfitted_nan_and_reset() {
        let mut d = PcaDetector::new(3, &DetectorParams::default());
        assert!(d.score(&[0.0; 3])[0].is_nan());
        d.fit(&planar_profile(50));
        assert!(d.is_fitted());
        assert!(!d.uses_constant_threshold());
        d.reset();
        assert!(!d.is_fitted());
        assert!(d.score(&[0.0; 3])[0].is_nan());
    }

    #[test]
    #[should_panic(expected = "at least 2 dimensions")]
    fn one_dimension_rejected() {
        let _ = PcaDetector::new(1, &DetectorParams::default());
    }
}

//! SAX-novelty detection — an implementation of the paper's *future work*
//! ("discretizing the signal input and creating artificial events"): each
//! signal's recent window is SAX-encoded, and a window whose word is
//! unknown (or far from every word) in the reference vocabulary is an
//! artificial event; its per-signal novelty is the anomaly score.
//!
//! Operates on *raw* transformed samples (`TransformKind::Raw`), keeping
//! its own rolling window like the TranAD wrapper.

use super::{Detector, DetectorParams};
use crate::reference::ReferenceProfile;
use navarchos_tsframe::sax::SaxEncoder;

/// Per-feature SAX vocabulary novelty detector.
#[derive(Debug)]
pub struct SaxNoveltyDetector {
    names: Vec<String>,
    encoder: SaxEncoder,
    window: usize,
    stride: usize,
    /// Learned vocabulary per feature (deduplicated reference words).
    vocab: Vec<Vec<Vec<u8>>>,
    /// Rolling raw-sample buffer (row-major, most recent last).
    buffer: Vec<f64>,
    since_emit: usize,
    /// Last emitted scores, repeated between window emissions so the
    /// detector stays aligned one-score-per-sample.
    last_scores: Vec<f64>,
}

impl SaxNoveltyDetector {
    /// Creates the detector: `window` raw samples per word, emitted every
    /// `stride` samples, with the given SAX parameters.
    pub fn new<S: AsRef<str>>(names: &[S], params: &DetectorParams) -> Self {
        let _ = params;
        let names: Vec<String> = names.iter().map(|s| s.as_ref().to_string()).collect();
        let n = names.len();
        SaxNoveltyDetector {
            encoder: SaxEncoder::new(6, 5),
            window: 30,
            stride: 5,
            vocab: Vec::new(),
            buffer: Vec::new(),
            since_emit: 0,
            last_scores: vec![0.0; n],
            names,
        }
    }

    /// Encodes feature `c` of a row-major sample block.
    fn encode_column(&self, block: &[f64], c: usize) -> Vec<u8> {
        let n_feats = self.names.len();
        let col: Vec<f64> = block.chunks(n_feats).map(|row| row[c]).collect();
        self.encoder.encode(&col)
    }

    /// Novelty of a word against a vocabulary: the minimum SAX word
    /// distance to any known word (0 = known behaviour).
    fn novelty(&self, word: &[u8], vocab: &[Vec<u8>]) -> f64 {
        vocab.iter().map(|w| self.encoder.word_distance(word, w)).fold(f64::INFINITY, f64::min)
    }
}

impl Detector for SaxNoveltyDetector {
    fn n_channels(&self) -> usize {
        self.names.len()
    }

    fn channel_names(&self) -> Vec<String> {
        self.names.iter().map(|n| format!("sax:{n}")).collect()
    }

    fn fit(&mut self, reference: &ReferenceProfile) {
        assert_eq!(reference.dim(), self.names.len(), "profile width mismatch");
        assert!(reference.len() >= self.window, "reference shorter than the SAX window");
        let n_feats = self.names.len();
        let data = reference.data();
        self.vocab = vec![Vec::new(); n_feats];
        let mut s = 0;
        while s + self.window <= reference.len() {
            let block = &data[s * n_feats..(s + self.window) * n_feats];
            for c in 0..n_feats {
                let word = self.encode_column(block, c);
                if !self.vocab[c].contains(&word) {
                    self.vocab[c].push(word);
                }
            }
            s += self.stride;
        }
        self.buffer.clear();
        self.since_emit = 0;
        self.last_scores = vec![0.0; n_feats];
    }

    fn score(&mut self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.names.len());
        if self.vocab.is_empty() {
            return vec![f64::NAN; self.names.len()];
        }
        let n_feats = self.names.len();
        self.buffer.extend_from_slice(x);
        let cap = self.window * n_feats;
        if self.buffer.len() > cap {
            self.buffer.drain(..self.buffer.len() - cap);
        }
        if self.buffer.len() < cap {
            return self.last_scores.clone();
        }
        self.since_emit += 1;
        if self.since_emit >= self.stride {
            self.since_emit = 0;
            let block = self.buffer.clone();
            for c in 0..n_feats {
                let word = self.encode_column(&block, c);
                self.last_scores[c] = self.novelty(&word, &self.vocab[c]);
            }
        }
        self.last_scores.clone()
    }

    fn is_fitted(&self) -> bool {
        !self.vocab.is_empty()
    }

    fn reset(&mut self) {
        self.vocab.clear();
        self.buffer.clear();
        self.since_emit = 0;
        self.last_scores = vec![0.0; self.names.len()];
    }

    // The vocabulary is rebuilt deterministically by `fit`; the rolling
    // buffer, emission phase and held scores are the evolved state.
    fn write_state(&self, w: &mut navarchos_stat::SnapWriter) {
        w.put_f64_slice(&self.buffer);
        w.put_usize(self.since_emit);
        w.put_f64_slice(&self.last_scores);
    }

    fn read_state(
        &mut self,
        r: &mut navarchos_stat::SnapReader<'_>,
    ) -> Result<(), navarchos_stat::SnapError> {
        let n_feats = self.names.len();
        let buffer = r.get_f64_vec()?;
        if buffer.len() % n_feats != 0 || buffer.len() > self.window * n_feats {
            return Err(navarchos_stat::SnapError::Corrupt("SaxNoveltyDetector buffer mismatch"));
        }
        let since_emit = r.get_usize()?;
        let last_scores = r.get_f64_vec()?;
        if last_scores.len() != n_feats {
            return Err(navarchos_stat::SnapError::Corrupt("SaxNoveltyDetector score mismatch"));
        }
        self.buffer = buffer;
        self.since_emit = since_emit;
        self.last_scores = last_scores;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sinusoidal two-signal reference.
    fn wave_profile(n: usize) -> ReferenceProfile {
        let mut p = ReferenceProfile::new(2, n);
        for i in 0..n {
            let t = i as f64 * 0.35;
            p.push(&[t.sin() * 5.0, t.cos() * 3.0]);
        }
        p
    }

    #[test]
    fn known_behaviour_scores_zero() {
        let mut d = SaxNoveltyDetector::new(&["a", "b"], &DetectorParams::default());
        d.fit(&wave_profile(240));
        // Continue the same waves: every word is in the vocabulary.
        let mut max_score = 0.0f64;
        for i in 0..120 {
            let t = (240 + i) as f64 * 0.35;
            let s = d.score(&[t.sin() * 5.0, t.cos() * 3.0]);
            max_score = max_score.max(s[0]).max(s[1]);
        }
        assert!(max_score < 0.5, "familiar patterns score ≈ 0, got {max_score}");
    }

    #[test]
    fn novel_shape_scores_high_on_its_channel() {
        let mut d = SaxNoveltyDetector::new(&["a", "b"], &DetectorParams::default());
        d.fit(&wave_profile(240));
        // Channel a switches to a spike train it has never produced.
        let mut a_max = 0.0f64;
        let mut b_max = 0.0f64;
        for i in 0..120 {
            let t = (240 + i) as f64 * 0.35;
            let spike = if i % 10 == 0 { 25.0 } else { -2.0 };
            let s = d.score(&[spike, t.cos() * 3.0]);
            a_max = a_max.max(s[0]);
            b_max = b_max.max(s[1]);
        }
        assert!(a_max > b_max, "novelty attributed to the changed signal: {a_max} vs {b_max}");
        assert!(a_max > 0.5, "spike train is a novel word: {a_max}");
    }

    #[test]
    fn unfitted_and_reset() {
        let mut d = SaxNoveltyDetector::new(&["a", "b"], &DetectorParams::default());
        assert!(!d.is_fitted());
        assert!(d.score(&[0.0, 0.0])[0].is_nan());
        d.fit(&wave_profile(120));
        assert!(d.is_fitted());
        d.reset();
        assert!(!d.is_fitted());
    }

    #[test]
    fn channel_names_are_prefixed() {
        let d = SaxNoveltyDetector::new(&["rpm", "speed"], &DetectorParams::default());
        assert_eq!(d.channel_names(), vec!["sax:rpm", "sax:speed"]);
    }
}

//! The Grand inductive detector (Section 3.4; Rögnvaldsson et al., DMKD
//! 2018): a non-conformity measure against the vehicle's own reference
//! profile, conformal p-values, and a power-martingale exchangeability
//! test whose deviation level in [0, 1] is thresholded with constant
//! values.

use super::Detector;
use crate::reference::ReferenceProfile;
use navarchos_neighbors::{KnnIndex, LofModel, Metric};
use navarchos_stat::martingale::{conformal_pvalue, PowerMartingale};

/// Grand's non-conformity measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrandNcm {
    /// Distance from the component-wise median of the reference.
    Median,
    /// Average distance to the k nearest reference samples.
    Knn,
    /// Local outlier factor against the reference.
    Lof,
}

impl GrandNcm {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            GrandNcm::Median => "median",
            GrandNcm::Knn => "knn",
            GrandNcm::Lof => "lof",
        }
    }
}

#[derive(Debug)]
enum FittedNcm {
    Median { index: KnnIndex, median: Vec<f64> },
    Knn { index: KnnIndex, k: usize },
    Lof { model: LofModel },
}

impl FittedNcm {
    fn score(&self, x: &[f64]) -> f64 {
        match self {
            FittedNcm::Median { index, median } => {
                let _ = index;
                navarchos_neighbors::euclidean(x, median)
            }
            FittedNcm::Knn { index, k } => index.knn_score(x, *k, None),
            FittedNcm::Lof { model } => model.score(x),
        }
    }
}

/// The Grand inductive detector.
#[derive(Debug)]
pub struct GrandDetector {
    dim: usize,
    ncm_kind: GrandNcm,
    k: usize,
    martingale_window: usize,
    fitted: Option<FittedNcm>,
    /// Leave-one-out non-conformity scores of the reference members — the
    /// calibration set for conformal p-values.
    calibration: Vec<f64>,
    martingale: PowerMartingale,
}

impl GrandDetector {
    /// Creates an unfitted detector for `dim`-dimensional samples.
    pub fn new(dim: usize, ncm: GrandNcm, k: usize, martingale_window: usize) -> Self {
        assert!(dim > 0 && k > 0 && martingale_window > 0);
        GrandDetector {
            dim,
            ncm_kind: ncm,
            k,
            martingale_window,
            fitted: None,
            calibration: Vec::new(),
            martingale: PowerMartingale::default().with_window(martingale_window),
        }
    }

    /// The configured non-conformity measure.
    pub fn ncm(&self) -> GrandNcm {
        self.ncm_kind
    }
}

impl Detector for GrandDetector {
    fn n_channels(&self) -> usize {
        1
    }

    fn channel_names(&self) -> Vec<String> {
        vec![format!("grand-{}", self.ncm_kind.label())]
    }

    fn fit(&mut self, reference: &ReferenceProfile) {
        assert_eq!(reference.dim(), self.dim, "profile width mismatch");
        let n = reference.len();
        assert!(n > self.k, "reference smaller than the neighbourhood size");
        let rows = reference.rows();
        let index = KnnIndex::new(&rows, self.dim, Metric::Euclidean);

        // Calibration scores are leave-one-out so reference members do not
        // score themselves as their own neighbours.
        let mut calibration = Vec::with_capacity(n);
        let fitted = match self.ncm_kind {
            GrandNcm::Median => {
                let median = index.median_point();
                for i in 0..n {
                    calibration.push(navarchos_neighbors::euclidean(index.point(i), &median));
                }
                FittedNcm::Median { index, median }
            }
            GrandNcm::Knn => {
                for i in 0..n {
                    calibration.push(index.knn_score(index.point(i), self.k, Some(i)));
                }
                FittedNcm::Knn { index, k: self.k }
            }
            GrandNcm::Lof => {
                let model = LofModel::fit(&rows, self.dim, self.k, Metric::Euclidean);
                calibration.extend_from_slice(model.reference_scores());
                FittedNcm::Lof { model }
            }
        };

        self.fitted = Some(fitted);
        self.calibration = calibration;
        self.martingale = PowerMartingale::default().with_window(self.martingale_window);
    }

    fn score(&mut self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.dim);
        let Some(ncm) = &self.fitted else {
            return vec![f64::NAN];
        };
        let s = ncm.score(x);
        // Deterministic mid-p conformal p-value (θ = 0.5).
        let p = conformal_pvalue(&self.calibration, s, 0.5);
        vec![self.martingale.update(p)]
    }

    fn is_fitted(&self) -> bool {
        self.fitted.is_some()
    }

    fn reset(&mut self) {
        self.fitted = None;
        self.calibration.clear();
        self.martingale.reset();
    }

    fn uses_constant_threshold(&self) -> bool {
        true
    }

    // `fit` deterministically rebuilds the NCM index and calibration set
    // from the restored reference profile (and resets the martingale), so
    // only the martingale's evolved state needs to travel.
    fn write_state(&self, w: &mut navarchos_stat::SnapWriter) {
        navarchos_stat::Snapshot::write_state(&self.martingale, w);
    }

    fn read_state(
        &mut self,
        r: &mut navarchos_stat::SnapReader<'_>,
    ) -> Result<(), navarchos_stat::SnapError> {
        navarchos_stat::Restore::read_state(&mut self.martingale, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reference profile of 2-D points on a small grid.
    fn grid_profile() -> ReferenceProfile {
        let mut p = ReferenceProfile::new(2, 36);
        for i in 0..6 {
            for j in 0..6 {
                p.push(&[i as f64 * 0.1, j as f64 * 0.1]);
            }
        }
        p
    }

    fn run_stream(d: &mut GrandDetector, samples: &[[f64; 2]]) -> f64 {
        let mut last = 0.0;
        for s in samples {
            last = d.score(s)[0];
        }
        last
    }

    #[test]
    fn deviation_rises_under_persistent_strangeness() {
        for ncm in [GrandNcm::Median, GrandNcm::Knn, GrandNcm::Lof] {
            let mut d = GrandDetector::new(2, ncm, 5, 40);
            d.fit(&grid_profile());
            // Healthy stream: points inside the grid.
            let healthy: Vec<[f64; 2]> =
                (0..60).map(|i| [(i % 6) as f64 * 0.1, ((i / 6) % 6) as f64 * 0.1]).collect();
            let dev_healthy = run_stream(&mut d, &healthy);
            // Anomalous stream: far outside.
            let anomalous: Vec<[f64; 2]> = (0..60).map(|i| [5.0 + i as f64 * 0.01, 5.0]).collect();
            let dev_anom = run_stream(&mut d, &anomalous);
            assert!(
                dev_anom > dev_healthy + 0.3,
                "{ncm:?}: anomalous {dev_anom} vs healthy {dev_healthy}"
            );
            assert!((0.0..=1.0).contains(&dev_anom));
        }
    }

    #[test]
    fn healthy_stream_stays_low() {
        let mut d = GrandDetector::new(2, GrandNcm::Knn, 5, 40);
        d.fit(&grid_profile());
        let mut max_dev = 0.0f64;
        for i in 0..300 {
            // Points jittered inside the grid (deterministic pattern).
            let x = [
                (i % 6) as f64 * 0.1 + 0.01 * ((i * 7 % 10) as f64 - 5.0) / 5.0,
                ((i / 6) % 6) as f64 * 0.1,
            ];
            max_dev = max_dev.max(d.score(&x)[0]);
        }
        assert!(max_dev < 0.9, "healthy max deviation {max_dev}");
    }

    #[test]
    fn constant_threshold_flag() {
        let d = GrandDetector::new(2, GrandNcm::Lof, 3, 10);
        assert!(d.uses_constant_threshold());
        assert_eq!(d.n_channels(), 1);
        assert_eq!(d.channel_names(), vec!["grand-lof"]);
    }

    #[test]
    fn reset_clears_model_and_martingale() {
        let mut d = GrandDetector::new(2, GrandNcm::Median, 3, 10);
        d.fit(&grid_profile());
        for _ in 0..20 {
            d.score(&[9.0, 9.0]);
        }
        d.reset();
        assert!(!d.is_fitted());
        assert!(d.score(&[0.0, 0.0])[0].is_nan());
    }

    #[test]
    #[should_panic]
    fn tiny_reference_panics() {
        let mut p = ReferenceProfile::new(2, 3);
        p.push(&[0.0, 0.0]);
        p.push(&[1.0, 1.0]);
        p.push(&[2.0, 2.0]);
        let mut d = GrandDetector::new(2, GrandNcm::Knn, 5, 10);
        d.fit(&p);
    }
}

//! Framework step 3: the four unsupervised anomaly scorers compared by the
//! paper, behind one [`Detector`] trait.
//!
//! A detector is fitted on a full reference profile, then scores incoming
//! transformed samples one at a time. Scores are raw (unthresholded):
//! thresholding lives in [`crate::threshold`] so factor sweeps never
//! require re-scoring.

mod closest_pair;
mod extensions;
mod grand;
mod kde;
mod pca;
mod sax_novelty;
mod tranad;
mod xgboost;

pub use closest_pair::ClosestPairDetector;
pub use extensions::{IsolationForestDetector, MlpDetector};
pub use grand::{GrandDetector, GrandNcm};
pub use kde::KdeDetector;
pub use pca::PcaDetector;
pub use sax_novelty::SaxNoveltyDetector;
pub use tranad::TranAdDetector;
pub use xgboost::XgboostDetector;

use crate::reference::ReferenceProfile;

/// An unsupervised anomaly scorer.
///
/// `Debug` is a supertrait so boxed detectors stay inspectable inside the
/// pipeline/runner structs (workspace lint: `missing_debug_implementations`).
/// `Send` is a supertrait so a boxed detector — and any pipeline holding
/// one — can move to a shard worker thread in the fleet ingest engine.
pub trait Detector: std::fmt::Debug + Send {
    /// Number of score channels emitted per sample (per-feature detectors
    /// emit one channel per input feature; Grand and TranAD emit one).
    fn n_channels(&self) -> usize;

    /// Human-readable channel names for alarm attribution.
    fn channel_names(&self) -> Vec<String>;

    /// Fits the detector on a completed reference profile.
    ///
    /// # Panics
    /// Implementations panic if the profile is empty or its width differs
    /// from the detector's input dimension.
    fn fit(&mut self, reference: &ReferenceProfile);

    /// Scores one transformed sample. Returns one value per channel;
    /// higher = more anomalous. Stateful detectors (TranAD's rolling
    /// window, Grand's martingale) update their internal state.
    fn score(&mut self, x: &[f64]) -> Vec<f64>;

    /// Whether the detector has been fitted.
    fn is_fitted(&self) -> bool;

    /// Drops the fitted model and any streaming state (a reference reset).
    fn reset(&mut self);

    /// Grand produces calibrated deviation levels in [0, 1] and is
    /// thresholded with constant values; everything else uses the
    /// self-tuning threshold (Section 4 of the paper).
    fn uses_constant_threshold(&self) -> bool {
        false
    }

    /// Appends the detector's mutable *streaming* state to a checkpoint
    /// writer. Fitted models themselves are not serialised: `fit` is
    /// deterministic given the reference profile and seeded params, so the
    /// restoring pipeline re-fits from the restored profile and then calls
    /// [`Detector::read_state`] to recover what a re-fit cannot — the
    /// rolling windows and martingale state that evolved after fitting.
    /// The default writes nothing, which is correct for the stateless
    /// scorers (closest-pair, XGBoost, iforest, MLP, PCA, KDE).
    fn write_state(&self, w: &mut navarchos_stat::SnapWriter) {
        let _ = w;
    }

    /// Overwrites the detector's mutable streaming state from a checkpoint
    /// reader (counterpart of [`Detector::write_state`]; called after
    /// re-fitting).
    fn read_state(
        &mut self,
        r: &mut navarchos_stat::SnapReader<'_>,
    ) -> Result<(), navarchos_stat::SnapError> {
        let _ = r;
        Ok(())
    }
}

/// Identifies a detector choice; used by experiment grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// Per-feature 1-NN distance to the reference (Section 3.3).
    ClosestPair,
    /// Conformal anomaly detection with a martingale deviation level
    /// (Section 3.4), with the given non-conformity measure.
    Grand(GrandNcm),
    /// Transformer reconstruction error (Section 3.5).
    TranAd,
    /// Per-feature gradient-boosted regression loss (Section 3.6).
    Xgboost,
    /// Isolation forest (extension; cited by the paper through Khan et
    /// al. \[12\] as a further step-3 option).
    IsolationForest,
    /// Per-feature MLP regression (extension; the scheme of Massaro et
    /// al. \[15\] discussed in the paper's related work).
    Mlp,
    /// Per-feature SAX vocabulary novelty on raw samples (the paper's
    /// future-work direction: artificial events from discretised
    /// signals).
    SaxNovelty,
    /// PCA reconstruction residual (extension; the subspace baseline of
    /// the unsupervised-PdM literature the paper surveys).
    Pca,
    /// Gaussian-KDE negative log-density (extension; the classical
    /// density-estimation approach to "describe normal, flag the
    /// improbable").
    Kde,
}

/// Tuning knobs shared by the detector factory. Defaults follow the
/// evaluation setup of Section 4 scaled to this repository's simulator.
#[derive(Debug, Clone, Copy)]
pub struct DetectorParams {
    /// Neighbourhood size for Grand's kNN/LOF measures.
    pub grand_k: usize,
    /// Martingale sliding memory (updates).
    pub grand_martingale_window: usize,
    /// TranAD window length.
    pub tranad_window: usize,
    /// TranAD training epochs.
    pub tranad_epochs: usize,
    /// TranAD training-window cap.
    pub tranad_max_windows: usize,
    /// XGBoost boosting rounds.
    pub xgb_rounds: usize,
    /// XGBoost tree depth.
    pub xgb_depth: usize,
    /// Seed for the learned detectors.
    pub seed: u64,
}

impl Default for DetectorParams {
    fn default() -> Self {
        DetectorParams {
            grand_k: 10,
            grand_martingale_window: 60,
            tranad_window: 8,
            tranad_epochs: 6,
            tranad_max_windows: 600,
            xgb_rounds: 50,
            xgb_depth: 4,
            seed: 42,
        }
    }
}

impl DetectorKind {
    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            DetectorKind::ClosestPair => "Closest-pair",
            DetectorKind::Grand(_) => "Grand",
            DetectorKind::TranAd => "TranAD",
            DetectorKind::Xgboost => "XGBoost",
            DetectorKind::IsolationForest => "IsolationForest",
            DetectorKind::Mlp => "MLP",
            DetectorKind::SaxNovelty => "SAX-novelty",
            DetectorKind::Pca => "PCA",
            DetectorKind::Kde => "KDE",
        }
    }

    /// The four techniques in the paper's presentation order.
    pub fn all() -> [DetectorKind; 4] {
        [
            DetectorKind::Grand(GrandNcm::Lof),
            DetectorKind::ClosestPair,
            DetectorKind::TranAd,
            DetectorKind::Xgboost,
        ]
    }

    /// Builds the detector for inputs of width `dim` with the given
    /// feature names.
    pub fn build(
        &self,
        dim: usize,
        names: &[String],
        params: &DetectorParams,
    ) -> Box<dyn Detector> {
        match self {
            DetectorKind::ClosestPair => Box::new(ClosestPairDetector::new(names)),
            DetectorKind::Grand(ncm) => Box::new(GrandDetector::new(
                dim,
                *ncm,
                params.grand_k,
                params.grand_martingale_window,
            )),
            DetectorKind::TranAd => Box::new(TranAdDetector::new(dim, params)),
            DetectorKind::Xgboost => Box::new(XgboostDetector::new(names, params)),
            DetectorKind::IsolationForest => Box::new(IsolationForestDetector::new(dim, params)),
            DetectorKind::Mlp => Box::new(MlpDetector::new(names, params)),
            DetectorKind::SaxNovelty => Box::new(SaxNoveltyDetector::new(names, params)),
            DetectorKind::Pca => Box::new(PcaDetector::new(dim, params)),
            DetectorKind::Kde => Box::new(KdeDetector::new(dim, params)),
        }
    }
}

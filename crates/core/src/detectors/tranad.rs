//! TranAD as a framework detector (Section 3.5): the transformer
//! reconstruction model from `navarchos-nnet`, trained on each reference
//! profile, scoring a rolling window of the most recent transformed
//! samples.

use super::{Detector, DetectorParams};
use crate::reference::ReferenceProfile;
use navarchos_nnet::{Matrix, TranAd, TranAdConfig};

/// Reconstruction-error detector backed by TranAD.
#[derive(Debug)]
pub struct TranAdDetector {
    dim: usize,
    cfg: TranAdConfig,
    model: Option<TranAd>,
    /// Rolling buffer of the most recent `window` samples (row-major).
    buffer: Vec<f64>,
    /// Emit one channel per feature (per-feature reconstruction error)
    /// instead of the paper's single aggregate score.
    per_feature: bool,
    names: Vec<String>,
}

impl TranAdDetector {
    /// Creates an unfitted detector for `dim`-dimensional samples.
    pub fn new(dim: usize, params: &DetectorParams) -> Self {
        let cfg = TranAdConfig {
            window: params.tranad_window,
            epochs: params.tranad_epochs,
            max_windows: params.tranad_max_windows,
            seed: params.seed,
            ..TranAdConfig::for_features(dim)
        };
        TranAdDetector {
            dim,
            cfg,
            model: None,
            buffer: Vec::new(),
            per_feature: false,
            names: (0..dim).map(|i| format!("f{i}")).collect(),
        }
    }

    /// Switches to per-feature reconstruction channels (an attribution
    /// extension — the paper's TranAD reports one aggregate score).
    pub fn with_per_feature_channels<S: AsRef<str>>(mut self, names: &[S]) -> Self {
        assert_eq!(names.len(), self.dim, "one name per feature");
        self.per_feature = true;
        self.names = names.iter().map(|s| s.as_ref().to_string()).collect();
        self
    }
}

impl Detector for TranAdDetector {
    fn n_channels(&self) -> usize {
        if self.per_feature {
            self.dim
        } else {
            1
        }
    }

    fn channel_names(&self) -> Vec<String> {
        if self.per_feature {
            self.names.iter().map(|n| format!("tranad:{n}")).collect()
        } else {
            vec!["tranad-reconstruction".to_string()]
        }
    }

    fn fit(&mut self, reference: &ReferenceProfile) {
        assert_eq!(reference.dim(), self.dim, "profile width mismatch");
        assert!(reference.len() >= self.cfg.window, "reference shorter than the TranAD window");
        let series = Matrix::from_vec(reference.len(), self.dim, reference.data().to_vec());
        self.model = Some(TranAd::fit(&series, self.cfg));
        self.buffer.clear();
    }

    fn score(&mut self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.dim);
        let Some(model) = &self.model else {
            return vec![f64::NAN; self.n_channels()];
        };
        self.buffer.extend_from_slice(x);
        let w = self.cfg.window * self.dim;
        if self.buffer.len() > w {
            self.buffer.drain(..self.buffer.len() - w);
        }
        if self.buffer.len() < w {
            // Window not yet full: report the training-score scale so early
            // samples neither alarm nor distort holdout statistics.
            return vec![model.train_score_mean(); self.n_channels()];
        }
        let window = Matrix::from_vec(self.cfg.window, self.dim, self.buffer.clone());
        if self.per_feature {
            model.feature_errors_raw_window(&window)
        } else {
            vec![model.score_raw_window(&window)]
        }
    }

    fn is_fitted(&self) -> bool {
        self.model.is_some()
    }

    fn reset(&mut self) {
        self.model = None;
        self.buffer.clear();
    }

    // `fit` is deterministic (seeded) from the reference profile; the
    // rolling window of recent samples is the only evolved state.
    fn write_state(&self, w: &mut navarchos_stat::SnapWriter) {
        w.put_f64_slice(&self.buffer);
    }

    fn read_state(
        &mut self,
        r: &mut navarchos_stat::SnapReader<'_>,
    ) -> Result<(), navarchos_stat::SnapError> {
        let buffer = r.get_f64_vec()?;
        if buffer.len() % self.dim != 0 || buffer.len() > self.cfg.window * self.dim {
            return Err(navarchos_stat::SnapError::Corrupt("TranAdDetector buffer mismatch"));
        }
        self.buffer = buffer;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> DetectorParams {
        DetectorParams {
            tranad_window: 6,
            tranad_epochs: 4,
            tranad_max_windows: 120,
            ..Default::default()
        }
    }

    /// Structured 2-feature reference: f1 tracks f0.
    fn structured_profile(n: usize) -> ReferenceProfile {
        let mut p = ReferenceProfile::new(2, n);
        for i in 0..n {
            let t = i as f64 * 0.3;
            p.push(&[t.sin(), 0.9 * t.sin()]);
        }
        p
    }

    #[test]
    fn scores_rise_when_structure_breaks() {
        let mut d = TranAdDetector::new(2, &quick_params());
        d.fit(&structured_profile(150));
        // Healthy continuation.
        let mut healthy_max = 0.0f64;
        for i in 0..40 {
            let t = i as f64 * 0.3 + 1.0;
            healthy_max = healthy_max.max(d.score(&[t.sin(), 0.9 * t.sin()])[0]);
        }
        // Broken relationship.
        let mut broken_sum = 0.0;
        for i in 0..40 {
            let t = i as f64 * 0.3 + 1.0;
            broken_sum += d.score(&[t.sin(), -0.9 * t.sin()])[0];
        }
        let broken_mean = broken_sum / 40.0;
        assert!(
            broken_mean > healthy_max,
            "broken mean {broken_mean} vs healthy max {healthy_max}"
        );
    }

    #[test]
    fn warmup_returns_training_scale() {
        let mut d = TranAdDetector::new(2, &quick_params());
        d.fit(&structured_profile(100));
        let first = d.score(&[0.0, 0.0])[0];
        assert!(first.is_finite());
        // Before the rolling window fills, the score equals the training
        // mean exactly.
        let model_mean = first;
        let second = d.score(&[0.1, 0.09])[0];
        assert_eq!(second, model_mean);
    }

    #[test]
    fn per_feature_mode_attributes_the_broken_channel() {
        let mut d = TranAdDetector::new(2, &quick_params()).with_per_feature_channels(&["a", "b"]);
        assert_eq!(d.n_channels(), 2);
        assert_eq!(d.channel_names(), vec!["tranad:a", "tranad:b"]);
        d.fit(&structured_profile(150));
        // Warm the window with healthy data, then break feature 1.
        let mut last = vec![0.0; 2];
        for i in 0..40 {
            let t = i as f64 * 0.3 + 1.0;
            last = d.score(&[t.sin(), 0.9 * t.sin()]);
        }
        let healthy_b = last[1];
        for i in 0..40 {
            let t = i as f64 * 0.3 + 1.0;
            last = d.score(&[t.sin(), -0.9 * t.sin()]);
        }
        assert!(last[1] > healthy_b, "broken feature error grows: {last:?}");
        assert!(last[1] > last[0], "feature b blamed over a: {last:?}");
    }

    #[test]
    fn unfitted_returns_nan_and_reset_unfits() {
        let mut d = TranAdDetector::new(2, &quick_params());
        assert!(d.score(&[0.0, 0.0])[0].is_nan());
        d.fit(&structured_profile(100));
        assert!(d.is_fitted());
        d.reset();
        assert!(!d.is_fitted());
        assert!(d.score(&[0.0, 0.0])[0].is_nan());
    }
}

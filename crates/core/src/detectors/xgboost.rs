//! XGBoost regression as a framework detector (Section 3.6): one boosted
//! regressor per feature, each trained on the reference profile to predict
//! its target feature from the remaining ones; the absolute prediction
//! error is the per-feature anomaly score, which makes alarms directly
//! attributable to the feature whose relationship broke.

use super::{Detector, DetectorParams};
use crate::reference::ReferenceProfile;
use navarchos_gbdt::{GbdtParams, GbdtRegressor};

/// Per-feature regression-loss detector.
#[derive(Debug)]
pub struct XgboostDetector {
    names: Vec<String>,
    params: GbdtParams,
    /// `models[j]` predicts feature j from the remaining features.
    models: Vec<GbdtRegressor>,
    scratch: Vec<f64>,
}

impl XgboostDetector {
    /// Creates an unfitted detector for the named features.
    pub fn new<S: AsRef<str>>(names: &[S], params: &DetectorParams) -> Self {
        assert!(names.len() >= 2, "per-feature regression needs at least 2 features");
        XgboostDetector {
            names: names.iter().map(|s| s.as_ref().to_string()).collect(),
            params: GbdtParams {
                n_rounds: params.xgb_rounds,
                max_depth: params.xgb_depth,
                seed: params.seed,
                ..GbdtParams::default()
            },
            models: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Copies every feature except `j` from `x` into the scratch buffer.
    fn inputs_without(&mut self, x: &[f64], j: usize) {
        self.scratch.clear();
        self.scratch.extend(x.iter().enumerate().filter(|&(i, _)| i != j).map(|(_, &v)| v));
    }
}

impl Detector for XgboostDetector {
    fn n_channels(&self) -> usize {
        self.names.len()
    }

    fn channel_names(&self) -> Vec<String> {
        self.names.clone()
    }

    fn fit(&mut self, reference: &ReferenceProfile) {
        let f = self.names.len();
        assert_eq!(reference.dim(), f, "profile width mismatch");
        assert!(reference.len() >= 4, "reference too small for regression");
        let n = reference.len();
        self.models.clear();
        let mut x = Vec::with_capacity(n * (f - 1));
        let mut y = Vec::with_capacity(n);
        for j in 0..f {
            x.clear();
            y.clear();
            for i in 0..n {
                let row = reference.sample(i);
                y.push(row[j]);
                x.extend(row.iter().enumerate().filter(|&(c, _)| c != j).map(|(_, &v)| v));
            }
            self.models.push(GbdtRegressor::fit(&x, f - 1, &y, &self.params));
        }
    }

    fn score(&mut self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.names.len());
        if self.models.is_empty() {
            return vec![f64::NAN; self.names.len()];
        }
        let mut out = Vec::with_capacity(self.names.len());
        for j in 0..self.names.len() {
            self.inputs_without(x, j);
            let model = &self.models[j];
            out.push((model.predict(&self.scratch) - x[j]).abs());
        }
        out
    }

    fn is_fitted(&self) -> bool {
        !self.models.is_empty()
    }

    fn reset(&mut self) {
        self.models.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference with exact structure: b = 2a, c = a + 1.
    fn structured_profile(n: usize) -> ReferenceProfile {
        let mut p = ReferenceProfile::new(3, n);
        for i in 0..n {
            let a = (i as f64 * 0.37).sin() * 3.0;
            p.push(&[a, 2.0 * a, a + 1.0]);
        }
        p
    }

    fn quick() -> XgboostDetector {
        let mut d = XgboostDetector::new(&["a", "b", "c"], &DetectorParams::default());
        d.fit(&structured_profile(200));
        d
    }

    #[test]
    fn low_error_on_consistent_samples() {
        let mut d = quick();
        let s = d.score(&[1.5, 3.0, 2.5]);
        assert!(s.iter().all(|&v| v < 0.3), "scores {s:?}");
    }

    #[test]
    fn broken_relationship_blames_the_right_feature() {
        let mut d = quick();
        // b decouples from a: the b-model's error explodes; the a and c
        // models also degrade (b is one of their inputs) but less.
        let s = d.score(&[1.5, -3.0, 2.5]);
        assert!(s[1] > 2.0, "b channel score {s:?}");
        assert!(s[1] > s[2], "b blamed more than c: {s:?}");
    }

    #[test]
    fn unfitted_and_reset() {
        let mut d = XgboostDetector::new(&["a", "b", "c"], &DetectorParams::default());
        assert!(!d.is_fitted());
        assert!(d.score(&[0.0; 3]).iter().all(|v| v.is_nan()));
        d.fit(&structured_profile(50));
        assert!(d.is_fitted());
        d.reset();
        assert!(!d.is_fitted());
    }

    #[test]
    fn channels_match_features() {
        let d = XgboostDetector::new(&["x", "y", "z"], &DetectorParams::default());
        assert_eq!(d.n_channels(), 3);
        assert_eq!(d.channel_names(), vec!["x", "y", "z"]);
    }

    #[test]
    #[should_panic]
    fn single_feature_panics() {
        XgboostDetector::new(&["only"], &DetectorParams::default());
    }
}

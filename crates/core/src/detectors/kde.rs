//! Kernel-density novelty detector (extension): score each sample by its
//! negative log-density under a Gaussian kernel density estimate of the
//! reference profile. Density estimation is the classic "describe normal,
//! flag the improbable" approach the unsupervised-PdM literature starts
//! from; with reference profiles of ~10²–10³ samples the O(n·d) score is
//! still cheap.

use super::{Detector, DetectorParams};
use crate::reference::ReferenceProfile;

/// Gaussian-KDE novelty detector. Emits one channel: the negative
/// log-density of the sample under the reference KDE (higher = more
/// anomalous), thresholded with the self-tuning threshold.
#[derive(Debug)]
pub struct KdeDetector {
    dim: usize,
    /// Multiplier on the Silverman bandwidth (1 = plain Silverman).
    bandwidth_scale: f64,
    /// Reference samples, row-major.
    data: Vec<f64>,
    /// Per-dimension bandwidths.
    bandwidth: Vec<f64>,
    /// `-ln(n) - Σ ln(h_j √(2π))`, the constant part of the log-density.
    log_norm: f64,
}

impl KdeDetector {
    /// Creates an unfitted detector with the plain Silverman bandwidth.
    pub fn new(dim: usize, _params: &DetectorParams) -> Self {
        Self::with_bandwidth_scale(dim, 1.0)
    }

    /// Creates a detector whose Silverman bandwidths are multiplied by
    /// `scale` (>1 smooths more, <1 sharpens).
    ///
    /// # Panics
    /// Panics if `dim` is zero or `scale` is not positive.
    pub fn with_bandwidth_scale(dim: usize, scale: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(scale > 0.0, "bandwidth scale must be positive");
        KdeDetector {
            dim,
            bandwidth_scale: scale,
            data: Vec::new(),
            bandwidth: Vec::new(),
            log_norm: 0.0,
        }
    }

    /// Fitted per-dimension bandwidths (empty before fitting).
    pub fn bandwidths(&self) -> &[f64] {
        &self.bandwidth
    }

    /// Log-density of `x` under the fitted KDE.
    ///
    /// # Panics
    /// Panics if the detector is unfitted.
    pub fn log_density(&self, x: &[f64]) -> f64 {
        assert!(!self.data.is_empty(), "detector not fitted");
        debug_assert_eq!(x.len(), self.dim);
        // log Σ_i exp(-½ Σ_j ((x_j - d_ij)/h_j)²) via log-sum-exp.
        let mut exponents = Vec::with_capacity(self.data.len() / self.dim);
        for row in self.data.chunks(self.dim) {
            let e: f64 = row
                .iter()
                .zip(x)
                .zip(&self.bandwidth)
                .map(|((&r, &v), &h)| {
                    let z = (v - r) / h;
                    z * z
                })
                .sum();
            exponents.push(-0.5 * e);
        }
        let max = exponents.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = exponents.iter().map(|&e| (e - max).exp()).sum();
        max + sum.ln() + self.log_norm
    }
}

impl Detector for KdeDetector {
    fn n_channels(&self) -> usize {
        1
    }

    fn channel_names(&self) -> Vec<String> {
        vec!["kde-novelty".to_string()]
    }

    fn fit(&mut self, reference: &ReferenceProfile) {
        let d = self.dim;
        assert_eq!(reference.dim(), d, "profile width mismatch");
        let n = reference.len();
        assert!(n >= 4, "reference too small for KDE");
        self.data = reference.data().to_vec();

        // Per-dimension std, with a floor so constant channels do not
        // produce zero bandwidth.
        let mut mean = vec![0.0; d];
        for row in self.data.chunks(d) {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0; d];
        for row in self.data.chunks(d) {
            for ((v, &x), &m) in var.iter_mut().zip(row).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        let spread: f64 = var.iter().sum::<f64>() / ((n - 1) as f64 * d as f64);
        let floor = (spread.sqrt() * 0.05).max(1e-9);

        // Silverman's rule for multivariate product kernels:
        // h_j = σ_j (4 / ((d + 2) n))^(1/(d+4)).
        let silverman = (4.0 / ((d as f64 + 2.0) * n as f64)).powf(1.0 / (d as f64 + 4.0));
        self.bandwidth = var
            .iter()
            .map(|&v| {
                let sigma = (v / (n - 1) as f64).sqrt().max(floor);
                sigma * silverman * self.bandwidth_scale
            })
            .collect();

        let ln_2pi_half = 0.5 * (2.0 * std::f64::consts::PI).ln();
        self.log_norm =
            -(n as f64).ln() - self.bandwidth.iter().map(|h| h.ln() + ln_2pi_half).sum::<f64>();
    }

    fn score(&mut self, x: &[f64]) -> Vec<f64> {
        if self.data.is_empty() {
            return vec![f64::NAN];
        }
        vec![-self.log_density(x)]
    }

    fn is_fitted(&self) -> bool {
        !self.data.is_empty()
    }

    fn reset(&mut self) {
        self.data.clear();
        self.bandwidth.clear();
        self.log_norm = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-cluster profile around (0, 0) and (4, 4).
    fn clustered_profile(n: usize) -> ReferenceProfile {
        let mut p = ReferenceProfile::new(2, n);
        for i in 0..n {
            let jitter = ((i * 2_654_435_761) % 1_000) as f64 / 1_000.0 - 0.5;
            let centre = if i % 2 == 0 { 0.0 } else { 4.0 };
            p.push(&[centre + jitter, centre - jitter]);
        }
        p
    }

    #[test]
    fn dense_regions_score_lower_than_sparse() {
        let mut d = KdeDetector::new(2, &DetectorParams::default());
        d.fit(&clustered_profile(200));
        let in_cluster = d.score(&[0.0, 0.0])[0];
        let between = d.score(&[2.0, 2.0])[0];
        let far = d.score(&[10.0, -10.0])[0];
        assert!(in_cluster < between, "{in_cluster} < {between}");
        assert!(between < far, "{between} < {far}");
    }

    #[test]
    fn log_density_integrates_reasonably_in_1d_slices() {
        // The 2-D density along a fine grid over the support should have
        // total mass close to 1 (Riemann sum sanity check).
        let mut d = KdeDetector::new(2, &DetectorParams::default());
        d.fit(&clustered_profile(120));
        let step = 0.1;
        let mut mass = 0.0;
        let mut x = -4.0;
        while x < 8.0 {
            let mut y = -4.0;
            while y < 8.0 {
                mass += d.log_density(&[x, y]).exp() * step * step;
                y += step;
            }
            x += step;
        }
        assert!((mass - 1.0).abs() < 0.05, "KDE mass {mass}");
    }

    #[test]
    fn constant_channel_gets_floored_bandwidth() {
        let mut p = ReferenceProfile::new(2, 50);
        for i in 0..50 {
            p.push(&[5.0, (i as f64 * 0.3).sin()]);
        }
        let mut d = KdeDetector::new(2, &DetectorParams::default());
        d.fit(&p);
        assert!(d.bandwidths()[0] > 0.0, "no zero bandwidth");
        assert!(d.score(&[5.0, 0.0])[0].is_finite());
    }

    #[test]
    fn bandwidth_scale_smooths() {
        let profile = clustered_profile(100);
        let mut sharp = KdeDetector::with_bandwidth_scale(2, 0.5);
        let mut smooth = KdeDetector::with_bandwidth_scale(2, 3.0);
        sharp.fit(&profile);
        smooth.fit(&profile);
        // Between the clusters the smoother estimate assigns more density
        // (lower novelty).
        assert!(smooth.score(&[2.0, 2.0])[0] < sharp.score(&[2.0, 2.0])[0]);
    }

    #[test]
    fn unfitted_nan_and_reset() {
        let mut d = KdeDetector::new(2, &DetectorParams::default());
        assert!(d.score(&[0.0, 0.0])[0].is_nan());
        d.fit(&clustered_profile(40));
        assert!(d.is_fitted());
        assert!(!d.uses_constant_threshold());
        d.reset();
        assert!(!d.is_fitted());
    }
}

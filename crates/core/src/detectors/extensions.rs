//! Extension detectors beyond the paper's four: the isolation forest the
//! paper cites through Khan et al. \[12\] ("such a method could become an
//! option for the third step") and the per-feature MLP regression scheme
//! of Massaro et al. \[15\] that its related-work section discusses. Both
//! are exercised by the `exp_ablations` experiment.

use super::{Detector, DetectorParams};
use crate::reference::ReferenceProfile;
use navarchos_iforest::{IsolationForest, IsolationForestParams};
use navarchos_nnet::{MlpParams, MlpRegressor};

/// Isolation-forest detector: one calibrated score channel in (0, 1),
/// thresholded with constant values like Grand.
#[derive(Debug)]
pub struct IsolationForestDetector {
    dim: usize,
    params: IsolationForestParams,
    forest: Option<IsolationForest>,
}

impl IsolationForestDetector {
    /// Creates an unfitted detector for `dim`-dimensional samples.
    pub fn new(dim: usize, params: &DetectorParams) -> Self {
        assert!(dim > 0);
        IsolationForestDetector {
            dim,
            params: IsolationForestParams { seed: params.seed, ..Default::default() },
            forest: None,
        }
    }
}

impl Detector for IsolationForestDetector {
    fn n_channels(&self) -> usize {
        1
    }

    fn channel_names(&self) -> Vec<String> {
        vec!["isolation-forest".to_string()]
    }

    fn fit(&mut self, reference: &ReferenceProfile) {
        assert_eq!(reference.dim(), self.dim, "profile width mismatch");
        assert!(reference.len() >= 4, "reference too small");
        self.forest = Some(IsolationForest::fit(reference.data(), self.dim, &self.params));
    }

    fn score(&mut self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.dim);
        match &self.forest {
            Some(f) => vec![f.score(x)],
            None => vec![f64::NAN],
        }
    }

    fn is_fitted(&self) -> bool {
        self.forest.is_some()
    }

    fn reset(&mut self) {
        self.forest = None;
    }

    fn uses_constant_threshold(&self) -> bool {
        true
    }
}

/// Per-feature MLP regression detector: like the XGBoost detector, one
/// regressor per feature predicts it from the remaining features; the
/// absolute prediction error is the per-feature anomaly score.
#[derive(Debug)]
pub struct MlpDetector {
    names: Vec<String>,
    params: MlpParams,
    models: Vec<MlpRegressor>,
    scratch: Vec<f64>,
}

impl MlpDetector {
    /// Creates an unfitted detector for the named features.
    pub fn new<S: AsRef<str>>(names: &[S], params: &DetectorParams) -> Self {
        assert!(names.len() >= 2, "per-feature regression needs at least 2 features");
        MlpDetector {
            names: names.iter().map(|s| s.as_ref().to_string()).collect(),
            params: MlpParams { seed: params.seed, ..Default::default() },
            models: Vec::new(),
            scratch: Vec::new(),
        }
    }
}

impl Detector for MlpDetector {
    fn n_channels(&self) -> usize {
        self.names.len()
    }

    fn channel_names(&self) -> Vec<String> {
        self.names.clone()
    }

    fn fit(&mut self, reference: &ReferenceProfile) {
        let f = self.names.len();
        assert_eq!(reference.dim(), f, "profile width mismatch");
        assert!(reference.len() >= 8, "reference too small for regression");
        let n = reference.len();
        self.models.clear();
        let mut x = Vec::with_capacity(n * (f - 1));
        let mut y = Vec::with_capacity(n);
        for j in 0..f {
            x.clear();
            y.clear();
            for i in 0..n {
                let row = reference.sample(i);
                y.push(row[j]);
                x.extend(row.iter().enumerate().filter(|&(c, _)| c != j).map(|(_, &v)| v));
            }
            self.models.push(MlpRegressor::fit(&x, f - 1, &y, &self.params));
        }
    }

    fn score(&mut self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.names.len());
        if self.models.is_empty() {
            return vec![f64::NAN; self.names.len()];
        }
        let mut out = Vec::with_capacity(self.names.len());
        for j in 0..self.names.len() {
            self.scratch.clear();
            self.scratch.extend(x.iter().enumerate().filter(|&(i, _)| i != j).map(|(_, &v)| v));
            out.push((self.models[j].predict(&self.scratch) - x[j]).abs());
        }
        out
    }

    fn is_fitted(&self) -> bool {
        !self.models.is_empty()
    }

    fn reset(&mut self) {
        self.models.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Structured profile: b = 2a, c = −a.
    fn structured_profile(n: usize) -> ReferenceProfile {
        let mut p = ReferenceProfile::new(3, n);
        for i in 0..n {
            let a = (i as f64 * 0.31).sin() * 2.0;
            p.push(&[a, 2.0 * a, -a]);
        }
        p
    }

    #[test]
    fn iforest_flags_out_of_manifold_points() {
        let mut d = IsolationForestDetector::new(3, &DetectorParams::default());
        d.fit(&structured_profile(200));
        let normal = d.score(&[1.0, 2.0, -1.0])[0];
        let weird = d.score(&[1.0, -2.0, 5.0])[0];
        assert!(weird > normal, "off-manifold {weird} vs on-manifold {normal}");
        assert!(d.uses_constant_threshold());
    }

    #[test]
    fn iforest_reset_and_unfitted() {
        let mut d = IsolationForestDetector::new(3, &DetectorParams::default());
        assert!(d.score(&[0.0; 3])[0].is_nan());
        d.fit(&structured_profile(50));
        assert!(d.is_fitted());
        d.reset();
        assert!(!d.is_fitted());
    }

    #[test]
    fn mlp_blames_broken_feature() {
        let mut d = MlpDetector::new(&["a", "b", "c"], &DetectorParams::default());
        d.fit(&structured_profile(300));
        let ok = d.score(&[1.0, 2.0, -1.0]);
        assert!(ok.iter().all(|&s| s < 0.5), "consistent sample scores low: {ok:?}");
        let broken = d.score(&[1.0, -2.0, -1.0]);
        assert!(broken[1] > 1.0, "b channel flags the break: {broken:?}");
        assert!(broken[1] > broken[2], "b blamed most: {broken:?}");
    }

    #[test]
    fn mlp_channels() {
        let d = MlpDetector::new(&["x", "y"], &DetectorParams::default());
        assert_eq!(d.n_channels(), 2);
        assert!(!d.uses_constant_threshold());
    }
}

//! Scoped fork-join parallelism for the fleet-scale loops.
//!
//! Every per-vehicle computation in the workspace — batch scoring, the
//! fleet-level Grand ablation, daily-series construction — is
//! embarrassingly parallel: vehicles never share mutable state. Before
//! this module each call site hand-rolled its own `std::thread::scope`
//! round-robin loop; [`par_map`] centralises that pattern (std-only, no
//! thread-pool dependency) so the partitioning, ordering and panic
//! propagation are written once.

/// Maps `f` over `items` in parallel and returns the results in input
/// order.
///
/// Work is partitioned round-robin over `min(available_parallelism,
/// items.len())` scoped threads — per-vehicle workloads vary smoothly
/// along the fleet (history length decides cost), so round-robin balances
/// within a few percent without a work-stealing queue. `f` receives
/// `(index, &item)`; a panic in any worker is resumed on the caller's
/// thread after the scope joins.
///
/// On a single-core host the scope degenerates to one worker thread, so
/// the overhead over a serial loop is one spawn/join per call.
/// Sampling mask for per-item task timing: coarse fan-outs (fleets of
/// vehicles) time every item so the `par_map.task_ns` histogram keeps its
/// one-entry-per-task semantics; fine-grained fan-outs over many cheap
/// items time 1 in 8 so the clock reads cannot dominate the work.
fn task_sample_mask(n: usize) -> usize {
    if n > 256 {
        7
    } else {
        0
    }
}

pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).clamp(1, n);

    // Task timing is resolved once per call, not per item; each worker
    // accumulates into a thread-local `BatchedRecorder` (plain locals, no
    // atomics) flushed once when the worker finishes. Coarse fan-outs
    // (fleets of vehicles) time every item; fine-grained fan-outs over
    // many cheap items sample 1 in 8 so the probe cannot dominate the
    // work. Disabled, `task_ns` is `None` and each item pays one branch.
    let span = navarchos_obs::span("par_map");
    // Workers inherit this id so their spans parent onto the `par_map`
    // frame: a traced evaluate folds into one tree, not a forest with one
    // root per worker thread (ROADMAP: per-thread span parenting).
    let parent_id = span.id();
    let task_ns =
        navarchos_obs::metrics_enabled().then(|| navarchos_obs::histogram("par_map.task_ns"));
    let item_mask = task_sample_mask(n);

    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let f = &f;
        let task_ns = &task_ns;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let _worker = navarchos_obs::span_child_of("par_map.worker", parent_id);
                    let mut recorder = task_ns
                        .as_ref()
                        .map(|h| navarchos_obs::BatchedRecorder::new(std::sync::Arc::clone(h)));
                    let mut out = Vec::new();
                    for (i, item) in items.iter().enumerate().skip(t).step_by(threads) {
                        match &mut recorder {
                            Some(rec) if i & item_mask == 0 => {
                                let t0 = std::time::Instant::now();
                                let r = f(i, item);
                                rec.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(0));
                                out.push((i, r));
                            }
                            _ => out.push((i, f(i, item))),
                        }
                    }
                    // Recorder drop also flushes; explicit for clarity.
                    if let Some(mut rec) = recorder {
                        rec.flush();
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    drop(span);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Maps `f` over `items` in parallel with exclusive (`&mut`) access to
/// each item, returning the results in input order.
///
/// The companion to [`par_map`] for fan-outs over *stateful* workers — the
/// ingest engine's shards each own per-vehicle pipelines that must be
/// mutated in place. Items are partitioned into contiguous chunks via
/// `split_at_mut`, one scoped thread per chunk, so the borrow checker can
/// prove the `&mut` slices are disjoint. `f` receives `(index, &mut item)`
/// with `index` relative to `items`; a panic in any worker is resumed on
/// the caller's thread after the scope joins. Worker spans parent onto the
/// `par_map_mut` span, same as [`par_map`].
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).clamp(1, n);
    let span = navarchos_obs::span("par_map_mut");
    let parent_id = span.id();

    // Contiguous chunking (ceil(n / threads) per chunk) instead of
    // round-robin: disjoint `&mut` sub-slices are free; an index shuffle
    // would need unsafe or per-item locks.
    let chunk_len = n.div_ceil(threads);
    let results: Vec<Vec<R>> = std::thread::scope(|scope| {
        let f = &f;
        let mut rest = items;
        let mut offset = 0;
        let mut handles = Vec::with_capacity(threads);
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = offset;
            offset += take;
            handles.push(scope.spawn(move || {
                let _worker = navarchos_obs::span_child_of("par_map.worker", parent_id);
                chunk.iter_mut().enumerate().map(|(i, item)| f(base + i, item)).collect()
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    drop(span);
    // Chunks are contiguous and collected in spawn order, so flattening
    // restores input order without an index sort.
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<usize> = (0..57).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..57).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        let out: Vec<u8> = par_map(&items, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline_shape() {
        let out = par_map(&[41], |_, &x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(&[1, 2, 3], |_, &x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(result.is_err(), "panic must cross the scope");
    }

    #[test]
    fn sample_mask_spares_small_fanouts() {
        assert_eq!(task_sample_mask(1), 0);
        assert_eq!(task_sample_mask(40), 0);
        assert_eq!(task_sample_mask(256), 0);
        assert_eq!(task_sample_mask(257), 7);
        assert_eq!(task_sample_mask(100_000), 7);
    }

    #[test]
    fn small_fanouts_record_one_timing_per_task() {
        navarchos_obs::set_metrics_enabled(true);
        let h = navarchos_obs::histogram("par_map.task_ns");
        let before = h.snapshot().count;
        let items: Vec<usize> = (0..40).collect();
        let _ = par_map(&items, |_, &x| x);
        let after = h.snapshot().count;
        // >= because other tests in this binary may also record; the
        // batched recorders must have flushed all 40 samples by return.
        assert!(after >= before + 40, "{before} -> {after}");
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_preserves_order() {
        let mut items: Vec<u64> = (0..137).collect();
        let out = par_map_mut(&mut items, |i, x| {
            assert_eq!(i as u64, *x);
            *x += 1;
            *x * 10
        });
        assert_eq!(items, (1..138).collect::<Vec<u64>>());
        assert_eq!(out, (1..138).map(|x| x * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn par_map_mut_empty_and_single() {
        let mut empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = par_map_mut(&mut empty, |_, &mut x| x);
        assert!(out.is_empty());
        let mut one = vec![41u8];
        assert_eq!(par_map_mut(&mut one, |_, x| *x + 1), vec![42]);
    }

    #[test]
    fn par_map_mut_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let mut items = vec![1, 2, 3];
            par_map_mut(&mut items, |_, x| {
                assert!(*x != 2, "boom");
                *x
            })
        });
        assert!(result.is_err(), "panic must cross the scope");
    }

    #[test]
    fn results_match_serial_map() {
        let items: Vec<f64> = (0..200).map(|i| i as f64 * 0.5).collect();
        let par = par_map(&items, |_, &x| x.sin() + x.sqrt());
        let ser: Vec<f64> = items.iter().map(|&x| x.sin() + x.sqrt()).collect();
        assert_eq!(par, ser, "bit-identical to the serial loop");
    }
}

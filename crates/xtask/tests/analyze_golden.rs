//! Golden tests for `xtask analyze` (L8–L11).
//!
//! Two layers: the checked-in workspace must analyze clean with the
//! checked-in waiver file (the live gate), and each seeded-violation
//! fixture under `crates/xtask/fixtures/` must fire exactly its lint while
//! the `clean` fixture stays quiet. The fixtures are what CI runs the
//! release binary against, so a resolution regression that silently stops
//! finding violations fails here first.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run_fixture(name: &str) -> xtask::Report {
    let root = repo_root().join("crates/xtask/fixtures").join(name);
    let waivers = root.join("waivers.toml");
    xtask::run_analyze(&root, &waivers).unwrap_or_else(|e| panic!("fixture {name} must run: {e}"))
}

fn rendered(report: &xtask::Report) -> Vec<String> {
    report
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message))
        .collect()
}

#[test]
fn workspace_analyzes_clean_with_checked_in_waivers() {
    let root = repo_root();
    let waivers = root.join("crates/xtask/lint-waivers.toml");
    let report = xtask::run_analyze(&root, &waivers).expect("analyze run must not error");

    assert!(
        report.waiver_errors.is_empty(),
        "waiver file problems:\n{}",
        report.waiver_errors.join("\n")
    );
    let lines = rendered(&report);
    assert!(
        lines.is_empty(),
        "xtask analyze found {} unwaived finding(s) on the current tree:\n{}",
        lines.len(),
        lines.join("\n")
    );
    // The relaxed-RMW metric sites are waiver-only debt; if this drops to
    // zero the waiver file and this floor should shrink together.
    assert!(report.waived >= 10, "expected the waived RMW sites, saw {}", report.waived);
    assert!(report.files_scanned > 50, "walker saw only {} files", report.files_scanned);
}

#[test]
fn clean_fixture_is_quiet() {
    let report = run_fixture("clean");
    assert!(report.clean(), "clean fixture must pass:\n{}", rendered(&report).join("\n"));
    assert_eq!(report.findings.len(), 0);
    assert_eq!(report.waiver_errors.len(), 0);
}

#[test]
fn l8_fixture_fires_both_directions() {
    let report = run_fixture("l8");
    let lines = rendered(&report);
    assert!(!report.clean());
    assert!(
        lines.iter().any(|l| l.contains("[L8]") && l.contains("demo.recrods")),
        "unregistered mint not reported:\n{}",
        lines.join("\n")
    );
    assert!(
        lines.iter().any(|l| l.contains("[L8]") && l.contains("never created")),
        "unused registry entry not reported:\n{}",
        lines.join("\n")
    );
    assert!(lines.iter().all(|l| l.contains("[L8]")), "only L8 may fire:\n{}", lines.join("\n"));
}

#[test]
fn l9_fixture_fires_on_relaxed_rmw() {
    let report = run_fixture("l9");
    let lines = rendered(&report);
    assert_eq!(lines.len(), 1, "{}", lines.join("\n"));
    assert!(lines[0].contains("[L9]"));
    assert!(lines[0].contains("fetch_add"));
}

#[test]
fn l10_fixture_reports_the_full_allocation_path() {
    let report = run_fixture("l10");
    let lines = rendered(&report);
    assert_eq!(lines.len(), 1, "{}", lines.join("\n"));
    assert!(lines[0].contains("[L10]"));
    assert!(lines[0].contains("Kern::step → relay → describe"), "path missing from: {}", lines[0]);
    assert!(lines[0].contains("format!"));
}

#[test]
fn l11_fixture_reports_the_full_panic_path() {
    let report = run_fixture("l11");
    let lines = rendered(&report);
    assert_eq!(lines.len(), 1, "{}", lines.join("\n"));
    assert!(lines[0].contains("[L11]"));
    assert!(lines[0].contains("Kern::step → relay → pick"), "path missing from: {}", lines[0]);
    assert!(lines[0].contains(".unwrap()"));
}

//! The tree-level gate: the checked-in workspace must lint clean with the
//! checked-in waiver file. A failure here means a change introduced a new
//! finding (fix it or add a per-site waiver with a reason) or fixed a
//! waived site without deleting its now-stale waiver entry.

use std::path::Path;

#[test]
fn workspace_lints_clean_with_checked_in_waivers() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let waivers = root.join("crates/xtask/lint-waivers.toml");
    let report = xtask::run_lint(&root, &waivers).expect("lint run must not error");

    assert!(
        report.waiver_errors.is_empty(),
        "waiver file problems:\n{}",
        report.waiver_errors.join("\n")
    );
    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "xtask lint found {} unwaived finding(s) on the current tree:\n{}",
        rendered.len(),
        rendered.join("\n")
    );
    assert!(report.files_scanned > 50, "walker saw only {} files", report.files_scanned);
}

//! Property tests for the analyzer front end: the lexer + parser must
//! never panic, whatever bytes they are fed, and on well-formed input the
//! item spans must round-trip (every generated function is found, in
//! order, with a body range that really brackets its tokens).

use proptest::prelude::*;
use xtask::lexer::{lex, TokKind};
use xtask::parser::parse_file;

/// Fragments biased toward the constructs the parser special-cases:
/// generics, turbofish, attributes, nesting, strings, and stray closers.
const FRAGMENTS: &[&str] = &[
    "fn",
    "impl",
    "trait",
    "mod",
    "for",
    "self",
    "Self",
    "let",
    "match",
    "{",
    "}",
    "(",
    ")",
    "<",
    ">",
    ">>",
    "->",
    "=>",
    "::",
    "::<",
    ";",
    ",",
    "!",
    "#",
    "[",
    "]",
    "&",
    "'a",
    "'static",
    "#[test]",
    "#[cfg(test)]",
    "ident",
    "Type",
    "x7",
    "_",
    "1",
    "1.5e3",
    "0xff",
    "\"s\"",
    "\"a{b}c\"",
    "r#\"raw\"#",
    "b\"bytes\"",
    "'c'",
    "//line\n",
    "/*block*/",
    "where",
    "pub",
    "unsafe",
    "dyn",
    "async",
];

fn fragment() -> impl Strategy<Value = &'static str> {
    (0usize..FRAGMENTS.len()).prop_map(|i| FRAGMENTS[i])
}

/// Arbitrary (possibly garbage) unicode text, surrogates skipped.
fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x110000, 0..200)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

const NAME_POOL: &[&str] =
    &["alpha", "beta", "gamma", "push", "drain", "step_impl", "fn_like", "x9", "record"];

proptest! {
    /// Arbitrary unicode never panics the front end.
    #[test]
    fn lex_parse_total_on_arbitrary_strings(src in arb_text()) {
        let lexed = lex(&src);
        let _ = parse_file(&lexed.toks);
    }

    /// Rust-shaped token soup — unbalanced braces, orphan generics, raw
    /// strings — never panics, and every reported span stays in bounds.
    #[test]
    fn parse_spans_in_bounds_on_token_soup(frags in prop::collection::vec(fragment(), 0..60)) {
        let src = frags.join(" ");
        let lexed = lex(&src);
        let items = parse_file(&lexed.toks);
        for item in &items {
            prop_assert!(item.fn_tok < lexed.toks.len(), "fn_tok out of bounds in {src:?}");
            prop_assert_eq!(lexed.toks[item.fn_tok].text.as_str(), "fn");
            prop_assert_eq!(lexed.toks[item.fn_tok].kind, TokKind::Ident);
            if let Some((open, close)) = item.body {
                prop_assert!(open <= close, "inverted body range in {src:?}");
                prop_assert!(close < lexed.toks.len(), "body past EOF in {src:?}");
                prop_assert_eq!(lexed.toks[open].text.as_str(), "{");
                // An unbalanced `{` is EOF-closed by design (the parser
                // mirrors the lexer's truncated-input philosophy), so the
                // close is either a real `}` or the very last token.
                prop_assert!(
                    lexed.toks[close].is_punct("}") || close == lexed.toks.len() - 1,
                    "close neither brace nor EOF in {src:?}"
                );
                for call in &item.calls {
                    prop_assert!(call.line >= lexed.toks[open].line);
                    prop_assert!(call.line <= lexed.toks[close].line);
                }
            }
        }
    }

    /// Item spans round-trip: a generated file of free fns and methods
    /// parses back to exactly those items, in source order, with the
    /// methods carrying their impl type.
    #[test]
    fn item_names_round_trip(
        specs in prop::collection::vec(
            (0usize..NAME_POOL.len(), 0u8..2, 0u8..3),
            1..8,
        ),
    ) {
        let mut src = String::new();
        let mut want: Vec<(String, Option<String>)> = Vec::new();
        for (i, &(name_ix, method, filler)) in specs.iter().enumerate() {
            let name = NAME_POOL[name_ix];
            let body = match filler {
                0 => "let x = 1;".to_string(),
                1 => format!("helper({i});"),
                _ => format!("if x < {i} {{ inner::<u32>(); }}"),
            };
            if method == 1 {
                src.push_str(&format!("impl T{i} {{ pub fn {name}(&self) {{ {body} }} }}\n"));
                want.push((name.to_string(), Some(format!("T{i}"))));
            } else {
                src.push_str(&format!("fn {name}() {{ {body} }}\n"));
                want.push((name.to_string(), None));
            }
        }
        let lexed = lex(&src);
        let items = parse_file(&lexed.toks);
        let got: Vec<(String, Option<String>)> =
            items.iter().map(|f| (f.name.clone(), f.self_ty.clone())).collect();
        prop_assert_eq!(got, want, "parse of:\n{}", src);
    }
}

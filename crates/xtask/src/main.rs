//! CLI entry point: `cargo run -p xtask -- lint [--root DIR] [--waivers FILE]`,
//! `cargo run -p xtask -- analyze [--root DIR] [--waivers FILE]`,
//! `cargo run -p xtask -- flamegraph --trace FILE [--out FILE]`, or
//! `cargo run -p xtask -- alarm-latency --journal FILE`.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo run -p xtask -- lint [--root DIR] [--waivers FILE]
       cargo run -p xtask -- analyze [--root DIR] [--waivers FILE]
       cargo run -p xtask -- flamegraph --trace FILE [--out FILE]
       cargo run -p xtask -- alarm-latency --journal FILE

lint           runs the workspace's token-level domain lints (L1-L7)
analyze        runs the cross-function analyses (L8-L11): metric-name
               registry, atomic-ordering audit, and call-graph allocation /
               panic-freedom for the registered kernel roots
flamegraph     converts a NAVARCHOS_LOG=ndjson:FILE trace into inferno-style
               folded stacks (`frames;joined;by;semicolon <self_ns>`),
               written to --out or stdout
alarm-latency  summarises an alarm-provenance journal (NDJSON written by
               `navarchos serve-replay --journal FILE`): per-stage
               p50/p90/p99 of the arrival-to-emission latency, split into
               reorder-buffer wait and pipeline time

Exit codes:
  0  clean / converted
  1  findings or stale waivers
  2  usage / configuration error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_check("lint", xtask::run_lint, &args[1..]),
        Some("analyze") => cmd_check("analyze", xtask::run_analyze, &args[1..]),
        Some("flamegraph") => cmd_flamegraph(&args[1..]),
        Some("alarm-latency") => cmd_alarm_latency(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_check(
    name: &str,
    run: fn(&std::path::Path, &std::path::Path) -> Result<xtask::Report, String>,
    args: &[String],
) -> ExitCode {
    // Default root: the workspace this xtask is compiled inside.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut waiver_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("--root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--waivers" => match it.next() {
                Some(v) => waiver_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--waivers needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot resolve workspace root {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let waiver_path = waiver_path.unwrap_or_else(|| root.join("crates/xtask/lint-waivers.toml"));

    let report = match run(&root, &waiver_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask {name}: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
    }
    for e in &report.waiver_errors {
        println!("{e}");
    }
    println!(
        "xtask {name}: {} file(s) scanned, {} finding(s), {} waived, {} waiver error(s)",
        report.files_scanned,
        report.findings.len(),
        report.waived,
        report.waiver_errors.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_flamegraph(args: &[String]) -> ExitCode {
    let mut trace: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => match it.next() {
                Some(v) => trace = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--trace needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(v) => out_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--out needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(trace) = trace else {
        eprintln!("flamegraph needs --trace FILE\n{USAGE}");
        return ExitCode::from(2);
    };
    let ndjson = match std::fs::read_to_string(&trace) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read trace {}: {e}", trace.display());
            return ExitCode::from(2);
        }
    };
    let (folded, spans) = match navarchos_obs::fold_trace(&ndjson) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("malformed trace {}: {e}", trace.display());
            return ExitCode::from(1);
        }
    };
    let rendered = navarchos_obs::render_folded(&folded);
    match &out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &rendered) {
                eprintln!("cannot write {}: {e}", p.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "flamegraph: {spans} span(s) -> {} folded stack(s) -> {}",
                folded.len(),
                p.display()
            );
        }
        None => {
            print!("{rendered}");
            eprintln!("flamegraph: {spans} span(s) -> {} folded stack(s)", folded.len());
        }
    }
    ExitCode::SUCCESS
}

/// Exact nearest-rank quantile of a sorted sample (`q` in `[0, 1]`).
fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Renders nanoseconds at a human scale (ns / µs / ms / s).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.2} µs", ns as f64 / 1.0e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1.0e6),
        _ => format!("{:.3} s", ns as f64 / 1.0e9),
    }
}

/// `alarm-latency --journal FILE`: summarises the NDJSON alarm-provenance
/// journal `navarchos serve-replay --journal` writes — one object per
/// alarm with `arrival_ns` (record entered the engine), `release_ns`
/// (reorder buffer released it to the pipeline) and `emit_ns` (alarm
/// raised). Prints exact p50/p90/p99 per stage so an operator can see
/// whether alarm latency is spent waiting out the lateness horizon or
/// scoring.
fn cmd_alarm_latency(args: &[String]) -> ExitCode {
    let mut journal: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--journal" => match it.next() {
                Some(v) => journal = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--journal needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(journal) = journal else {
        eprintln!("alarm-latency needs --journal FILE\n{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&journal) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read journal {}: {e}", journal.display());
            return ExitCode::from(2);
        }
    };

    // A journal may be empty (no alarms raised) or end in a truncated line
    // (the writer was killed mid-append). Neither is a reason to fail a
    // post-mortem tool: unusable lines are warned about and skipped, and an
    // empty tally exits 0 with a message.
    let mut buffer_wait: Vec<u64> = Vec::new();
    let mut pipeline: Vec<u64> = Vec::new();
    let mut total: Vec<u64> = Vec::new();
    let mut skipped = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = match navarchos_obs::json::parse(line) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{}:{}: skipping malformed journal line: {e}", journal.display(), i + 1);
                skipped += 1;
                continue;
            }
        };
        let field = |name: &str| -> Option<u64> {
            doc.get(name).and_then(navarchos_obs::Json::as_num).map(|v| v.max(0.0) as u64)
        };
        let (Some(arrival), Some(release), Some(emit)) =
            (field("arrival_ns"), field("release_ns"), field("emit_ns"))
        else {
            eprintln!(
                "{}:{}: skipping journal line lacking arrival_ns/release_ns/emit_ns",
                journal.display(),
                i + 1
            );
            skipped += 1;
            continue;
        };
        buffer_wait.push(release.saturating_sub(arrival));
        pipeline.push(emit.saturating_sub(release));
        total.push(emit.saturating_sub(arrival));
    }
    if skipped > 0 {
        eprintln!("alarm-latency: skipped {skipped} unusable line(s)");
    }
    if total.is_empty() {
        println!("alarm-latency: no usable alarms in {}", journal.display());
        return ExitCode::SUCCESS;
    }
    buffer_wait.sort_unstable();
    pipeline.sort_unstable();
    total.sort_unstable();

    println!("alarm-latency: {} alarm(s) in {}", total.len(), journal.display());
    println!("  {:<12} {:>12} {:>12} {:>12}", "stage", "p50", "p90", "p99");
    for (name, stage) in [("buffer_wait", &buffer_wait), ("pipeline", &pipeline), ("total", &total)]
    {
        println!(
            "  {:<12} {:>12} {:>12} {:>12}",
            name,
            fmt_ns(quantile_ns(stage, 0.50)),
            fmt_ns(quantile_ns(stage, 0.90)),
            fmt_ns(quantile_ns(stage, 0.99)),
        );
    }
    ExitCode::SUCCESS
}

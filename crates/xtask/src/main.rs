//! CLI entry point: `cargo run -p xtask -- lint [--root DIR] [--waivers FILE]`,
//! `cargo run -p xtask -- analyze [--root DIR] [--waivers FILE]`, or
//! `cargo run -p xtask -- flamegraph --trace FILE [--out FILE]`.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo run -p xtask -- lint [--root DIR] [--waivers FILE]
       cargo run -p xtask -- analyze [--root DIR] [--waivers FILE]
       cargo run -p xtask -- flamegraph --trace FILE [--out FILE]

lint        runs the workspace's token-level domain lints (L1-L7)
analyze     runs the cross-function analyses (L8-L11): metric-name
            registry, atomic-ordering audit, and call-graph allocation /
            panic-freedom for the registered kernel roots
flamegraph  converts a NAVARCHOS_LOG=ndjson:FILE trace into inferno-style
            folded stacks (`frames;joined;by;semicolon <self_ns>`), written
            to --out or stdout

Exit codes:
  0  clean / converted
  1  findings or stale waivers
  2  usage / configuration error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_check("lint", xtask::run_lint, &args[1..]),
        Some("analyze") => cmd_check("analyze", xtask::run_analyze, &args[1..]),
        Some("flamegraph") => cmd_flamegraph(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_check(
    name: &str,
    run: fn(&std::path::Path, &std::path::Path) -> Result<xtask::Report, String>,
    args: &[String],
) -> ExitCode {
    // Default root: the workspace this xtask is compiled inside.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut waiver_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("--root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--waivers" => match it.next() {
                Some(v) => waiver_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--waivers needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot resolve workspace root {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let waiver_path = waiver_path.unwrap_or_else(|| root.join("crates/xtask/lint-waivers.toml"));

    let report = match run(&root, &waiver_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask {name}: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
    }
    for e in &report.waiver_errors {
        println!("{e}");
    }
    println!(
        "xtask {name}: {} file(s) scanned, {} finding(s), {} waived, {} waiver error(s)",
        report.files_scanned,
        report.findings.len(),
        report.waived,
        report.waiver_errors.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_flamegraph(args: &[String]) -> ExitCode {
    let mut trace: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => match it.next() {
                Some(v) => trace = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--trace needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(v) => out_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--out needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(trace) = trace else {
        eprintln!("flamegraph needs --trace FILE\n{USAGE}");
        return ExitCode::from(2);
    };
    let ndjson = match std::fs::read_to_string(&trace) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read trace {}: {e}", trace.display());
            return ExitCode::from(2);
        }
    };
    let (folded, spans) = match navarchos_obs::fold_trace(&ndjson) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("malformed trace {}: {e}", trace.display());
            return ExitCode::from(1);
        }
    };
    let rendered = navarchos_obs::render_folded(&folded);
    match &out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, &rendered) {
                eprintln!("cannot write {}: {e}", p.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "flamegraph: {spans} span(s) -> {} folded stack(s) -> {}",
                folded.len(),
                p.display()
            );
        }
        None => {
            print!("{rendered}");
            eprintln!("flamegraph: {spans} span(s) -> {} folded stack(s)", folded.len());
        }
    }
    ExitCode::SUCCESS
}

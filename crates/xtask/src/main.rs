//! CLI entry point: `cargo run -p xtask -- lint [--root DIR] [--waivers FILE]`.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo run -p xtask -- lint [--root DIR] [--waivers FILE]

Runs the workspace's domain lints (L1-L6). Exit codes:
  0  clean
  1  findings or stale waivers
  2  usage / configuration error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    if it.next().map(String::as_str) != Some("lint") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    // Default root: the workspace this xtask is compiled inside.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut waiver_path: Option<PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("--root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--waivers" => match it.next() {
                Some(v) => waiver_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("--waivers needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot resolve workspace root {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let waiver_path = waiver_path.unwrap_or_else(|| root.join("crates/xtask/lint-waivers.toml"));

    let report = match xtask::run_lint(&root, &waiver_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
    }
    for e in &report.waiver_errors {
        println!("{e}");
    }
    println!(
        "xtask lint: {} file(s) scanned, {} finding(s), {} waived, {} waiver error(s)",
        report.files_scanned,
        report.findings.len(),
        report.waived,
        report.waiver_errors.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

//! The domain-specific token lints (L1–L3, L5, L6). Registry-completeness
//! (L4) lives in [`crate::registry`] because it cross-references files
//! rather than scanning tokens.

use crate::lexer::{Lexed, Tok, TokKind};

/// One diagnostic produced by a lint.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint id (`"L1"`...).
    pub lint: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Explanation with a suggested fix.
    pub message: String,
}

impl Finding {
    fn new(lint: &'static str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Finding { lint, file: file.to_string(), line, message: message.into() }
    }
}

/// Returns the token stream with `#[cfg(test)]`/`#[test]` items removed, so
/// the panic-policy lints only see code that ships in the library.
pub fn strip_test_code(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            let (attr_end, is_test) = scan_attribute(toks, i + 1);
            if is_test {
                // Skip this attribute, any further attributes, then the item.
                i = attr_end;
                while i < toks.len() && toks[i].is_punct("#") {
                    let (end, _) = scan_attribute(toks, i + 1);
                    i = end;
                }
                i = skip_item(toks, i);
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Scans the attribute starting at its `[` token; returns (index past the
/// closing `]`, whether it marks test-only code).
fn scan_attribute(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_cfg = false;
    let mut has_test = false;
    let mut only_test = false;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                i += 1;
                break;
            }
        } else if t.kind == TokKind::Ident {
            if t.text == "cfg" {
                has_cfg = true;
            } else if t.text == "test" {
                has_test = true;
                // `#[test]` alone: the ident directly inside the brackets.
                only_test = i == open + 1;
            }
        }
        i += 1;
    }
    (i, (has_cfg && has_test) || only_test)
}

/// Skips one item (fn/mod/impl/struct/... or statement): consumes balanced
/// `{}` if a brace opens before a top-level `;`, else stops after the `;`.
fn skip_item(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    let mut paren = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            paren += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            paren -= 1;
        } else if t.is_punct(";") && paren == 0 {
            return i + 1;
        } else if t.is_punct("{") && paren == 0 {
            let mut depth = 0i32;
            while i < toks.len() {
                if toks[i].is_punct("{") {
                    depth += 1;
                } else if toks[i].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

/// True when the token can be the tail of a float-valued expression.
fn floatish(toks: &[Tok], i: usize) -> bool {
    let t = &toks[i];
    if t.kind == TokKind::Float {
        return true;
    }
    // f64::NAN / f32::INFINITY / f64::EPSILON ...
    if t.kind == TokKind::Ident
        && matches!(
            t.text.as_str(),
            "NAN" | "INFINITY" | "NEG_INFINITY" | "EPSILON" | "MIN_POSITIVE"
        )
        && i >= 2
        && toks[i - 1].is_punct("::")
        && (toks[i - 2].is_ident("f64") || toks[i - 2].is_ident("f32"))
    {
        return true;
    }
    false
}

/// L1 — NaN-unsafe float comparison: `==`/`!=` with a float literal or float
/// constant operand, and `partial_cmp(..).unwrap()/.expect(..)` chains.
pub fn lint_float_cmp(file: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("==") || t.is_punct("!=") {
            // Operand window: the token just before, and up to 3 ahead
            // (covers `x == -1.0` where `-` precedes the literal).
            let before = i > 0 && floatish(toks, i - 1);
            let mut after = false;
            for j in i + 1..toks.len().min(i + 4) {
                // Stop the lookahead at expression boundaries.
                if toks[j].is_punct(";") || toks[j].is_punct("{") || toks[j].is_punct(",") {
                    break;
                }
                if floatish(toks, j) {
                    after = true;
                    break;
                }
            }
            if before || after {
                out.push(Finding::new(
                    "L1",
                    file,
                    t.line,
                    format!(
                        "raw float `{}` comparison — NaN-unsafe; use `total_cmp`, an epsilon \
                         band, or an explicit `is_nan()` guard",
                        t.text
                    ),
                ));
            }
        }
        // partial_cmp(..).unwrap() / .expect(..) within the same chain.
        if t.is_ident("partial_cmp") {
            let window = &toks[i..toks.len().min(i + 10)];
            if window.iter().any(|w| w.is_ident("unwrap") || w.is_ident("expect")) {
                out.push(Finding::new(
                    "L1",
                    file,
                    t.line,
                    "`partial_cmp(..).unwrap()` panics on NaN — use `total_cmp` for sorting \
                     floats",
                ));
            }
        }
    }
    out
}

/// L2 — panic family in non-test library code: `.unwrap()`, `.expect(..)`,
/// `panic!`, `unreachable!`, `todo!`, `unimplemented!`.
pub fn lint_panic_family(file: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");
        let next_bang = i + 1 < toks.len() && toks[i + 1].is_punct("!");
        let next_paren = i + 1 < toks.len() && toks[i + 1].is_punct("(");
        let hit: Option<&str> = match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next_paren => {
                Some("return Result or a documented default")
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next_bang => {
                Some("make the invariant a checked error path (or debug_assert! if truly internal)")
            }
            _ => None,
        };
        if let Some(suggestion) = hit {
            out.push(Finding::new(
                "L2",
                file,
                t.line,
                format!(
                    "`{}{}` in library code can abort a whole fleet run — {}",
                    t.text,
                    if next_bang { "!" } else { "()" },
                    suggestion
                ),
            ));
        }
    }
    out
}

/// Numeric types a cast *to* which loses range or precision from the common
/// f64/usize sources in these kernels (`f64` excluded: widening).
const NARROW_TARGETS: &[&str] =
    &["u8", "u16", "u32", "usize", "u64", "i8", "i16", "i32", "i64", "isize", "f32"];

/// L3 — lossy `as` casts in hot kernels: any `expr as <narrow numeric>`.
pub fn lint_lossy_casts(file: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("as") || i + 1 >= toks.len() {
            continue;
        }
        // `use x as y;` renames, it does not cast: the token before a cast's
        // `as` is an expression tail, never the `use`-path context.
        if i >= 1 && toks[i - 1].kind == TokKind::Ident {
            // Walk back through the `::`-separated path; a leading `use`
            // keyword means this is an import rename.
            let mut j = i - 1;
            while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
                j -= 2;
            }
            if j >= 1 && toks[j - 1].is_ident("use") {
                continue;
            }
        }
        let target = &toks[i + 1];
        if target.kind == TokKind::Ident && NARROW_TARGETS.contains(&target.text.as_str()) {
            out.push(Finding::new(
                "L3",
                file,
                t.line,
                format!(
                    "narrowing `as {}` in a hot kernel silently truncates/saturates — use \
                     `try_from`, or `floor()` + an explicit bounds check",
                    target.text
                ),
            ));
        }
    }
    out
}

/// L6 — unchecked indexing in hot kernels: `recv[...]` where `recv` is an
/// identifier, `)` or `]` (so array *types* `[f64; 4]` and slice patterns
/// stay silent).
pub fn lint_unchecked_index(file: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct("[") || i == 0 {
            continue;
        }
        let prev = &toks[i - 1];
        let indexes_value = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
            || prev.is_punct(")")
            || prev.is_punct("]");
        if indexes_value {
            out.push(Finding::new(
                "L6",
                file,
                t.line,
                "unchecked slice indexing in a hot kernel panics on out-of-bounds — use \
                 `get`/`get_mut`, iterators, or prove the bound with a slice re-borrow",
            ));
        }
    }
    out
}

/// Keywords that can directly precede `[` without being an indexed value.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "if" | "else" | "match" | "mut" | "ref" | "as" | "box" | "let"
    )
}

/// L7 — raw print macros in library code: `print!`/`println!`/`eprint!`/
/// `eprintln!` anywhere but the user-facing binaries (cli, `src/bin/`,
/// xtask) write around the observability layer — they cannot be silenced,
/// redirected to a trace file, or counted. Emit a `navarchos-obs` event or
/// write to a caller-supplied `impl io::Write` instead.
pub fn lint_print_macros(file: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_bang = i + 1 < toks.len() && toks[i + 1].is_punct("!");
        if next_bang && matches!(t.text.as_str(), "print" | "println" | "eprint" | "eprintln") {
            out.push(Finding::new(
                "L7",
                file,
                t.line,
                format!(
                    "raw `{}!` in library code bypasses the observability layer — emit a \
                     structured `navarchos_obs` event or write to a caller-supplied \
                     `impl io::Write`",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Lint names whose `#[allow]` xtask can adjudicate directly: if the mapped
/// xtask lint produces no finding in the file, the allow is stale. Only
/// lints at least as broad as their clippy counterpart belong here
/// (`clippy::float_cmp` is deliberately absent: it is type-aware and fires
/// where the literal-based L1 cannot, so its allows take the
/// justification-comment route instead).
const ALLOW_TO_XTASK: &[(&str, &str)] = &[
    ("clippy::unwrap_used", "L2"),
    ("clippy::expect_used", "L2"),
    ("clippy::panic", "L2"),
    ("clippy::cast_possible_truncation", "L3"),
    ("clippy::indexing_slicing", "L6"),
];

/// One `#[allow(...)]` occurrence.
#[derive(Debug)]
pub struct AllowSite {
    /// 1-based line of the attribute.
    pub line: u32,
    /// Fully-qualified allowed lint names (`clippy::ptr_arg`, ...).
    pub lints: Vec<String>,
}

/// Collects `#[allow(...)]` / `#![allow(...)]` attributes from a token
/// stream.
pub fn collect_allows(toks: &[Tok]) -> Vec<AllowSite> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let open = if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            i + 1
        } else if toks[i].is_punct("#")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("!")
            && toks[i + 2].is_punct("[")
        {
            i + 2
        } else {
            i += 1;
            continue;
        };
        if !(open + 1 < toks.len() && toks[open + 1].is_ident("allow")) {
            i = open + 1;
            continue;
        }
        let line = toks[i].line;
        let mut lints = Vec::new();
        let mut depth = 0usize;
        let mut j = open;
        let mut path = String::new();
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if t.kind == TokKind::Ident && t.text != "allow" {
                if !path.is_empty() {
                    path.push_str("::");
                }
                path.push_str(&t.text);
            } else if t.is_punct(",") && !path.is_empty() {
                lints.push(std::mem::take(&mut path));
            }
            j += 1;
        }
        if !path.is_empty() {
            lints.push(path);
        }
        if !lints.is_empty() {
            out.push(AllowSite { line, lints });
        }
        i = j;
    }
    out
}

/// L5 — `#[allow]` audit. An allow of an xtask-mapped lint with no
/// corresponding finding in the file is stale (judged only when the mapped
/// lint is in `scoped` — the xtask lints active for this file); every other
/// allow must carry a one-line `//` justification on its own line or the
/// line above.
pub fn lint_allow_audit(
    file: &str,
    lexed: &Lexed,
    file_findings: &[Finding],
    scoped: &[&str],
) -> Vec<Finding> {
    let mut out = Vec::new();
    // Plain `//` comments only — doc comments are API documentation, not
    // lint justifications.
    let comment_lines: std::collections::HashSet<u32> = lexed
        .comments
        .iter()
        .filter(|(_, text)| !text.starts_with('/') && !text.starts_with('!') && !text.is_empty())
        .map(|&(line, _)| line)
        .collect();

    for site in collect_allows(&lexed.toks) {
        for lint_name in &site.lints {
            if let Some((_, xtask_lint)) =
                ALLOW_TO_XTASK.iter().find(|(allow, xt)| allow == lint_name && scoped.contains(xt))
            {
                let fires = file_findings.iter().any(|f| &f.lint == xtask_lint);
                if !fires {
                    out.push(Finding::new(
                        "L5",
                        file,
                        site.line,
                        format!(
                            "stale `#[allow({lint_name})]`: removing it would not fire any \
                             {xtask_lint} finding in this file — delete the attribute"
                        ),
                    ));
                }
                continue;
            }
            let justified =
                comment_lines.contains(&site.line) || comment_lines.contains(&(site.line - 1));
            if !justified {
                out.push(Finding::new(
                    "L5",
                    file,
                    site.line,
                    format!(
                        "`#[allow({lint_name})]` without a one-line `//` justification on the \
                         attribute's line or the line above — say why the lint is wrong here"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(lint: fn(&str, &[Tok]) -> Vec<Finding>, src: &str) -> Vec<Finding> {
        lint("test.rs", &strip_test_code(&lex(src).toks))
    }

    // ---- L1 -------------------------------------------------------------

    #[test]
    fn l1_fires_on_float_literal_comparison() {
        assert_eq!(run(lint_float_cmp, "if x == 0.0 { }").len(), 1);
        assert_eq!(run(lint_float_cmp, "if 1.5 != y { }").len(), 1);
        assert_eq!(run(lint_float_cmp, "if x == -1.0 { }").len(), 1);
        assert_eq!(run(lint_float_cmp, "if x == f64::INFINITY { }").len(), 1);
    }

    #[test]
    fn l1_fires_on_partial_cmp_unwrap() {
        let src = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());";
        assert_eq!(run(lint_float_cmp, src).len(), 1);
    }

    #[test]
    fn l1_silent_on_safe_patterns() {
        assert!(run(lint_float_cmp, "if n == 0 { }").is_empty());
        assert!(run(lint_float_cmp, "v.sort_by(|a, b| a.total_cmp(b));").is_empty());
        assert!(run(lint_float_cmp, "let s = \"x == 0.0\";").is_empty());
        assert!(run(lint_float_cmp, "// x == 0.0").is_empty());
        assert!(run(lint_float_cmp, "if (a - b).abs() < 1e-9 { }").is_empty());
        // Integer comparison whose branch body starts with a float literal.
        assert!(run(lint_float_cmp, "if n == 0 { 0.0 } else { x }").is_empty());
    }

    // ---- L2 -------------------------------------------------------------

    #[test]
    fn l2_fires_on_panic_family() {
        assert_eq!(run(lint_panic_family, "let x = opt.unwrap();").len(), 1);
        assert_eq!(run(lint_panic_family, "let x = opt.expect(\"m\");").len(), 1);
        assert_eq!(run(lint_panic_family, "panic!(\"boom\");").len(), 1);
        assert_eq!(run(lint_panic_family, "unreachable!()").len(), 1);
        assert_eq!(run(lint_panic_family, "todo!()").len(), 1);
    }

    #[test]
    fn l2_silent_on_non_panicking_kin_and_test_code() {
        assert!(run(lint_panic_family, "let x = opt.unwrap_or(0.0);").is_empty());
        assert!(run(lint_panic_family, "let x = opt.unwrap_or_else(f);").is_empty());
        assert!(run(lint_panic_family, "let s = \"panic!\";").is_empty());
        assert!(run(lint_panic_family, "// .unwrap() here would be bad").is_empty());
        let test_mod = r#"
            #[cfg(test)]
            mod tests {
                fn helper() { opt.unwrap(); panic!("fine in tests"); }
            }
        "#;
        assert!(run(lint_panic_family, test_mod).is_empty());
        let test_fn = "#[test]\nfn t() { x.unwrap(); }";
        assert!(run(lint_panic_family, test_fn).is_empty());
    }

    #[test]
    fn l2_sees_code_after_a_test_mod() {
        let src = "#[cfg(test)]\nmod tests { }\nfn lib() { x.unwrap(); }";
        assert_eq!(run(lint_panic_family, src).len(), 1);
    }

    // ---- L3 -------------------------------------------------------------

    #[test]
    fn l3_fires_on_narrowing_casts() {
        assert_eq!(run(lint_lossy_casts, "let i = x as usize;").len(), 1);
        assert_eq!(run(lint_lossy_casts, "let i = n as i32;").len(), 1);
        assert_eq!(run(lint_lossy_casts, "let f = x as f32;").len(), 1);
    }

    #[test]
    fn l3_silent_on_widening_and_renames() {
        assert!(run(lint_lossy_casts, "let f = n as f64;").is_empty());
        assert!(run(lint_lossy_casts, "use std::cmp::Ordering as Ord2;").is_empty());
        assert!(run(lint_lossy_casts, "use a::b::c as d;").is_empty());
    }

    // ---- L6 -------------------------------------------------------------

    #[test]
    fn l6_fires_on_indexing() {
        assert_eq!(run(lint_unchecked_index, "let y = xs[i];").len(), 1);
        assert_eq!(run(lint_unchecked_index, "let y = f(a)[0];").len(), 1);
        assert_eq!(run(lint_unchecked_index, "let y = m[i][j];").len(), 2);
    }

    #[test]
    fn l6_silent_on_types_and_literals() {
        assert!(run(lint_unchecked_index, "let a: [f64; 4] = [0.0; 4];").is_empty());
        assert!(run(lint_unchecked_index, "let v = vec![1, 2];").is_empty());
        assert!(run(lint_unchecked_index, "for x in [1, 2] { }").is_empty());
        assert!(run(lint_unchecked_index, "#[allow(dead_code)]").is_empty());
    }

    // ---- L5 -------------------------------------------------------------

    fn audit(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        lint_allow_audit("test.rs", &lexed, &[], &["L1", "L2"])
    }

    #[test]
    fn l5_requires_justification_for_unmapped_allows() {
        let unjustified = "#[allow(clippy::ptr_arg)]\nfn f() {}";
        assert_eq!(audit(unjustified).len(), 1);
        let justified = "// callers own the Vec; &Vec keeps the API stable\n#[allow(clippy::ptr_arg)]\nfn f() {}";
        assert!(audit(justified).is_empty());
    }

    #[test]
    fn l5_flags_stale_mapped_allows() {
        let stale = "#[allow(clippy::unwrap_used)]\nfn f(a: f64) -> f64 { a }";
        let lexed = lex(stale);
        let findings = lint_allow_audit("test.rs", &lexed, &[], &["L2"]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("stale"));

        // Same allow, but L2 genuinely fires in the file → not stale.
        let fires = vec![Finding::new("L2", "test.rs", 2, "x")];
        assert!(lint_allow_audit("test.rs", &lexed, &fires, &["L2"]).is_empty());

        // Out of L2's scope → the justification rule applies instead, and
        // this allow has no justification comment.
        let out_of_scope = lint_allow_audit("test.rs", &lexed, &[], &["L1"]);
        assert_eq!(out_of_scope.len(), 1);
        assert!(out_of_scope[0].message.contains("justification"));
    }

    #[test]
    fn l5_doc_comments_are_not_justifications() {
        let src = "/// Public API docs.\n#[allow(clippy::ptr_arg)]\nfn f() {}";
        assert_eq!(audit(src).len(), 1);
    }

    // ---- L7 -------------------------------------------------------------

    #[test]
    fn l7_fires_on_print_macros() {
        assert_eq!(run(lint_print_macros, "println!(\"x\");").len(), 1);
        assert_eq!(run(lint_print_macros, "eprintln!(\"warn\");").len(), 1);
        assert_eq!(run(lint_print_macros, "print!(\"a\"); eprint!(\"b\");").len(), 2);
    }

    #[test]
    fn l7_silent_on_writers_strings_and_tests() {
        assert!(run(lint_print_macros, "writeln!(out, \"x\")?;").is_empty());
        assert!(run(lint_print_macros, "let s = \"println!\";").is_empty());
        assert!(run(lint_print_macros, "// println! would be wrong here").is_empty());
        assert!(run(lint_print_macros, "#[test]\nfn t() { println!(\"dbg\"); }").is_empty());
        // `println` without `!` is just an identifier (e.g. a closure name).
        assert!(run(lint_print_macros, "let println = 3; f(println);").is_empty());
    }

    // ---- strip_test_code ------------------------------------------------

    #[test]
    fn strip_handles_cfg_attr_combinations() {
        let toks =
            lex("#[cfg(all(test, feature = \"x\"))]\nmod t { bad.unwrap(); }\nfn ok() {}").toks;
        let lib = strip_test_code(&toks);
        assert!(lib.iter().any(|t| t.is_ident("ok")));
        assert!(!lib.iter().any(|t| t.is_ident("unwrap")));
    }
}

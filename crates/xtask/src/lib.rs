//! `xtask` — the workspace's static-analysis gate.
//!
//! Run as `cargo run -p xtask -- lint`. Zero external dependencies by
//! design: the build environment is offline, and the gate must never be the
//! thing that fails to build.
//!
//! Lints:
//!
//! | id | scope | rule |
//! |----|-------|------|
//! | L1 | all crate `src/` | NaN-unsafe `==`/`!=` against float literals/consts; `partial_cmp(..).unwrap()` |
//! | L2 | numeric crates' `src/` | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` outside tests |
//! | L3 | `hot_kernels` files | narrowing `as` casts |
//! | L4 | detector/experiment registries | factory, proptest, bench, reproduce-all completeness |
//! | L5 | all scanned files | stale or unjustified `#[allow]` attributes |
//! | L6 | `hot_kernels` files | unchecked slice indexing |
//! | L7 | library `src/` (not cli/xtask/obs or `src/bin/`) | raw `print!`/`println!`/`eprint!`/`eprintln!` — route through `navarchos-obs` |
//!
//! Findings are suppressed only by per-site entries in
//! `crates/xtask/lint-waivers.toml`; unused waivers are themselves errors,
//! so the debt ratchets down.

pub mod lexer;
pub mod lints;
pub mod registry;
pub mod waivers;

use std::path::{Path, PathBuf};

use lints::Finding;

/// Crates whose library code must hold the no-panic policy (L2): they run
/// inside long fleet-scoring loops where one poisoned sample must not abort
/// the whole experiment. `obs` is instrumentation on those same loops, so a
/// panic there would be just as fatal.
pub const NUMERIC_CRATES: &[&str] =
    &["stat", "tsframe", "neighbors", "core", "dsp", "gbdt", "nnet", "iforest", "obs"];

/// Outcome of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by a waiver, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of findings silenced by waivers.
    pub waived: usize,
    /// Errors about the waiver file itself (stale entries, parse problems).
    pub waiver_errors: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the gate passes.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.waiver_errors.is_empty()
    }
}

/// Collects every `.rs` file under `dir`, recursively, sorted for
/// deterministic output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = rd.flatten().collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" {
                rust_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative `/`-separated path.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The crate a `crates/<name>/...` path belongs to, if any.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/").and_then(|r| r.split('/').next())
}

/// Runs every lint over the workspace rooted at `root`, applying the waiver
/// file at `waiver_path`.
pub fn run_lint(root: &Path, waiver_path: &Path) -> Result<Report, String> {
    let mut report = Report::default();

    let waiver_text = std::fs::read_to_string(waiver_path)
        .map_err(|e| format!("{}: {e}", waiver_path.display()))?;
    let waiver_file = waivers::parse(&waiver_text).map_err(|e| e.to_string())?;
    let hot: Vec<&str> = waiver_file.config.hot_kernels.iter().map(String::as_str).collect();
    for h in &hot {
        if !root.join(h).is_file() {
            report
                .waiver_errors
                .push(format!("[config] hot_kernels lists `{h}` which does not exist"));
        }
    }

    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);

    let mut raw: Vec<Finding> = Vec::new();
    for path in &files {
        let rel_path = rel(root, path);
        let Some(krate) = crate_of(&rel_path) else {
            continue;
        };
        let in_src = rel_path.contains("/src/");
        let src = std::fs::read_to_string(path).map_err(|e| format!("{rel_path}: {e}"))?;
        let lexed = lexer::lex(&src);
        let lib_toks = lints::strip_test_code(&lexed.toks);
        report.files_scanned += 1;

        let mut file_findings: Vec<Finding> = Vec::new();
        let mut scoped: Vec<&str> = Vec::new();
        if in_src {
            scoped.push("L1");
            file_findings.extend(lints::lint_float_cmp(&rel_path, &lib_toks));
        }
        if in_src && NUMERIC_CRATES.contains(&krate) {
            scoped.push("L2");
            file_findings.extend(lints::lint_panic_family(&rel_path, &lib_toks));
        }
        if hot.contains(&rel_path.as_str()) {
            scoped.push("L3");
            scoped.push("L6");
            file_findings.extend(lints::lint_lossy_casts(&rel_path, &lib_toks));
            file_findings.extend(lints::lint_unchecked_index(&rel_path, &lib_toks));
        }
        // L7: library code must not print; the user-facing binaries (cli,
        // per-crate `src/bin/` tools, xtask itself) and the obs sinks are
        // the only sanctioned writers of stdout/stderr.
        if in_src && !matches!(krate, "cli" | "xtask" | "obs") && !rel_path.contains("/src/bin/") {
            scoped.push("L7");
            file_findings.extend(lints::lint_print_macros(&rel_path, &lib_toks));
        }
        // L5 last: staleness is judged against this file's other findings.
        file_findings.extend(lints::lint_allow_audit(&rel_path, &lexed, &file_findings, &scoped));
        raw.extend(file_findings);
    }

    raw.extend(registry::check(root));

    // Apply waivers: exact (lint, file, line) match.
    for f in raw {
        let waiver = waiver_file
            .waivers
            .iter()
            .find(|w| w.lint == f.lint && w.file == f.file && w.line == f.line);
        match waiver {
            Some(w) => {
                w.used.set(true);
                report.waived += 1;
            }
            None => report.findings.push(f),
        }
    }
    for w in &waiver_file.waivers {
        if !w.used.get() {
            report.waiver_errors.push(format!(
                "stale waiver at lint-waivers.toml:{} ({} {}:{}) — the finding no longer \
                 fires; delete the entry",
                w.at_line, w.lint, w.file, w.line
            ));
        }
    }

    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_parses_paths() {
        assert_eq!(crate_of("crates/stat/src/lib.rs"), Some("stat"));
        assert_eq!(crate_of("examples/src/main.rs"), None);
    }
}

//! `xtask` — the workspace's static-analysis gate.
//!
//! Run as `cargo run -p xtask -- lint` (token-level lints L1–L7) and
//! `cargo run -p xtask -- analyze` (cross-function analyses L8–L11). Zero
//! external dependencies by design: the build environment is offline, and
//! the gate must never be the thing that fails to build.
//!
//! Lints (`lint`):
//!
//! | id | scope | rule |
//! |----|-------|------|
//! | L1 | all crate `src/` | NaN-unsafe `==`/`!=` against float literals/consts; `partial_cmp(..).unwrap()` |
//! | L2 | numeric crates' `src/` | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` outside tests |
//! | L3 | `hot_kernels` files | narrowing `as` casts |
//! | L4 | detector/experiment registries | factory, proptest, bench, reproduce-all completeness |
//! | L5 | all scanned files | stale or unjustified `#[allow]` attributes |
//! | L6 | `hot_kernels` files | unchecked slice indexing |
//! | L7 | library `src/` (not cli/xtask/obs or `src/bin/`) | raw `print!`/`println!`/`eprint!`/`eprintln!` — route through `navarchos-obs` |
//!
//! Analyses (`analyze`, see [`analyses`]):
//!
//! | id  | scope | rule |
//! |-----|-------|------|
//! | L8  | all crate `src/` | metric/span names ↔ registry file, both directions |
//! | L9  | all crate `src/` | `Ordering::*` justification; Relaxed RMW is waiver-only |
//! | L10 | `kernel_roots` call graph | no allocation reachable from a registered kernel |
//! | L11 | `kernel_roots` call graph | no panic path reachable from a registered kernel |
//!
//! Findings are suppressed only by per-site entries in
//! `crates/xtask/lint-waivers.toml`; unused waivers are themselves errors,
//! and the `[[budget]]` ratchet makes the waiver count auditable, so the
//! debt ratchets down.

pub mod analyses;
pub mod callgraph;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod registry;
pub mod symbols;
pub mod waivers;

use std::path::{Path, PathBuf};

use lints::Finding;

/// Crates whose library code must hold the no-panic policy (L2): they run
/// inside long fleet-scoring loops where one poisoned sample must not abort
/// the whole experiment. `obs` is instrumentation on those same loops, so a
/// panic there would be just as fatal.
pub const NUMERIC_CRATES: &[&str] =
    &["stat", "tsframe", "neighbors", "core", "dsp", "gbdt", "nnet", "iforest", "obs"];

/// Lint ids adjudicated by `lint` (waivers for other ids are left to
/// `analyze` and vice versa, so each command judges staleness only for the
/// findings it can actually produce).
const LINT_IDS: &[&str] = &["L1", "L2", "L3", "L4", "L5", "L6", "L7"];
/// Lint ids adjudicated by `analyze`.
const ANALYZE_IDS: &[&str] = &["L8", "L9", "L10", "L11"];

/// Outcome of a full lint or analyze run.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by a waiver, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of findings silenced by waivers.
    pub waived: usize,
    /// Errors about the waiver file itself (stale entries, parse problems,
    /// budget-ratchet violations).
    pub waiver_errors: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the gate passes.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.waiver_errors.is_empty()
    }
}

/// One source file, read and lexed exactly once per run and shared by every
/// lint and analysis (the lexer is the dominant per-file cost).
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Full token stream + comments.
    pub lexed: lexer::Lexed,
    /// Token stream with `#[cfg(test)]`/`#[test]` items removed.
    pub lib_toks: Vec<lexer::Tok>,
}

/// Every `.rs` file under `<root>/crates`, loaded once.
#[derive(Debug)]
pub struct Workspace {
    /// Loaded files in deterministic (sorted-walk) order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Reads and lexes the workspace rooted at `root`.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut paths = Vec::new();
        rust_files(&root.join("crates"), &mut paths);
        let mut files = Vec::with_capacity(paths.len());
        for path in &paths {
            let rel = rel(root, path);
            let src = std::fs::read_to_string(path).map_err(|e| format!("{rel}: {e}"))?;
            let lexed = lexer::lex(&src);
            let lib_toks = lints::strip_test_code(&lexed.toks);
            files.push(SourceFile { rel, lexed, lib_toks });
        }
        Ok(Workspace { files })
    }

    /// The file at a workspace-relative path, if loaded.
    pub fn get(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Collects every `.rs` file under `dir`, recursively, sorted for
/// deterministic output. Directories named `target` (build artifacts) and
/// `fixtures` (seeded-violation trees for the analyze golden tests) are
/// not part of the workspace.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = rd.flatten().collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && name != "fixtures" {
                rust_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative `/`-separated path.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The crate a `crates/<name>/...` path belongs to, if any.
fn crate_of(rel: &str) -> Option<&str> {
    rel.strip_prefix("crates/").and_then(|r| r.split('/').next())
}

/// True for library/binary source (as opposed to `tests/`, `benches/`,
/// `examples/` trees) — the scope of the metric-registry analysis and the
/// symbol index.
pub(crate) fn in_src(rel: &str) -> bool {
    rel.contains("/src/")
}

/// Applies the waivers whose lint id is in `scope` to `raw`, judging
/// staleness only inside that scope, and enforces the `[[budget]]` ratchet.
fn apply_waivers(
    raw: Vec<Finding>,
    waiver_file: &waivers::WaiverFile,
    scope: &[&str],
    report: &mut Report,
) {
    for w in &waiver_file.waivers {
        if !LINT_IDS.contains(&w.lint.as_str()) && !ANALYZE_IDS.contains(&w.lint.as_str()) {
            report.waiver_errors.push(format!(
                "waiver at lint-waivers.toml:{} names unknown lint `{}`",
                w.at_line, w.lint
            ));
        }
    }
    for f in raw {
        let waiver = waiver_file
            .waivers
            .iter()
            .find(|w| w.lint == f.lint && w.file == f.file && w.line == f.line);
        match waiver {
            Some(w) => {
                w.used.set(true);
                report.waived += 1;
            }
            None => report.findings.push(f),
        }
    }
    for w in &waiver_file.waivers {
        if scope.contains(&w.lint.as_str()) && !w.used.get() {
            report.waiver_errors.push(format!(
                "stale waiver at lint-waivers.toml:{} ({} {}:{}) — the finding no longer \
                 fires; delete the entry",
                w.at_line, w.lint, w.file, w.line
            ));
        }
    }

    // Waiver-count ratchet: the last [[budget]] entry must match the current
    // waiver population exactly, so adding (or removing) a waiver forces an
    // appended, justified budget line — the count cannot drift silently.
    let count = waiver_file.waivers.len();
    match waiver_file.budgets.last() {
        Some(b) if b.total as usize == count => {}
        Some(b) => report.waiver_errors.push(format!(
            "waiver budget out of date: {} waiver(s) present but the last [[budget]] entry \
             (lint-waivers.toml:{}) says {} — append a new [[budget]] with `total = {}` and a \
             reason for the change",
            count, b.at_line, b.total, count
        )),
        None if count > 0 => report.waiver_errors.push(format!(
            "{count} waiver(s) present but no [[budget]] entry — append one with \
             `total = {count}` and a reason justifying the debt"
        )),
        None => {}
    }

    report
        .findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
}

/// Runs the token-level lints (L1–L7) over the workspace rooted at `root`,
/// applying the waiver file at `waiver_path`.
pub fn run_lint(root: &Path, waiver_path: &Path) -> Result<Report, String> {
    let mut report = Report::default();

    let waiver_text = std::fs::read_to_string(waiver_path)
        .map_err(|e| format!("{}: {e}", waiver_path.display()))?;
    let waiver_file = waivers::parse(&waiver_text).map_err(|e| e.to_string())?;
    let hot: Vec<&str> = waiver_file.config.hot_kernels.iter().map(String::as_str).collect();
    for h in &hot {
        if !root.join(h).is_file() {
            report
                .waiver_errors
                .push(format!("[config] hot_kernels lists `{h}` which does not exist"));
        }
    }

    let ws = Workspace::load(root)?;
    report.files_scanned = ws.files.len();

    let mut raw: Vec<Finding> = Vec::new();
    for file in &ws.files {
        let rel_path = &file.rel;
        let Some(krate) = crate_of(rel_path) else {
            continue;
        };
        let in_src = in_src(rel_path);
        let lib_toks = &file.lib_toks;

        let mut file_findings: Vec<Finding> = Vec::new();
        let mut scoped: Vec<&str> = Vec::new();
        if in_src {
            scoped.push("L1");
            file_findings.extend(lints::lint_float_cmp(rel_path, lib_toks));
        }
        if in_src && NUMERIC_CRATES.contains(&krate) {
            scoped.push("L2");
            file_findings.extend(lints::lint_panic_family(rel_path, lib_toks));
        }
        if hot.contains(&rel_path.as_str()) {
            scoped.push("L3");
            scoped.push("L6");
            file_findings.extend(lints::lint_lossy_casts(rel_path, lib_toks));
            file_findings.extend(lints::lint_unchecked_index(rel_path, lib_toks));
        }
        // L7: library code must not print; the user-facing binaries (cli,
        // per-crate `src/bin/` tools, xtask itself) and the obs sinks are
        // the only sanctioned writers of stdout/stderr.
        if in_src && !matches!(krate, "cli" | "xtask" | "obs") && !rel_path.contains("/src/bin/") {
            scoped.push("L7");
            file_findings.extend(lints::lint_print_macros(rel_path, lib_toks));
        }
        // L5 last: staleness is judged against this file's other findings.
        file_findings.extend(lints::lint_allow_audit(
            rel_path,
            &file.lexed,
            &file_findings,
            &scoped,
        ));
        raw.extend(file_findings);
    }

    raw.extend(registry::check(&ws));

    apply_waivers(raw, &waiver_file, LINT_IDS, &mut report);
    Ok(report)
}

/// Runs the cross-function analyses (L8–L11) over the workspace rooted at
/// `root`, applying the waiver file at `waiver_path`.
pub fn run_analyze(root: &Path, waiver_path: &Path) -> Result<Report, String> {
    let mut report = Report::default();

    let waiver_text = std::fs::read_to_string(waiver_path)
        .map_err(|e| format!("{}: {e}", waiver_path.display()))?;
    let waiver_file = waivers::parse(&waiver_text).map_err(|e| e.to_string())?;

    let ws = Workspace::load(root)?;
    report.files_scanned = ws.files.len();

    let mut raw: Vec<Finding> = Vec::new();

    // L8 — metric registry, both directions.
    match &waiver_file.config.metric_registry {
        None => report.waiver_errors.push(
            "[config] analyze requires `metric_registry = \"<path>\"` naming the metric \
             registry file"
                .to_string(),
        ),
        Some(reg_rel) => match std::fs::read_to_string(root.join(reg_rel)) {
            Err(e) => report.waiver_errors.push(format!("[config] metric_registry {reg_rel}: {e}")),
            Ok(text) => match analyses::parse_registry(&text) {
                Err(e) => report.waiver_errors.push(format!("{reg_rel}: {e}")),
                Ok(entries) => {
                    raw.extend(analyses::check_metric_registry(&ws.files, reg_rel, &entries));
                }
            },
        },
    }

    // L9 — atomic-ordering audit.
    for file in &ws.files {
        if in_src(&file.rel) {
            raw.extend(analyses::check_atomic_orderings(file));
        }
    }

    // L10/L11 — call-graph reachability from the registered kernel roots.
    // The symbol index covers library/binary source only: test helpers may
    // panic freely and must not shadow workspace names.
    let parsed: Vec<Vec<parser::FnItem>> = ws
        .files
        .iter()
        .map(|f| if in_src(&f.rel) { parser::parse_file(&f.lexed.toks) } else { Vec::new() })
        .collect();
    let idx = symbols::SymbolIndex::build(&parsed);
    let graph = callgraph::build(&idx, &parsed);
    let (kernel_findings, kernel_errors) = analyses::check_kernel_paths(
        &ws.files,
        &parsed,
        &idx,
        &graph,
        &waiver_file.config.kernel_roots,
    );
    raw.extend(kernel_findings);
    report.waiver_errors.extend(kernel_errors);

    apply_waivers(raw, &waiver_file, ANALYZE_IDS, &mut report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_parses_paths() {
        assert_eq!(crate_of("crates/stat/src/lib.rs"), Some("stat"));
        assert_eq!(crate_of("examples/src/main.rs"), None);
    }

    #[test]
    fn budget_ratchet_enforced() {
        let waiver_file = waivers::parse(
            "[[waiver]]\nlint = \"L9\"\nfile = \"a.rs\"\nline = 1\nreason = \"valid reason text\"\n",
        )
        .expect("parses");
        let raw = vec![Finding { lint: "L9", file: "a.rs".into(), line: 1, message: "m".into() }];
        let mut report = Report::default();
        apply_waivers(raw, &waiver_file, ANALYZE_IDS, &mut report);
        assert_eq!(report.waived, 1);
        assert_eq!(report.waiver_errors.len(), 1, "{:?}", report.waiver_errors);
        assert!(report.waiver_errors[0].contains("no [[budget]] entry"));
    }

    #[test]
    fn waivers_outside_scope_are_not_stale() {
        let waiver_file = waivers::parse(
            "[[waiver]]\nlint = \"L9\"\nfile = \"a.rs\"\nline = 1\nreason = \"valid reason text\"\n\
             [[budget]]\ntotal = 1\nreason = \"one waived L9 site\"\n",
        )
        .expect("parses");
        let mut report = Report::default();
        // Lint scope: the (unused) L9 waiver belongs to analyze, not lint.
        apply_waivers(Vec::new(), &waiver_file, LINT_IDS, &mut report);
        assert!(report.waiver_errors.is_empty(), "{:?}", report.waiver_errors);
        // Analyze scope with no matching finding: now it is stale.
        let mut report = Report::default();
        apply_waivers(Vec::new(), &waiver_file, ANALYZE_IDS, &mut report);
        assert_eq!(report.waiver_errors.len(), 1);
        assert!(report.waiver_errors[0].contains("stale waiver"));
    }

    #[test]
    fn unknown_lint_ids_in_waivers_error() {
        let waiver_file = waivers::parse(
            "[[waiver]]\nlint = \"L99\"\nfile = \"a.rs\"\nline = 1\nreason = \"valid reason text\"\n\
             [[budget]]\ntotal = 1\nreason = \"bogus id should error\"\n",
        )
        .expect("parses");
        let mut report = Report::default();
        apply_waivers(Vec::new(), &waiver_file, LINT_IDS, &mut report);
        assert!(report.waiver_errors.iter().any(|e| e.contains("unknown lint `L99`")));
    }
}

//! Waiver-file handling: a hand-rolled parser for the TOML subset used by
//! `crates/xtask/lint-waivers.toml` (no registry access, so no `toml` crate).
//!
//! Supported syntax — deliberately small, rejected loudly otherwise:
//!
//! ```toml
//! [config]
//! hot_kernels = ["crates/stat/src/correlation.rs"]   # string arrays (may span lines)
//! kernel_roots = ["IncrementalPearson::push"]        # L10/L11 call-graph roots
//! metric_registry = "crates/obs/metrics-registry.toml"
//!
//! [[waiver]]
//! lint = "L2"
//! file = "crates/stat/src/drift.rs"
//! line = 288
//! reason = "sentinel checked two lines above"
//!
//! [[budget]]
//! total = 1
//! reason = "seeded debt from the drift detector port"
//! ```
//!
//! Every waiver is per-site (`file` + `line` + `lint`): directory or
//! whole-file waivers are intentionally unrepresentable, so existing debt
//! stays enumerated and ratchets down instead of being grandfathered.

use std::fmt;

/// One per-site waiver entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Lint id (`"L1"`, `"L2"`, ...).
    pub lint: String,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based source line of the waived finding.
    pub line: u32,
    /// Mandatory human explanation.
    pub reason: String,
    /// Line of the waiver entry itself (for diagnostics).
    pub at_line: u32,
    /// Set when a finding consumed this waiver (stale-waiver detection).
    pub used: std::cell::Cell<bool>,
}

/// The `[config]` table.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files where the cast (L3) and indexing (L6) lints apply.
    pub hot_kernels: Vec<String>,
    /// Call-graph roots for the transitive allocation (L10) and
    /// panic-freedom (L11) analyses: `"Type::method"` or `"free_fn"`.
    pub kernel_roots: Vec<String>,
    /// Workspace-relative path of the metric-name registry consumed by L8.
    pub metric_registry: Option<String>,
}

/// One `[[budget]]` entry: an append-only audit record of the total waiver
/// count. The *last* entry must equal the current number of `[[waiver]]`
/// entries, so any change to the waiver population demands a justified
/// budget line — the ratchet cannot move silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    /// The waiver count being justified.
    pub total: u32,
    /// Why the count changed (mandatory, like waiver reasons).
    pub reason: String,
    /// Line of the budget entry itself (for diagnostics).
    pub at_line: u32,
}

/// Parsed waiver file.
#[derive(Debug, Default)]
pub struct WaiverFile {
    /// Global knobs.
    pub config: Config,
    /// All per-site waivers.
    pub waivers: Vec<Waiver>,
    /// Append-only waiver-count audit trail.
    pub budgets: Vec<Budget>,
}

/// Parse failure with a 1-based line number.
#[derive(Debug)]
pub struct ParseError {
    /// Line of the offending entry.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint-waivers.toml:{}: {}", self.line, self.message)
    }
}

fn err(line: u32, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Strips a trailing `#` comment that is not inside a double-quoted string.
pub(crate) fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// A scalar or string-array value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    StrArray(Vec<String>),
}

fn parse_value(raw: &str, line_no: u32) -> Result<Value, ParseError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(err(line_no, "unterminated string (multi-line strings unsupported)"));
        };
        if inner.contains('"') {
            return Err(err(line_no, "embedded quotes unsupported in this TOML subset"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(rest) = raw.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(err(line_no, "unterminated array"));
        };
        let mut items = Vec::new();
        for piece in inner.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue; // trailing comma
            }
            match parse_value(piece, line_no)? {
                Value::Str(s) => items.push(s),
                _ => return Err(err(line_no, "only string arrays are supported")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Ok(n) = raw.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(err(line_no, format!("unsupported value syntax: `{raw}`")))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Config,
    Waiver,
    Budget,
}

/// Parses the waiver file contents.
pub fn parse(text: &str) -> Result<WaiverFile, ParseError> {
    let mut out = WaiverFile::default();
    let mut section = Section::None;
    // The waiver entry currently being assembled.
    struct Pending {
        at_line: u32,
        lint: Option<String>,
        file: Option<String>,
        line: Option<u32>,
        reason: Option<String>,
    }
    let mut cur: Option<Pending> = None;
    // The budget entry currently being assembled.
    struct PendingBudget {
        at_line: u32,
        total: Option<u32>,
        reason: Option<String>,
    }
    let mut cur_budget: Option<PendingBudget> = None;

    fn flush(cur: &mut Option<Pending>, out: &mut WaiverFile) -> Result<(), ParseError> {
        if let Some(p) = cur.take() {
            let missing = |what: &str| err(p.at_line, format!("[[waiver]] missing `{what}`"));
            let reason = p.reason.ok_or_else(|| missing("reason"))?;
            if reason.trim().len() < 8 {
                return Err(err(
                    p.at_line,
                    "waiver `reason` must be a real explanation (≥ 8 characters)",
                ));
            }
            out.waivers.push(Waiver {
                lint: p.lint.ok_or_else(|| missing("lint"))?,
                file: p.file.ok_or_else(|| missing("file"))?,
                line: p.line.ok_or_else(|| missing("line"))?,
                reason,
                at_line: p.at_line,
                used: std::cell::Cell::new(false),
            });
        }
        Ok(())
    }

    fn flush_budget(
        cur: &mut Option<PendingBudget>,
        out: &mut WaiverFile,
    ) -> Result<(), ParseError> {
        if let Some(p) = cur.take() {
            let missing = |what: &str| err(p.at_line, format!("[[budget]] missing `{what}`"));
            let reason = p.reason.ok_or_else(|| missing("reason"))?;
            if reason.trim().len() < 8 {
                return Err(err(
                    p.at_line,
                    "budget `reason` must be a real explanation (≥ 8 characters)",
                ));
            }
            out.budgets.push(Budget {
                total: p.total.ok_or_else(|| missing("total"))?,
                reason,
                at_line: p.at_line,
            });
        }
        Ok(())
    }

    let lines: Vec<&str> = text.lines().collect();
    let mut idx = 0usize;
    while idx < lines.len() {
        let line_no = (idx + 1) as u32;
        let mut line = strip_comment(lines[idx]).trim().to_string();
        idx += 1;
        if line.is_empty() {
            continue;
        }
        // A `key = [` opening without its `]` continues on following lines.
        if line.contains('=') && line.contains('[') && !line.contains(']') {
            while idx < lines.len() {
                let cont = strip_comment(lines[idx]).trim().to_string();
                idx += 1;
                line.push(' ');
                line.push_str(&cont);
                if cont.contains(']') {
                    break;
                }
            }
            if !line.contains(']') {
                return Err(err(line_no, "unterminated array"));
            }
        }
        let line = line.as_str();

        if line == "[config]" {
            flush(&mut cur, &mut out)?;
            flush_budget(&mut cur_budget, &mut out)?;
            section = Section::Config;
            continue;
        }
        if line == "[[waiver]]" {
            flush(&mut cur, &mut out)?;
            flush_budget(&mut cur_budget, &mut out)?;
            section = Section::Waiver;
            cur = Some(Pending {
                at_line: line_no,
                lint: None,
                file: None,
                line: None,
                reason: None,
            });
            continue;
        }
        if line == "[[budget]]" {
            flush(&mut cur, &mut out)?;
            flush_budget(&mut cur_budget, &mut out)?;
            section = Section::Budget;
            cur_budget = Some(PendingBudget { at_line: line_no, total: None, reason: None });
            continue;
        }
        if line.starts_with('[') {
            return Err(err(line_no, format!("unknown section `{line}`")));
        }

        let Some((key, raw_value)) = line.split_once('=') else {
            return Err(err(line_no, format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        let value = parse_value(raw_value, line_no)?;

        match section {
            Section::None => {
                return Err(err(line_no, "key outside any section"));
            }
            Section::Config => match (key, value) {
                ("hot_kernels", Value::StrArray(v)) => out.config.hot_kernels = v,
                ("hot_kernels", _) => {
                    return Err(err(line_no, "`hot_kernels` must be a string array"))
                }
                ("kernel_roots", Value::StrArray(v)) => out.config.kernel_roots = v,
                ("kernel_roots", _) => {
                    return Err(err(line_no, "`kernel_roots` must be a string array"))
                }
                ("metric_registry", Value::Str(s)) => out.config.metric_registry = Some(s),
                ("metric_registry", _) => {
                    return Err(err(line_no, "`metric_registry` must be a string path"))
                }
                _ => return Err(err(line_no, format!("unknown [config] key `{key}`"))),
            },
            Section::Waiver => {
                let Some(entry) = cur.as_mut() else {
                    return Err(err(line_no, "waiver key outside [[waiver]]"));
                };
                match (key, value) {
                    ("lint", Value::Str(s)) => entry.lint = Some(s),
                    ("file", Value::Str(s)) => entry.file = Some(s),
                    ("line", Value::Int(n)) if n > 0 => entry.line = Some(n as u32),
                    ("reason", Value::Str(s)) => entry.reason = Some(s),
                    _ => {
                        return Err(err(
                            line_no,
                            format!("unknown or mistyped [[waiver]] key `{key}`"),
                        ))
                    }
                }
            }
            Section::Budget => {
                let Some(entry) = cur_budget.as_mut() else {
                    return Err(err(line_no, "budget key outside [[budget]]"));
                };
                match (key, value) {
                    ("total", Value::Int(n)) if n >= 0 => entry.total = Some(n as u32),
                    ("reason", Value::Str(s)) => entry.reason = Some(s),
                    _ => {
                        return Err(err(
                            line_no,
                            format!("unknown or mistyped [[budget]] key `{key}`"),
                        ))
                    }
                }
            }
        }
    }
    flush(&mut cur, &mut out)?;
    flush_budget(&mut cur_budget, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_config_and_waivers() {
        let f = parse(
            r#"
# header comment
[config]
hot_kernels = ["a.rs", "b.rs"]  # inline comment

[[waiver]]
lint = "L2"
file = "crates/stat/src/drift.rs"
line = 288
reason = "sentinel checked above"
"#,
        )
        .expect("parses");
        assert_eq!(f.config.hot_kernels, ["a.rs", "b.rs"]);
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.waivers[0].lint, "L2");
        assert_eq!(f.waivers[0].line, 288);
    }

    #[test]
    fn rejects_blanket_waivers_missing_fields() {
        let e = parse(
            "[[waiver]]\nlint = \"L2\"\nfile = \"crates/stat\"\nreason = \"whole dir please\"\n",
        )
        .expect_err("line is mandatory");
        assert!(e.message.contains("missing `line`"), "{e}");
    }

    #[test]
    fn rejects_empty_reasons() {
        let e = parse("[[waiver]]\nlint = \"L1\"\nfile = \"x.rs\"\nline = 1\nreason = \"ok\"\n")
            .expect_err("reason too short");
        assert!(e.message.contains("real explanation"), "{e}");
    }

    #[test]
    fn comment_stripping_respects_strings() {
        let f = parse("[config]\nhot_kernels = [\"a#b.rs\"] # real comment\n").expect("parses");
        assert_eq!(f.config.hot_kernels, ["a#b.rs"]);
    }

    #[test]
    fn multi_line_arrays_parse() {
        let f = parse("[config]\nhot_kernels = [\n  \"a.rs\",  # why\n  \"b.rs\",\n]\n")
            .expect("parses");
        assert_eq!(f.config.hot_kernels, ["a.rs", "b.rs"]);
    }

    #[test]
    fn unknown_sections_and_keys_fail() {
        assert!(parse("[tools]\n").is_err());
        assert!(parse("[config]\nallow_all = true\n").is_err());
    }

    #[test]
    fn parses_analyze_config_and_budgets() {
        let f = parse(
            r#"
[config]
kernel_roots = ["IncrementalPearson::push", "free_fn"]
metric_registry = "crates/obs/metrics-registry.toml"

[[budget]]
total = 5
reason = "seeded debt enumerated at L8-L11 introduction"
"#,
        )
        .expect("parses");
        assert_eq!(f.config.kernel_roots, ["IncrementalPearson::push", "free_fn"]);
        assert_eq!(f.config.metric_registry.as_deref(), Some("crates/obs/metrics-registry.toml"));
        assert_eq!(f.budgets.len(), 1);
        assert_eq!(f.budgets[0].total, 5);
    }

    #[test]
    fn budget_requires_total_and_real_reason() {
        let e = parse("[[budget]]\nreason = \"long enough reason\"\n").expect_err("no total");
        assert!(e.message.contains("missing `total`"), "{e}");
        let e = parse("[[budget]]\ntotal = 3\nreason = \"meh\"\n").expect_err("short reason");
        assert!(e.message.contains("real explanation"), "{e}");
    }
}

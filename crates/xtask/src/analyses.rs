//! The second-generation analyses (L8–L11) built on the parser, symbol
//! index and call graph — run by `cargo run -p xtask -- analyze`.
//!
//! | id  | rule |
//! |-----|------|
//! | L8  | every `counter`/`gauge`/`histogram`/`sketch`/`span` name used in `crates/*/src` must be declared in the metric registry file, and vice versa |
//! | L9  | every `Ordering::*` use carries a `//` justification (same line or line above); read-modify-write with `Relaxed` is waiver-only |
//! | L10 | registered kernel roots must not reach an allocation (`Vec::new`, `vec!`, `to_vec`, `clone`, `format!`, `Box::new`, `collect`, …) through any call path |
//! | L11 | registered kernel roots must not reach `unwrap`/`expect`/`panic!`-family macros or unchecked indexing through any call path |
//!
//! L10/L11 diagnostics print the full call path from the kernel root to the
//! violation site, so the fix target is unambiguous.

use std::collections::{BTreeMap, HashSet};

use crate::callgraph::{self, CallGraph};
use crate::lexer::TokKind;
use crate::lints::{self, Finding};
use crate::parser::{CallKind, FnItem};
use crate::symbols::SymbolIndex;
use crate::SourceFile;

// ---------------------------------------------------------------- L8 ------

/// One `[[metric]]` entry in the registry file. `name` may contain `*`
/// wildcards for families minted through a `format!` template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    /// `counter`, `gauge`, `histogram`, `sketch` or `span`.
    pub kind: String,
    /// Declared name or wildcard pattern.
    pub name: String,
    /// Line of the entry (for diagnostics).
    pub at_line: u32,
}

/// Parses the metric-registry file (same TOML subset as the waiver file):
/// repeated `[[metric]]` sections with `kind`, `name` and an optional `doc`.
pub fn parse_registry(text: &str) -> Result<Vec<MetricEntry>, String> {
    let mut out: Vec<MetricEntry> = Vec::new();
    let mut cur: Option<(u32, Option<String>, Option<String>)> = None; // (line, kind, name)
    let flush = |cur: &mut Option<(u32, Option<String>, Option<String>)>,
                 out: &mut Vec<MetricEntry>|
     -> Result<(), String> {
        if let Some((at_line, kind, name)) = cur.take() {
            let kind = kind.ok_or(format!("registry entry at line {at_line} missing `kind`"))?;
            if !matches!(kind.as_str(), "counter" | "gauge" | "histogram" | "sketch" | "span") {
                return Err(format!(
                    "registry entry at line {at_line}: kind `{kind}` is not \
                     counter/gauge/histogram/sketch/span"
                ));
            }
            let name = name.ok_or(format!("registry entry at line {at_line} missing `name`"))?;
            out.push(MetricEntry { kind, name, at_line });
        }
        Ok(())
    };
    for (idx, raw) in text.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = crate::waivers::strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[metric]]" {
            flush(&mut cur, &mut out)?;
            cur = Some((line_no, None, None));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("registry line {line_no}: expected `key = value`"));
        };
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!("registry line {line_no}: values must be quoted strings"));
        };
        let Some(entry) = cur.as_mut() else {
            return Err(format!("registry line {line_no}: key outside [[metric]]"));
        };
        match key.trim() {
            "kind" => entry.1 = Some(value.to_string()),
            "name" => entry.2 = Some(value.to_string()),
            "doc" => {}
            other => return Err(format!("registry line {line_no}: unknown key `{other}`")),
        }
    }
    flush(&mut cur, &mut out)?;
    Ok(out)
}

/// `*`-wildcard match (each `*` spans any run of characters).
fn glob_match(pat: &str, s: &str) -> bool {
    if !pat.contains('*') {
        return pat == s;
    }
    let parts: Vec<&str> = pat.split('*').collect();
    let (first, last) = (parts[0], parts[parts.len() - 1]);
    if !s.starts_with(first) {
        return false;
    }
    let mut rest = &s[first.len()..];
    for mid in &parts[1..parts.len() - 1] {
        if mid.is_empty() {
            continue;
        }
        match rest.find(mid) {
            Some(i) => rest = &rest[i + mid.len()..],
            None => return false,
        }
    }
    rest.len() >= last.len() && rest.ends_with(last)
}

/// Rewrites a `format!` template to a registry wildcard:
/// `"ingest.shard{shard:02}.queue_depth"` → `"ingest.shard*.queue_depth"`.
fn template_to_wildcard(template: &str) -> String {
    let mut out = String::with_capacity(template.len());
    let mut chars = template.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                out.push('{');
            }
            '{' => {
                for c2 in chars.by_ref() {
                    if c2 == '}' {
                        break;
                    }
                }
                out.push('*');
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                out.push('}');
            }
            c => out.push(c),
        }
    }
    out
}

/// One metric-creation site found in source.
#[derive(Debug)]
struct MetricUse {
    kind: &'static str,
    /// Literal name, or wildcarded template; `None` when the argument is
    /// not a literal or `format!` template (flagged as dynamic).
    name: Option<String>,
    file: String,
    line: u32,
}

/// Collects `counter("..")` / `gauge("..")` / `histogram("..")` /
/// `sketch("..")` / `span("..")` / `span_child_of("..")` sites from one
/// file's test-stripped tokens.
fn metric_uses(f: &SourceFile) -> Vec<MetricUse> {
    let toks = &f.lib_toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let kind = match t.text.as_str() {
            "counter" => "counter",
            "gauge" => "gauge",
            "histogram" => "histogram",
            "sketch" => "sketch",
            "span" | "span_child_of" => "span",
            _ => continue,
        };
        if !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        // Skip the definitions themselves (`pub fn counter(..)`) and method
        // calls on foreign receivers (`x.span(..)`).
        if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct(".")) {
            continue;
        }
        // First argument: a string literal, or a `format!` template
        // (optionally behind `&`).
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.is_punct("&")) {
            j += 1;
        }
        let name = if toks.get(j).is_some_and(|t| t.kind == TokKind::Str) {
            Some(toks[j].text.clone())
        } else if toks.get(j).is_some_and(|t| t.is_ident("format"))
            && toks.get(j + 1).is_some_and(|t| t.is_punct("!"))
            && toks.get(j + 2).is_some_and(|t| t.is_punct("("))
            && toks.get(j + 3).is_some_and(|t| t.kind == TokKind::Str)
        {
            Some(template_to_wildcard(&toks[j + 3].text))
        } else {
            None
        };
        out.push(MetricUse { kind, name, file: f.rel.clone(), line: t.line });
    }
    out
}

/// L8 — metric-name registry, both directions.
pub fn check_metric_registry(
    files: &[SourceFile],
    registry_rel: &str,
    entries: &[MetricEntry],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seen: BTreeMap<(&str, &str), u32> = BTreeMap::new();
    for e in entries {
        if let Some(first) = seen.insert((e.kind.as_str(), e.name.as_str()), e.at_line) {
            out.push(Finding {
                lint: "L8",
                file: registry_rel.to_string(),
                line: e.at_line,
                message: format!(
                    "duplicate registry entry for {} `{}` (first declared at line {first})",
                    e.kind, e.name
                ),
            });
        }
    }

    let uses: Vec<MetricUse> =
        files.iter().filter(|f| crate::in_src(&f.rel)).flat_map(metric_uses).collect();

    for u in &uses {
        let Some(name) = &u.name else {
            out.push(Finding {
                lint: "L8",
                file: u.file.clone(),
                line: u.line,
                message: format!(
                    "dynamic {} name — pass a string literal or an inline `format!` template \
                     so the name is statically checkable against {registry_rel}",
                    u.kind
                ),
            });
            continue;
        };
        let registered = entries.iter().any(|e| {
            e.kind == u.kind
                && if name.contains('*') { e.name == *name } else { glob_match(&e.name, name) }
        });
        if !registered {
            out.push(Finding {
                lint: "L8",
                file: u.file.clone(),
                line: u.line,
                message: format!(
                    "{} `{name}` is not declared in {registry_rel} — add a [[metric]] entry \
                     (typo'd names silently corrupt manifest diffs)",
                    u.kind
                ),
            });
        }
    }

    for e in entries {
        let used = uses.iter().any(|u| {
            u.name.as_ref().is_some_and(|n| {
                e.kind == u.kind
                    && if n.contains('*') { e.name == *n } else { glob_match(&e.name, n) }
            })
        });
        if !used {
            out.push(Finding {
                lint: "L8",
                file: registry_rel.to_string(),
                line: e.at_line,
                message: format!(
                    "registry entry {} `{}` is never created in crates/*/src — delete the \
                     entry or wire the metric",
                    e.kind, e.name
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------- L9 ------

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Read-modify-write atomics: with `Relaxed` these still serialize the
/// individual operation but order nothing around it — exactly the subtle
/// case that needs an explicit waiver, not a drive-by comment.
const RMW_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "swap",
];

/// L9 — atomic-ordering audit over one file's test-stripped tokens.
pub fn check_atomic_orderings(f: &SourceFile) -> Vec<Finding> {
    let toks = &f.lib_toks;
    let comment_lines: HashSet<u32> = f
        .lexed
        .comments
        .iter()
        .filter(|(_, text)| !text.starts_with('/') && !text.starts_with('!') && !text.is_empty())
        .map(|&(line, _)| line)
        .collect();
    let mut out = Vec::new();
    let mut flagged: HashSet<(u32, bool)> = HashSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("Ordering")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| {
                n.kind == TokKind::Ident && ATOMIC_ORDERINGS.contains(&n.text.as_str())
            }))
        {
            continue;
        }
        let variant = toks[i + 2].text.as_str();
        // Look back within the statement for the atomic method being
        // parameterised by this ordering.
        let mut rmw = None;
        for j in (i.saturating_sub(16)..i).rev() {
            if toks[j].is_punct(";") || toks[j].is_punct("{") {
                break;
            }
            if toks[j].kind == TokKind::Ident && RMW_METHODS.contains(&toks[j].text.as_str()) {
                rmw = Some(toks[j].text.clone());
                break;
            }
        }
        let line = t.line;
        if let (Some(method), "Relaxed") = (&rmw, variant) {
            if flagged.insert((line, true)) {
                out.push(Finding {
                    lint: "L9",
                    file: f.rel.clone(),
                    line,
                    message: format!(
                        "`{method}(.., Ordering::Relaxed)` is a read-modify-write with no \
                         ordering guarantees — use a stronger ordering, or waive the site \
                         with the merge-correctness argument"
                    ),
                });
            }
            continue;
        }
        let justified = comment_lines.contains(&line) || comment_lines.contains(&(line - 1));
        if !justified && flagged.insert((line, false)) {
            out.push(Finding {
                lint: "L9",
                file: f.rel.clone(),
                line,
                message: format!(
                    "`Ordering::{variant}` without a justification — state the \
                     happens-before reasoning in a `//` comment on this line or the line \
                     above"
                ),
            });
        }
    }
    out
}

// ----------------------------------------------------------- L10/L11 ------

/// Allocation evidence inside a function body: `(what, line)`.
fn allocation_sites(f: &FnItem) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for m in &f.macros {
        if matches!(m.name.as_str(), "vec" | "format") {
            out.push((format!("{}!", m.name), m.line));
        }
    }
    for c in &f.calls {
        match &c.kind {
            CallKind::Method { .. }
                if matches!(
                    c.name.as_str(),
                    "clone" | "to_vec" | "to_owned" | "to_string" | "collect"
                ) =>
            {
                out.push((format!(".{}()", c.name), c.line));
            }
            CallKind::Qualified { qualifier }
                if matches!(qualifier.as_str(), "Vec" | "String" | "Box" | "VecDeque")
                    && matches!(c.name.as_str(), "new" | "with_capacity" | "from" | "leak") =>
            {
                out.push((format!("{qualifier}::{}", c.name), c.line));
            }
            _ => {}
        }
    }
    out.sort_by_key(|&(_, line)| line);
    out
}

/// Panic evidence inside a function body (unchecked indexing is detected by
/// a token re-scan of the body range, reusing the L6 matcher).
fn panic_sites(f: &FnItem, file: &SourceFile) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for m in &f.macros {
        if matches!(m.name.as_str(), "panic" | "unreachable" | "todo" | "unimplemented") {
            out.push((format!("{}!", m.name), m.line));
        }
    }
    for c in &f.calls {
        if matches!(&c.kind, CallKind::Method { .. })
            && matches!(c.name.as_str(), "unwrap" | "expect")
        {
            out.push((format!(".{}()", c.name), c.line));
        }
    }
    if let Some((open, close)) = f.body {
        let body = &file.lexed.toks[open + 1..close.min(file.lexed.toks.len())];
        for finding in lints::lint_unchecked_index(&file.rel, body) {
            out.push(("unchecked indexing `[..]`".to_string(), finding.line));
        }
    }
    out.sort_by_key(|&(_, line)| line);
    out.dedup();
    out
}

/// L10 + L11 — walks the call graph from the configured kernel roots and
/// reports every allocation/panic site reachable from them, with the full
/// root → … → site call path. Returns `(findings, config_errors)`.
pub fn check_kernel_paths(
    files: &[SourceFile],
    parsed: &[Vec<FnItem>],
    idx: &SymbolIndex,
    graph: &CallGraph,
    roots: &[String],
) -> (Vec<Finding>, Vec<String>) {
    let mut errors = Vec::new();
    let mut root_slots = Vec::new();
    for r in roots {
        let slots = idx.resolve_root(r);
        if slots.is_empty() {
            errors.push(format!(
                "[config] kernel_roots entry `{r}` does not resolve to any function — fix the \
                 name or remove the entry"
            ));
        }
        root_slots.extend(slots);
    }
    let pred = callgraph::reach(graph, &root_slots);

    let mut out = Vec::new();
    for (slot, p) in pred.iter().enumerate() {
        if p.is_none() {
            continue;
        }
        let id = idx.fns[slot];
        let f = &parsed[id.file][id.item];
        let file = &files[id.file];
        let path = callgraph::path_labels(idx, parsed, &pred, slot).join(" → ");
        for (what, line) in allocation_sites(f) {
            out.push(Finding {
                lint: "L10",
                file: file.rel.clone(),
                line,
                message: format!(
                    "hot path allocates: `{what}` reached via {path} — kernels must stay \
                     allocation-free; preallocate in the constructor or take a caller buffer"
                ),
            });
        }
        for (what, line) in panic_sites(f, file) {
            out.push(Finding {
                lint: "L11",
                file: file.rel.clone(),
                line,
                message: format!(
                    "hot path can panic: {what} reached via {path} — return an error or prove \
                     the bound with `get`/pattern matching (asserts on API misuse are the \
                     sanctioned exception)"
                ),
            });
        }
    }
    (out, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn source(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let lib_toks = lints::strip_test_code(&lexed.toks);
        SourceFile { rel: rel.to_string(), lexed, lib_toks }
    }

    // ---- registry parsing / matching ------------------------------------

    #[test]
    fn registry_parses_and_rejects() {
        let entries = parse_registry(
            "# header\n[[metric]]\nkind = \"counter\"\nname = \"a.b\"\ndoc = \"x\"\n\n\
             [[metric]]\nkind = \"span\"\nname = \"s\"\n",
        )
        .expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].kind, "counter");
        assert!(parse_registry("[[metric]]\nkind = \"gauge\"\nname = \"x\"\n").is_ok());
        assert!(parse_registry("[[metric]]\nkind = \"timer\"\nname = \"x\"\n").is_err());
        assert!(parse_registry("[[metric]]\nname = \"x\"\n").is_err());
        assert!(parse_registry("kind = \"counter\"\n").is_err());
    }

    #[test]
    fn glob_and_template() {
        assert!(glob_match("ingest.shard*.queue_depth", "ingest.shard03.queue_depth"));
        assert!(!glob_match("ingest.shard*.queue_depth", "ingest.shard03.depth"));
        assert!(glob_match("exact", "exact"));
        assert!(!glob_match("exact", "exact2"));
        assert_eq!(
            template_to_wildcard("ingest.shard{shard:02}.queue_depth"),
            "ingest.shard*.queue_depth"
        );
        assert_eq!(template_to_wildcard("a{{b}}c"), "a{b}c");
    }

    // ---- L8 -------------------------------------------------------------

    fn entry(kind: &str, name: &str) -> MetricEntry {
        MetricEntry { kind: kind.to_string(), name: name.to_string(), at_line: 1 }
    }

    #[test]
    fn l8_fires_on_unregistered_and_unused() {
        let files = [source("crates/a/src/lib.rs", "fn f() { obs::counter(\"a.typo\"); }")];
        let entries = [entry("counter", "a.real")];
        let findings = check_metric_registry(&files, "reg.toml", &entries);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("not declared"));
        assert!(findings[1].message.contains("never created"));
    }

    #[test]
    fn l8_quiet_on_registered_wildcards_and_templates() {
        let files = [source(
            "crates/a/src/lib.rs",
            "fn f(i: usize) { counter(\"a.hits\"); histogram(&format!(\"a.s{i:02}.d\")); \
             let g = span(\"a.work\"); }",
        )];
        let entries =
            [entry("counter", "a.hits"), entry("histogram", "a.s*.d"), entry("span", "a.work")];
        let findings = check_metric_registry(&files, "reg.toml", &entries);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn l8_flags_dynamic_names_and_skips_defs_tests_and_methods() {
        let files = [source(
            "crates/a/src/lib.rs",
            "pub fn counter(name: &str) {}\nfn f(n: &str) { counter(n); x.span(1); }\n\
             #[cfg(test)] mod t { fn g() { counter(\"test.only\"); } }",
        )];
        let findings = check_metric_registry(&files, "reg.toml", &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("dynamic counter name"));
    }

    // ---- L9 -------------------------------------------------------------

    #[test]
    fn l9_requires_justification_and_flags_relaxed_rmw() {
        let f = source(
            "crates/a/src/lib.rs",
            "fn f(a: &AtomicU64) {\n\
             a.load(Ordering::Relaxed);\n\
             // monotone counter, no ordering needed\n\
             a.load(Ordering::Acquire);\n\
             a.fetch_add(1, Ordering::Relaxed);\n\
             a.fetch_add(1, Ordering::AcqRel); // pairs with the release store in flush\n\
             }",
        );
        let findings = check_atomic_orderings(&f);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("without a justification"));
        assert_eq!(findings[0].line, 2);
        assert!(findings[1].message.contains("read-modify-write"));
        assert_eq!(findings[1].line, 5);
    }

    #[test]
    fn l9_skips_test_code_and_cmp_ordering() {
        let f = source(
            "crates/a/src/lib.rs",
            "fn f(a: f64, b: f64) -> Ordering { a.total_cmp(&b) }\n\
             #[cfg(test)] mod t { fn g(a: &AtomicU64) { a.store(1, Ordering::SeqCst); } }",
        );
        assert!(check_atomic_orderings(&f).is_empty());
    }

    // ---- L10 / L11 ------------------------------------------------------

    fn kernel_setup(src: &str) -> (Vec<SourceFile>, Vec<Vec<FnItem>>, SymbolIndex, CallGraph) {
        let files = vec![source("crates/a/src/lib.rs", src)];
        let parsed: Vec<Vec<FnItem>> = files.iter().map(|f| parse_file(&f.lexed.toks)).collect();
        let idx = SymbolIndex::build(&parsed);
        let g = callgraph::build(&idx, &parsed);
        (files, parsed, idx, g)
    }

    #[test]
    fn l10_l11_report_transitive_paths() {
        let (files, parsed, idx, g) = kernel_setup(
            "impl Kern { pub fn push(&mut self) { self.helper(); } \
             fn helper(&self) { stage(); } }\n\
             fn stage() { let v = Vec::new(); x.unwrap(); }",
        );
        let (findings, errors) =
            check_kernel_paths(&files, &parsed, &idx, &g, &["Kern::push".to_string()]);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(findings.len(), 2, "{findings:?}");
        let l10 = findings.iter().find(|f| f.lint == "L10").expect("alloc finding");
        assert!(l10.message.contains("Kern::push → Kern::helper → stage"), "{}", l10.message);
        let l11 = findings.iter().find(|f| f.lint == "L11").expect("panic finding");
        assert!(l11.message.contains("Kern::push → Kern::helper → stage"), "{}", l11.message);
    }

    #[test]
    fn l11_flags_indexing_but_not_asserts() {
        let (files, parsed, idx, g) = kernel_setup(
            "impl Kern { pub fn push(&mut self, xs: &[f64], i: usize) -> f64 { \
             assert!(i < xs.len()); xs[i] } }",
        );
        let (findings, _) =
            check_kernel_paths(&files, &parsed, &idx, &g, &["Kern::push".to_string()]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("unchecked indexing"));
    }

    #[test]
    fn unreachable_violations_stay_silent_and_bad_roots_error() {
        let (files, parsed, idx, g) =
            kernel_setup("impl Kern { pub fn push(&mut self) {} }\nfn island() { x.unwrap(); }");
        let (findings, errors) = check_kernel_paths(
            &files,
            &parsed,
            &idx,
            &g,
            &["Kern::push".to_string(), "Kern::missing".to_string()],
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("Kern::missing"));
    }
}

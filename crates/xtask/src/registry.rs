//! L4 — registry completeness. Cross-references the filesystem against the
//! detector factory, the property-test suite, the benchmark suite, and the
//! experiment reproduction driver, so a new detector or experiment cannot
//! quietly ship half-wired.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::lints::Finding;
use crate::Workspace;

const DETECTOR_DIR: &str = "crates/core/src/detectors";
const DETECTOR_MOD: &str = "crates/core/src/detectors/mod.rs";
const PROPS: &str = "crates/core/tests/props.rs";
const BENCHES: &str = "crates/bench/benches/detectors.rs";
const BIN_DIR: &str = "crates/bench/src/bin";
const REPRODUCE: &str = "crates/bench/src/bin/reproduce_all.rs";

/// Performance-critical kernels that must stay covered by both a
/// property-test suite (equivalence with their batch reference) and a
/// criterion benchmark: `(identifier, declaring file, props file, bench
/// file)`. Presence is checked at the token level in all three files.
const KERNELS: &[(&str, &str, &str, &str)] = &[
    (
        "IncrementalPearson",
        "crates/stat/src/incremental.rs",
        "crates/stat/tests/props.rs",
        "crates/bench/benches/transforms.rs",
    ),
    (
        "IncrementalMean",
        "crates/stat/src/incremental.rs",
        "crates/stat/tests/props.rs",
        "crates/bench/benches/transforms.rs",
    ),
    (
        "WindowCadence",
        "crates/tsframe/src/transform.rs",
        "crates/tsframe/tests/props.rs",
        "crates/bench/benches/transforms.rs",
    ),
    (
        "par_map",
        "crates/core/src/par.rs",
        "crates/core/tests/props.rs",
        "crates/bench/benches/substrates.rs",
    ),
    (
        "Histogram",
        "crates/obs/src/metrics.rs",
        "crates/obs/tests/props.rs",
        "crates/bench/benches/substrates.rs",
    ),
    (
        "encode_ndjson",
        "crates/obs/src/event.rs",
        "crates/obs/tests/props.rs",
        "crates/bench/benches/substrates.rs",
    ),
    (
        "BatchedRecorder",
        "crates/obs/src/metrics.rs",
        "crates/obs/tests/props.rs",
        "crates/bench/benches/substrates.rs",
    ),
    (
        "fold_spans",
        "crates/obs/src/flame.rs",
        "crates/obs/tests/props.rs",
        "crates/bench/benches/substrates.rs",
    ),
    (
        "ReorderBuffer",
        "crates/ingest/src/reorder.rs",
        "crates/ingest/tests/props.rs",
        "crates/bench/benches/substrates.rs",
    ),
    (
        "ShardRouter",
        "crates/ingest/src/router.rs",
        "crates/ingest/tests/props.rs",
        "crates/bench/benches/substrates.rs",
    ),
];

fn finding(file: &str, line: u32, message: impl Into<String>) -> Finding {
    Finding { lint: "L4", file: file.to_string(), line, message: message.into() }
}

/// The (already lexed) tokens of a required workspace file.
fn toks<'a>(ws: &'a Workspace, rel: &str) -> Result<&'a [Tok], Finding> {
    ws.get(rel)
        .map(|f| f.lexed.toks.as_slice())
        .ok_or_else(|| finding(rel, 1, "required file is missing from the workspace"))
}

/// Stems of the `.rs` files directly inside `dir` (no recursion), from the
/// already-walked workspace file list.
fn dir_stems(ws: &Workspace, dir: &str) -> BTreeSet<String> {
    let prefix = format!("{dir}/");
    ws.files
        .iter()
        .filter_map(|f| f.rel.strip_prefix(&prefix))
        .filter(|rest| !rest.contains('/'))
        .filter_map(|name| name.strip_suffix(".rs"))
        .map(str::to_string)
        .collect()
}

/// All identifier texts in a token stream.
fn idents(toks: &[Tok]) -> BTreeSet<String> {
    toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone()).collect()
}

/// `mod name;` declarations with their lines.
fn mod_decls(toks: &[Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for w in toks.windows(3) {
        if w[0].is_ident("mod") && w[1].kind == TokKind::Ident && w[2].is_punct(";") {
            out.push((w[1].text.clone(), w[0].line));
        }
    }
    out
}

/// `pub struct <X>Detector` declarations with their lines.
fn detector_structs(toks: &[Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for w in toks.windows(3) {
        if w[0].is_ident("pub")
            && w[1].is_ident("struct")
            && w[2].kind == TokKind::Ident
            && w[2].text.ends_with("Detector")
        {
            out.push((w[2].text.clone(), w[2].line));
        }
    }
    out
}

/// The token range of `fn build`'s body in `mod.rs` (factory match).
fn build_body(toks: &[Tok]) -> Option<&[Tok]> {
    let start = toks.windows(2).position(|w| w[0].is_ident("fn") && w[1].is_ident("build"))?;
    let open = (start..toks.len()).find(|&i| toks[i].is_punct("{"))?;
    let mut depth = 0i32;
    for i in open..toks.len() {
        if toks[i].is_punct("{") {
            depth += 1;
        } else if toks[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(&toks[open..=i]);
            }
        }
    }
    None
}

/// Experiment functions an `exp_*.rs` bin pulls from the shared
/// `experiments` module: `use navarchos_bench::experiments::{a, b};` or the
/// single-ident form.
fn imported_experiments(toks: &[Tok]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_ident("use")
            && toks[i + 1..].first().is_some_and(|t| t.kind == TokKind::Ident))
        {
            i += 1;
            continue;
        }
        // Walk the path; only harvest when it goes through `experiments`.
        let mut through_experiments = false;
        let mut j = i + 1;
        while j + 1 < toks.len() && toks[j].kind == TokKind::Ident && toks[j + 1].is_punct("::") {
            if toks[j].text == "experiments" {
                through_experiments = true;
            }
            j += 2;
        }
        if through_experiments {
            if toks[j].is_punct("{") {
                let mut k = j + 1;
                while k < toks.len() && !toks[k].is_punct("}") {
                    if toks[k].kind == TokKind::Ident {
                        out.push((toks[k].text.clone(), toks[k].line));
                    }
                    k += 1;
                }
                j = k;
            } else if toks[j].kind == TokKind::Ident {
                out.push((toks[j].text.clone(), toks[j].line));
            }
        }
        i = j + 1;
    }
    out
}

/// Runs the registry-completeness checks over the loaded workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();

    let mod_toks = match toks(ws, DETECTOR_MOD) {
        Ok(t) => t,
        Err(f) => return vec![f],
    };
    let declared: Vec<(String, u32)> = mod_decls(mod_toks);

    // 1. Filesystem <-> `mod` declarations, both directions.
    let mut files = dir_stems(ws, DETECTOR_DIR);
    files.remove("mod");
    if files.is_empty() {
        return vec![finding(DETECTOR_DIR, 1, "no detector modules found")];
    }
    for stem in &files {
        if !declared.iter().any(|(m, _)| m == stem) {
            out.push(finding(
                DETECTOR_MOD,
                1,
                format!("detector module `{stem}.rs` exists on disk but is not declared — add `mod {stem};`"),
            ));
        }
    }
    for (m, line) in &declared {
        if !files.contains(m) {
            out.push(finding(
                DETECTOR_MOD,
                *line,
                format!("`mod {m};` declared but `{m}.rs` is missing from {DETECTOR_DIR}"),
            ));
        }
    }

    // 2. Every detector type must be constructible from the factory and
    //    covered by the proptest + benchmark suites.
    let mut types: Vec<(String, String, u32)> = Vec::new(); // (type, decl file, line)
    for stem in &files {
        let rel = format!("{DETECTOR_DIR}/{stem}.rs");
        let file_toks = match toks(ws, &rel) {
            Ok(t) => t,
            Err(f) => {
                out.push(f);
                continue;
            }
        };
        let found = detector_structs(file_toks);
        if found.is_empty() {
            out.push(finding(
                &rel,
                1,
                "detector module defines no `pub struct *Detector` — either add one or move \
                 the helpers into the module that uses them",
            ));
        }
        for (name, line) in found {
            types.push((name, rel.clone(), line));
        }
    }

    let factory = build_body(mod_toks).map(idents).unwrap_or_default();
    if factory.is_empty() {
        out.push(finding(DETECTOR_MOD, 1, "no `fn build` factory found"));
    }
    let props = toks(ws, PROPS).map(idents).unwrap_or_default();
    let benches = toks(ws, BENCHES).map(idents).unwrap_or_default();

    for (ty, rel, line) in &types {
        if !factory.is_empty() && !factory.contains(ty) {
            out.push(finding(
                rel,
                *line,
                format!("`{ty}` is not constructed by `DetectorKind::build` in {DETECTOR_MOD} — every detector must be reachable from the factory"),
            ));
        }
        if !props.contains(ty) {
            out.push(finding(
                rel,
                *line,
                format!("`{ty}` has no property-test coverage in {PROPS}"),
            ));
        }
        if !benches.contains(ty) {
            out.push(finding(rel, *line, format!("`{ty}` is not benchmarked in {BENCHES}")));
        }
    }

    // 3. Every registered hot kernel must exist where declared and be
    //    referenced by its property-test and benchmark suites.
    for &(ident, decl, props_file, bench_file) in KERNELS {
        let declared_here = toks(ws, decl).map(|t| idents(t).contains(ident)).unwrap_or(false);
        if !declared_here {
            out.push(finding(
                decl,
                1,
                format!("registered kernel `{ident}` not found in {decl} — update the KERNELS registry in xtask"),
            ));
            continue;
        }
        for (rel, role) in [(props_file, "property-test"), (bench_file, "benchmark")] {
            let covered = toks(ws, rel).map(|t| idents(t).contains(ident)).unwrap_or(false);
            if !covered {
                out.push(finding(
                    decl,
                    1,
                    format!("kernel `{ident}` has no {role} coverage in {rel}"),
                ));
            }
        }
    }

    // 4. Every `exp_*.rs` bin's experiment functions must be invoked by the
    //    reproduction driver.
    let reproduce = toks(ws, REPRODUCE).map(idents).unwrap_or_default();
    if reproduce.is_empty() {
        out.push(finding(REPRODUCE, 1, "reproduction driver missing or empty"));
        return out;
    }
    let bins: Vec<String> =
        dir_stems(ws, BIN_DIR).into_iter().filter(|s| s.starts_with("exp_")).collect();
    for stem in bins {
        let rel = format!("{BIN_DIR}/{stem}.rs");
        let bin_toks = match toks(ws, &rel) {
            Ok(t) => t,
            Err(f) => {
                out.push(f);
                continue;
            }
        };
        for (func, line) in imported_experiments(bin_toks) {
            if !reproduce.contains(&func) {
                out.push(finding(
                    &rel,
                    line,
                    format!("experiment `{func}` is run by this bin but never by {REPRODUCE} — the one-shot driver must cover every figure/table"),
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn extracts_mod_decls_and_detector_structs() {
        let toks = lex("mod kde;\npub mod x;\npub struct KdeDetector { }\nstruct Private;").toks;
        let mods: Vec<String> = mod_decls(&toks).into_iter().map(|(m, _)| m).collect();
        assert_eq!(mods, ["kde", "x"]);
        let structs: Vec<String> = detector_structs(&toks).into_iter().map(|(s, _)| s).collect();
        assert_eq!(structs, ["KdeDetector"]);
    }

    #[test]
    fn finds_build_body_only() {
        let src = "fn other() { A } impl K { pub fn build(&self) -> B { Box::new(KdeDetector::new()) } } fn after() { C }";
        let body = idents(build_body(&lex(src).toks).expect("has build"));
        assert!(body.contains("KdeDetector"));
        assert!(!body.contains("A"));
        assert!(!body.contains("C"));
    }

    #[test]
    fn harvests_experiment_imports() {
        let src = "use navarchos_bench::experiments::{figure1, paper_fleet};\nuse navarchos_bench::report::emit;\nuse navarchos_bench::experiments::table1;";
        let got: Vec<String> =
            imported_experiments(&lex(src).toks).into_iter().map(|(f, _)| f).collect();
        assert_eq!(got, ["figure1", "paper_fleet", "table1"]);
    }

    #[test]
    fn live_tree_passes() {
        // The repo this xtask ships in must itself satisfy L4.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ws = Workspace::load(&root).expect("workspace loads");
        let findings = check(&ws);
        assert!(
            findings.is_empty(),
            "registry drift:\n{}",
            findings
                .iter()
                .map(|f| format!("  {}:{} {}", f.file, f.line, f.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

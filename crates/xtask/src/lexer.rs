//! A small hand-rolled Rust lexer: strips comments, tokenises string/char
//! literals (string *content* is retained so the metric-registry analysis
//! can read literal metric names), and produces a line-numbered token
//! stream the lints scan for patterns.
//!
//! This is *not* a full Rust front-end — no keywords table, no operator
//! precedence — just enough faithful tokenisation that a lint looking for
//! `.unwrap()` can never be fooled by `"a string containing .unwrap()"` or
//! `// a comment mentioning panic!`. Handled: line and (nested) block
//! comments, string/byte-string/raw-string literals with arbitrary `#`
//! fences, char literals vs. lifetimes, numeric literals with underscores,
//! exponents and type suffixes, raw identifiers, and multi-char operators.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `f64`, ...).
    Ident,
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Float literal (`1.0`, `1e-6`, `2.5f64`, ...).
    Float,
    /// String or byte-string literal (content retained, escapes unprocessed).
    Str,
    /// Char literal (content discarded).
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Operator or delimiter; multi-char operators are one token (`==`).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text for idents/numbers/puncts and the *content* (between the
    /// quotes, escape sequences left raw) for string literals; empty for
    /// char literals.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Lexing output: the token stream plus the stripped comments (kept for the
/// `#[allow]` justification audit).
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub toks: Vec<Tok>,
    /// `(line, text)` of every comment, `//`/`/* */` markers removed.
    pub comments: Vec<(u32, String)>,
}

/// Multi-char operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "::", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Tokenises `src`. Never fails: unterminated constructs are closed at EOF,
/// which is good enough for linting (the compiler rejects such files long
/// before xtask sees them in practice).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Byte-index helpers; the lexer treats non-ASCII bytes as opaque ident
    // continuation characters, which is sound for all the lints' patterns.
    let at = |i: usize| -> u8 {
        if i < b.len() {
            b[i]
        } else {
            0
        }
    };
    let is_ident_start = |c: u8| c == b'_' || c.is_ascii_alphabetic() || c >= 0x80;
    let is_ident_cont = |c: u8| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80;

    while i < b.len() {
        let c = b[i];

        // Newlines & whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Line comment.
        if c == b'/' && at(i + 1) == b'/' {
            let start = i + 2;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            out.comments.push((line, src[start..i].trim().to_string()));
            continue;
        }

        // Block comment (nested).
        if c == b'/' && at(i + 1) == b'*' {
            let comment_line = line;
            let start = i + 2;
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && at(i + 1) == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && at(i + 1) == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let end = i.saturating_sub(2).max(start);
            out.comments.push((comment_line, src[start..end].trim().to_string()));
            continue;
        }

        // Identifier-leading constructs: plain idents, raw idents (`r#type`),
        // and string prefixes (`r"..."`, `b"..."`, `br#"..."#`).
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_cont(b[i]) {
                i += 1;
            }
            let word = &src[start..i];

            // Raw identifier r#name.
            if word == "r" && at(i) == b'#' && is_ident_start(at(i + 1)) {
                i += 1; // consume '#'
                let id_start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[id_start..i].to_string(),
                    line,
                });
                continue;
            }

            // String prefixes.
            let raw = matches!(word, "r" | "br" | "rb");
            let stringy = matches!(word, "r" | "b" | "br" | "rb");
            if stringy && (at(i) == b'"' || (raw && at(i) == b'#')) {
                let tok_line = line;
                let content_start;
                let mut content_end;
                if raw {
                    // r#*"..."#* — count the fence.
                    let mut hashes = 0;
                    while at(i) == b'#' {
                        hashes += 1;
                        i += 1;
                    }
                    if at(i) != b'"' {
                        // `b#` etc. — not a string after all; emit the ident.
                        out.toks.push(Tok { kind: TokKind::Ident, text: word.to_string(), line });
                        continue;
                    }
                    i += 1; // opening quote
                    content_start = i;
                    content_end = b.len();
                    'raw: while i < b.len() {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        if b[i] == b'"' {
                            let mut j = 0;
                            while j < hashes && at(i + 1 + j) == b'#' {
                                j += 1;
                            }
                            if j == hashes {
                                content_end = i;
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                } else {
                    // b"..." with escapes.
                    i += 1; // opening quote
                    content_start = i;
                    content_end = b.len();
                    while i < b.len() {
                        if b[i] == b'\\' {
                            i += 2;
                            continue;
                        }
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        if b[i] == b'"' {
                            content_end = i;
                            i += 1;
                            break;
                        }
                        i += 1;
                    }
                }
                let text =
                    src.get(content_start..content_end.min(b.len())).unwrap_or("").to_string();
                out.toks.push(Tok { kind: TokKind::Str, text, line: tok_line });
                continue;
            }

            out.toks.push(Tok { kind: TokKind::Ident, text: word.to_string(), line });
            continue;
        }

        // Plain string literal.
        if c == b'"' {
            let tok_line = line;
            i += 1;
            let content_start = i;
            let mut content_end = b.len();
            while i < b.len() {
                if b[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if b[i] == b'\n' {
                    line += 1;
                }
                if b[i] == b'"' {
                    content_end = i;
                    i += 1;
                    break;
                }
                i += 1;
            }
            let text = src.get(content_start..content_end.min(b.len())).unwrap_or("").to_string();
            out.toks.push(Tok { kind: TokKind::Str, text, line: tok_line });
            continue;
        }

        // Char literal vs lifetime.
        if c == b'\'' {
            let n1 = at(i + 1);
            if n1 == b'\\' {
                // Escaped char literal '\n', '\u{..}' ...
                i += 2;
                while i < b.len() && b[i] != b'\'' {
                    i += 1;
                }
                i += 1;
                out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
                continue;
            }
            if is_ident_start(n1) {
                // 'a → lifetime unless a closing quote follows immediately
                // after the ident ('x' is a char).
                let mut j = i + 1;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                if at(j) == b'\'' {
                    i = j + 1;
                    out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
                } else {
                    let text = src[i + 1..j].to_string();
                    i = j;
                    out.toks.push(Tok { kind: TokKind::Lifetime, text, line });
                }
                continue;
            }
            // '0', '(', ... — a one-char literal.
            i += 2;
            if at(i) == b'\'' {
                i += 1;
            }
            out.toks.push(Tok { kind: TokKind::Char, text: String::new(), line });
            continue;
        }

        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == b'0' && matches!(at(i + 1), b'x' | b'o' | b'b') {
                i += 2;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            } else {
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                // Fractional part: a '.' followed by a digit (so `1..n` and
                // `x.method()` stay punctuation/idents).
                if at(i) == b'.' && at(i + 1).is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                }
                // Trailing '.' float (`1.` not followed by ident/digit/'.').
                if !is_float && at(i) == b'.' && !is_ident_start(at(i + 1)) && at(i + 1) != b'.' {
                    is_float = true;
                    i += 1;
                }
                // Exponent.
                if matches!(at(i), b'e' | b'E')
                    && (at(i + 1).is_ascii_digit()
                        || (matches!(at(i + 1), b'+' | b'-') && at(i + 2).is_ascii_digit()))
                {
                    is_float = true;
                    i += 1;
                    if matches!(at(i), b'+' | b'-') {
                        i += 1;
                    }
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                }
            }
            // Type suffix (f64 → float; u32 → int).
            if is_ident_start(at(i)) {
                let suffix_start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                if matches!(&src[suffix_start..i], "f32" | "f64") {
                    is_float = true;
                }
            }
            out.toks.push(Tok {
                kind: if is_float { TokKind::Float } else { TokKind::Int },
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }

        // Operators, longest first.
        let rest = &src[i..];
        if let Some(op) = OPERATORS.iter().find(|op| rest.starts_with(**op)) {
            out.toks.push(Tok { kind: TokKind::Punct, text: (*op).to_string(), line });
            i += op.len();
            continue;
        }
        out.toks.push(Tok { kind: TokKind::Punct, text: (c as char).to_string(), line });
        i += 1;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let lexed = lex(r##"
            // a comment mentioning .unwrap()
            /* block with panic!("x") /* nested */ still comment */
            let s = "string with .unwrap() inside";
            let r = r#"raw with panic!"#;
        "##);
        let idents: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "let", "r"]);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].1.contains("unwrap"));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = lex("1.0 2 1e-6 0x1f 1..n 2.5f64 7f64 3u32").toks;
        let kinds: Vec<TokKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            [
                TokKind::Float,
                TokKind::Int,
                TokKind::Float,
                TokKind::Int,
                TokKind::Int,
                TokKind::Punct, // ..
                TokKind::Ident, // n
                TokKind::Float,
                TokKind::Float,
                TokKind::Int,
            ]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("&'a str 'x' '\\n' fn f<'b>()").toks;
        let lifetimes: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.as_str()).collect();
        assert_eq!(lifetimes, ["a", "b"]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        assert!(texts("a == b != c ..= d :: e").contains(&"==".to_string()));
        let t = texts("x..=y");
        assert_eq!(t, ["x", "..=", "y"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let toks = lex("a\n\"two\nline string\"\nb").toks;
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // string starts on line 2
        assert_eq!(toks[2].line, 4); // b after the 2-line string
    }

    #[test]
    fn string_content_is_retained() {
        let toks =
            lex(r##"let a = "ingest.records"; let b = r#"raw.name"#; let c = "es\"c";"##).toks;
        let strs: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Str).map(|t| t.text.as_str()).collect();
        assert_eq!(strs, ["ingest.records", "raw.name", "es\\\"c"]);
    }

    #[test]
    fn raw_identifiers() {
        let t = texts("let r#type = 1;");
        assert_eq!(t, ["let", "type", "=", "1", ";"]);
    }
}

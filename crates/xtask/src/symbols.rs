//! Cross-crate symbol index over the parsed workspace: every non-test
//! function, addressable by bare name and by `(type, method)` pair. The
//! call-graph builder resolves call sites against this index.

use std::collections::HashMap;

use crate::parser::FnItem;

/// One indexed function: which file it lives in and which parse slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnId {
    /// Index into the workspace file list.
    pub file: usize,
    /// Index into that file's `Vec<FnItem>`.
    pub item: usize,
}

/// The workspace-wide function index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// All indexed (non-test, bodied) functions in deterministic order.
    pub fns: Vec<FnId>,
    by_name: HashMap<String, Vec<usize>>,
    by_type_method: HashMap<(String, String), Vec<usize>>,
}

impl SymbolIndex {
    /// Builds the index from per-file parse results (parallel to the
    /// workspace file list). Test functions and bodiless declarations are
    /// not call-graph nodes: tests may panic freely, and a declaration has
    /// nothing to analyze.
    pub fn build(parsed: &[Vec<FnItem>]) -> SymbolIndex {
        let mut idx = SymbolIndex::default();
        for (file, items) in parsed.iter().enumerate() {
            for (item, f) in items.iter().enumerate() {
                if f.is_test || f.body.is_none() {
                    continue;
                }
                let slot = idx.fns.len();
                idx.fns.push(FnId { file, item });
                idx.by_name.entry(f.name.clone()).or_default().push(slot);
                if let Some(ty) = &f.self_ty {
                    idx.by_type_method.entry((ty.clone(), f.name.clone())).or_default().push(slot);
                }
            }
        }
        idx
    }

    /// Slots of every function named `name`, any type.
    pub fn by_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Slots of every `ty::name` method (multiple impl blocks possible).
    pub fn by_type_method(&self, ty: &str, name: &str) -> &[usize] {
        self.by_type_method
            .get(&(ty.to_string(), name.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// True when `ty` has at least one indexed method.
    pub fn knows_type(&self, ty: &str) -> bool {
        self.by_type_method.keys().any(|(t, _)| t == ty)
    }

    /// Resolves a `kernel_roots` entry (`"Type::method"` or `"free_fn"`)
    /// to its slots; empty when nothing matches.
    pub fn resolve_root(&self, root: &str) -> Vec<usize> {
        match root.split_once("::") {
            Some((ty, name)) => self.by_type_method(ty, name).to_vec(),
            None => self.by_name(root).iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn index(srcs: &[&str]) -> SymbolIndex {
        let parsed: Vec<_> = srcs.iter().map(|s| parse_file(&lex(s).toks)).collect();
        SymbolIndex::build(&parsed)
    }

    #[test]
    fn indexes_methods_and_free_fns_across_files() {
        let idx = index(&[
            "impl Kern { pub fn push(&mut self) {} } fn helper() {}",
            "impl Kern { pub fn pop(&mut self) {} }",
        ]);
        assert_eq!(idx.by_type_method("Kern", "push").len(), 1);
        assert_eq!(idx.by_type_method("Kern", "pop").len(), 1);
        assert_eq!(idx.by_name("helper").len(), 1);
        assert_eq!(idx.resolve_root("Kern::push").len(), 1);
        assert_eq!(idx.resolve_root("helper").len(), 1);
        assert!(idx.resolve_root("Kern::missing").is_empty());
        assert!(idx.knows_type("Kern"));
        assert!(!idx.knows_type("Vec"));
    }

    #[test]
    fn test_fns_are_not_indexed() {
        let idx = index(&["#[cfg(test)] mod t { fn helper() {} } trait T { fn decl(&self); }"]);
        assert!(idx.by_name("helper").is_empty());
        assert!(idx.by_name("decl").is_empty());
    }
}

//! A recursive-descent item parser over the [`crate::lexer`] token stream.
//!
//! This is the substrate for the cross-function analyses (L8–L11): it
//! produces, per file, the list of `fn` items with their enclosing impl
//! type, body token range, call sites and macro invocations. Like the
//! lexer it is *not* a Rust front-end — it understands just enough item
//! structure (attributes, `impl`/`trait`/`mod` nesting, generic-parameter
//! skipping, brace matching) that a call graph built on it is trustworthy
//! for code the compiler already accepted.
//!
//! Error philosophy: never panic, never reject. Malformed input produces a
//! best-effort (possibly empty) item list; the proptests in
//! `tests/parser_props.rs` hold the no-panic and span-sanity invariants on
//! arbitrary token soup.

use crate::lexer::{Tok, TokKind};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(..)` — a free function (or tuple-struct constructor).
    Free,
    /// `recv.name(..)`; `recv_self` distinguishes `self.name(..)`.
    Method {
        /// True for a direct `self.name(..)` receiver.
        recv_self: bool,
    },
    /// `Qualifier::name(..)` with the immediately preceding path segment.
    Qualified {
        /// The path segment before the final `::` (`Vec` in `Vec::new`).
        qualifier: String,
    },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Final path segment of the callee.
    pub name: String,
    /// Shape of the call expression.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: u32,
}

/// One `name!(..)` macro invocation inside a function body.
#[derive(Debug, Clone)]
pub struct MacroUse {
    /// Macro name without the `!`.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any (`IncrementalPearson`).
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Body token range `[open_brace, close_brace]`, inclusive; `None` for
    /// bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// True when the item sits under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
    /// Call sites in the body (excluding nested `fn` bodies).
    pub calls: Vec<Call>,
    /// Macro invocations in the body (excluding nested `fn` bodies).
    pub macros: Vec<MacroUse>,
}

impl FnItem {
    /// `Type::name` or bare `name` — the label used in diagnostics and
    /// `kernel_roots` entries.
    pub fn label(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that look like calls when followed by `(` but are not.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "for"
            | "loop"
            | "return"
            | "fn"
            | "move"
            | "break"
            | "continue"
            | "else"
            | "in"
            | "let"
            | "unsafe"
            | "as"
    )
}

/// Index just past a balanced `<...>` generic-parameter list starting at the
/// `<` in `toks[i]`; `>>`/`<<` count as two closes/opens, `->`/`=>` are
/// ignored. Returns `i` unchanged when `toks[i]` is not `<`.
fn skip_generics(toks: &[Tok], mut i: usize) -> usize {
    if i >= toks.len() || !toks[i].is_punct("<") {
        return i;
    }
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "<" if toks[i].kind == TokKind::Punct => depth += 1,
            "<<" if toks[i].kind == TokKind::Punct => depth += 2,
            ">" if toks[i].kind == TokKind::Punct => depth -= 1,
            ">>" if toks[i].kind == TokKind::Punct => depth -= 2,
            _ => {}
        }
        i += 1;
        if depth <= 0 {
            break;
        }
    }
    i
}

/// Parses the type after `impl` (or after `for` in `impl Trait for Type`):
/// skips `&`/`mut`/leading path segments and generic arguments, returning
/// `(last_path_segment, index past the type)`.
fn parse_type_path(toks: &[Tok], mut i: usize) -> (Option<String>, usize) {
    // References and mutability do not change the nominal type.
    while i < toks.len() && (toks[i].is_punct("&") || toks[i].is_ident("mut")) {
        if toks[i].is_punct("&") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Lifetime {
            i += 1;
        }
        i += 1;
    }
    if i >= toks.len() || toks[i].kind != TokKind::Ident || toks[i].text == "dyn" {
        return (None, i);
    }
    let mut last = toks[i].text.clone();
    i += 1;
    loop {
        i = skip_generics(toks, i);
        if i + 1 < toks.len() && toks[i].is_punct("::") && toks[i + 1].kind == TokKind::Ident {
            last = toks[i + 1].text.clone();
            i += 2;
        } else {
            break;
        }
    }
    (Some(last), i)
}

/// Index of the matching `}` for the `{` at `open`, or the last token when
/// unbalanced (EOF-closed, mirroring the lexer's philosophy).
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct("{") {
            depth += 1;
        } else if toks[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1).max(open)
}

/// Scans the attribute whose `[` is at `open`; returns (index past `]`,
/// whether it marks test-only code). Mirrors `lints::scan_attribute`.
fn scan_attribute(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_cfg = false;
    let mut has_test = false;
    let mut only_test = false;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth <= 0 {
                i += 1;
                break;
            }
        } else if t.kind == TokKind::Ident {
            if t.text == "cfg" {
                has_cfg = true;
            } else if t.text == "test" {
                has_test = true;
                only_test = i == open + 1;
            }
        }
        i += 1;
    }
    (i, (has_cfg && has_test) || only_test)
}

/// Parses one file's token stream into its `fn` items, in source order
/// (outer functions before the nested functions found inside them).
pub fn parse_file(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    parse_items(toks, 0, toks.len(), None, false, &mut out);
    out
}

/// Parses items in `toks[start..end]` under the given impl type / test
/// context, appending found functions to `out`.
fn parse_items(
    toks: &[Tok],
    start: usize,
    end: usize,
    self_ty: Option<&str>,
    in_test: bool,
    out: &mut Vec<FnItem>,
) {
    let end = end.min(toks.len());
    let mut i = start;
    let mut pending_test = false;
    while i < end {
        let t = &toks[i];

        // Attributes: remember whether they mark test code, then continue to
        // the item they decorate.
        if t.is_punct("#") && i + 1 < end {
            let open = if toks[i + 1].is_punct("[") {
                i + 1
            } else if i + 2 < end && toks[i + 1].is_punct("!") && toks[i + 2].is_punct("[") {
                i + 2
            } else {
                i += 1;
                continue;
            };
            let (past, is_test) = scan_attribute(toks, open);
            pending_test |= is_test;
            i = past.max(i + 1);
            continue;
        }

        if t.is_ident("fn") && i + 1 < end && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let fn_tok = i;
            let line = t.line;
            // Find the body `{` (or a `;` ending a bodiless declaration),
            // skipping the parameter list, return type and where clause.
            // Braces cannot appear before the body in a valid signature.
            let mut j = i + 2;
            let mut body = None;
            while j < end {
                if toks[j].is_punct("{") {
                    let close = match_brace(toks, j).min(end.saturating_sub(1)).max(j);
                    body = Some((j, close));
                    break;
                }
                if toks[j].is_punct(";") {
                    break;
                }
                j += 1;
            }
            let is_test = in_test || pending_test;
            pending_test = false;
            let mut item = FnItem {
                name,
                self_ty: self_ty.map(str::to_string),
                line,
                fn_tok,
                body,
                is_test,
                calls: Vec::new(),
                macros: Vec::new(),
            };
            if let Some((open, close)) = body {
                scan_body(toks, open + 1, close, &mut item);
                out.push(item);
                // Nested functions become their own items.
                parse_nested_fns(toks, open + 1, close, is_test, out);
                i = close + 1;
            } else {
                i = (j + 1).max(i + 2);
                out.push(item);
            }
            continue;
        }

        if t.is_ident("impl") || t.is_ident("trait") {
            let is_impl = t.is_ident("impl");
            let mut j = skip_generics(toks, i + 1);
            let (mut ty, after) = parse_type_path(toks, j);
            j = after;
            if is_impl {
                // `impl Trait for Type { .. }` — the type after `for` wins.
                if j < end && toks[j].is_ident("for") {
                    let (for_ty, after) = parse_type_path(toks, j + 1);
                    ty = for_ty;
                    j = after;
                }
            }
            // Skip the where clause to the opening brace (or a `;` for
            // `impl Trait for Type;`-style malformed input).
            while j < end && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if j < end && toks[j].is_punct("{") {
                let close = match_brace(toks, j).min(end.saturating_sub(1)).max(j);
                parse_items(toks, j + 1, close, ty.as_deref(), in_test || pending_test, out);
                pending_test = false;
                i = close + 1;
                continue;
            }
            pending_test = false;
            i = j.max(i + 1);
            continue;
        }

        if t.is_ident("mod") && i + 1 < end && toks[i + 1].kind == TokKind::Ident {
            // Inline module: recurse; `mod name;` declarations just skip.
            if i + 2 < end && toks[i + 2].is_punct("{") {
                let close = match_brace(toks, i + 2).min(end.saturating_sub(1)).max(i + 2);
                parse_items(toks, i + 3, close, None, in_test || pending_test, out);
                pending_test = false;
                i = close + 1;
                continue;
            }
            pending_test = false;
            i += 2;
            continue;
        }

        // Any other token: a brace opens an item body we don't model
        // (struct/enum/union/extern block) — recurse so impls nested in
        // them are still found; everything else advances one token.
        if t.is_punct("{") {
            let close = match_brace(toks, i).min(end.saturating_sub(1)).max(i);
            parse_items(toks, i + 1, close, self_ty, in_test || pending_test, out);
            pending_test = false;
            i = close + 1;
            continue;
        }
        if t.kind == TokKind::Ident || t.is_punct(";") {
            pending_test = false;
        }
        i += 1;
    }
}

/// Finds nested `fn` items inside a body range and parses them (their calls
/// are attributed to themselves, not the enclosing function).
fn parse_nested_fns(toks: &[Tok], start: usize, end: usize, in_test: bool, out: &mut Vec<FnItem>) {
    let end = end.min(toks.len());
    let mut i = start;
    while i < end {
        if toks[i].is_ident("fn") && i + 1 < end && toks[i + 1].kind == TokKind::Ident {
            let before = out.len();
            parse_items(toks, i, end, None, in_test, out);
            // parse_items consumed from `i` to `end`; we are done.
            let _ = before;
            return;
        }
        i += 1;
    }
}

/// True when the body token at `i` starts a nested `fn` item (whose range
/// should be skipped by the enclosing function's call scan).
fn nested_fn_at(toks: &[Tok], i: usize, end: usize) -> Option<usize> {
    if !(toks[i].is_ident("fn") && i + 1 < end && toks[i + 1].kind == TokKind::Ident) {
        return None;
    }
    let mut j = i + 2;
    while j < end {
        if toks[j].is_punct("{") {
            return Some(match_brace(toks, j).min(end));
        }
        if toks[j].is_punct(";") {
            return Some(j);
        }
        j += 1;
    }
    Some(end)
}

/// Extracts calls and macro invocations from `toks[start..end]` into `item`.
fn scan_body(toks: &[Tok], start: usize, end: usize, item: &mut FnItem) {
    let end = end.min(toks.len());
    let mut i = start;
    while i < end {
        // Skip nested fn items — their calls belong to them.
        if let Some(past) = nested_fn_at(toks, i, end) {
            i = past + 1;
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || is_expr_keyword(&t.text) {
            i += 1;
            continue;
        }
        let next = toks.get(i + 1);
        // `name!(..)` / `name![..]` / `name!{..}` — macro invocation.
        if next.is_some_and(|n| n.is_punct("!")) {
            let delim_open = toks.get(i + 2).map(|d| d.text.as_str());
            if matches!(delim_open, Some("(") | Some("[") | Some("{")) {
                item.macros.push(MacroUse { name: t.text.clone(), line: t.line });
            }
            i += 2;
            continue;
        }
        // `name(..)` possibly with a turbofish: `name::<T>(..)`.
        let mut call_paren = next.is_some_and(|n| n.is_punct("("));
        if !call_paren && next.is_some_and(|n| n.is_punct("::")) {
            let past = skip_generics(toks, i + 2);
            if past > i + 2 && toks.get(past).is_some_and(|n| n.is_punct("(")) {
                call_paren = true;
            }
        }
        if call_paren {
            let kind = call_shape(toks, i);
            item.calls.push(Call { name: t.text.clone(), kind, line: t.line });
        }
        i += 1;
    }
}

/// Classifies the call whose callee ident is at `i`.
fn call_shape(toks: &[Tok], i: usize) -> CallKind {
    if i == 0 {
        return CallKind::Free;
    }
    let prev = &toks[i - 1];
    if prev.is_punct(".") {
        let recv_self = i >= 2 && toks[i - 2].is_ident("self");
        return CallKind::Method { recv_self };
    }
    if prev.is_punct("::") {
        // Walk back over a generic argument list to the qualifying ident:
        // `Vec::<f64>::new(..)` qualifies `new` with `Vec`.
        let mut j = i - 1; // at `::`
        if j >= 1 && (toks[j - 1].is_punct(">") || toks[j - 1].is_punct(">>")) {
            let mut depth = 0i32;
            let mut k = j - 1;
            loop {
                match toks[k].text.as_str() {
                    ">" if toks[k].kind == TokKind::Punct => depth += 1,
                    ">>" if toks[k].kind == TokKind::Punct => depth += 2,
                    "<" if toks[k].kind == TokKind::Punct => depth -= 1,
                    "<<" if toks[k].kind == TokKind::Punct => depth -= 2,
                    _ => {}
                }
                if depth <= 0 || k == 0 {
                    break;
                }
                k -= 1;
            }
            // `k` is at the `<`; the qualifier ident precedes it (possibly
            // through another `::`).
            j = k;
            if j >= 1 && toks[j - 1].is_punct("::") {
                j -= 1;
            }
        }
        if j >= 1 && toks[j - 1].kind == TokKind::Ident {
            return CallKind::Qualified { qualifier: toks[j - 1].text.clone() };
        }
    }
    CallKind::Free
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_file(&lex(src).toks)
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let items = parse(
            "fn free() { helper(); }\n\
             impl Foo { pub fn method(&self) { self.go(); other.run(); } }\n\
             impl Trait for Bar { fn t(&self) {} }",
        );
        let labels: Vec<String> = items.iter().map(FnItem::label).collect();
        assert_eq!(labels, ["free", "Foo::method", "Bar::t"]);
        assert_eq!(items[0].calls.len(), 1);
        assert_eq!(items[0].calls[0].name, "helper");
        assert_eq!(items[0].calls[0].kind, CallKind::Free);
        let m = &items[1].calls;
        assert_eq!(m[0].kind, CallKind::Method { recv_self: true });
        assert_eq!(m[1].kind, CallKind::Method { recv_self: false });
    }

    #[test]
    fn qualified_calls_and_turbofish() {
        let items = parse("fn f() { Vec::new(); Vec::<f64>::with_capacity(4); s.parse::<u32>(); }");
        let calls = &items[0].calls;
        assert_eq!(calls[0].kind, CallKind::Qualified { qualifier: "Vec".into() });
        assert_eq!(calls[1].name, "with_capacity");
        assert_eq!(calls[1].kind, CallKind::Qualified { qualifier: "Vec".into() });
        assert_eq!(calls[2].name, "parse");
        assert_eq!(calls[2].kind, CallKind::Method { recv_self: false });
    }

    #[test]
    fn generic_impls_resolve_to_the_type() {
        let items = parse("impl<T: Clone> Wrapper<T> { fn get(&self) -> &T { self.inner() } }");
        assert_eq!(items[0].label(), "Wrapper::get");
        let items = parse("impl<'a> Iterator for Iter<'a> { fn next(&mut self) {} }");
        assert_eq!(items[0].label(), "Iter::next");
    }

    #[test]
    fn macros_are_recorded_not_called() {
        let items = parse("fn f() { vec![1]; format!(\"x{}\", 1); assert!(ok); }");
        let macros: Vec<&str> = items[0].macros.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(macros, ["vec", "format", "assert"]);
        assert!(items[0].calls.is_empty());
    }

    #[test]
    fn test_items_are_marked() {
        let items =
            parse("#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\nfn lib() {}");
        let flags: Vec<(String, bool)> =
            items.iter().map(|f| (f.name.clone(), f.is_test)).collect();
        assert_eq!(flags, [("helper".into(), true), ("t".into(), true), ("lib".into(), false)]);
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let items = parse("fn outer() { fn inner() { deep(); } inner(); }");
        let outer = items.iter().find(|f| f.name == "outer").expect("outer parsed");
        let inner = items.iter().find(|f| f.name == "inner").expect("inner parsed");
        assert_eq!(outer.calls.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(), ["inner"]);
        assert_eq!(inner.calls.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(), ["deep"]);
    }

    #[test]
    fn bodiless_trait_methods_have_no_body() {
        let items = parse("trait T { fn decl(&self); fn dflt(&self) { self.decl(); } }");
        assert_eq!(items[0].body, None);
        assert!(items[1].body.is_some());
        assert_eq!(items[1].calls[0].name, "decl");
    }

    #[test]
    fn keywords_are_not_calls() {
        let items = parse("fn f(x: bool) { if (x) { return (1); } match (x) { _ => {} } }");
        assert!(items[0].calls.is_empty());
    }

    #[test]
    fn shift_operators_inside_generics() {
        let items = parse("fn f() { let x: Foo<Bar<u8>> = make(); g(1 << 2); }");
        let names: Vec<&str> = items[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["make", "g"]);
    }
}

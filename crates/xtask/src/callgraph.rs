//! Workspace call graph over the [`crate::symbols`] index.
//!
//! Edges are resolved conservatively — a dropped edge can only cause a
//! missed finding, never a false one, so ambiguity always resolves to "no
//! edge". Resolution order for a call site in function `f` (file `F`):
//!
//! 1. `self.m(..)` → methods `m` on `f`'s impl type.
//! 2. `Type::m(..)` / `Self::m(..)` → methods `m` on that type, when the
//!    workspace knows the type (so `Vec::new` never resolves).
//! 3. `recv.m(..)` / `m(..)`: names on the std-method stoplist drop; the
//!    remaining candidates named `m` keep only the matching shape (method
//!    call → methods, free call → free fns); among those the ones in `F`
//!    win, else a workspace-unique `m` wins, else the edge drops as
//!    ambiguous.

use crate::parser::{CallKind, FnItem};
use crate::symbols::SymbolIndex;

/// Method names that belong to std/vendored types in this codebase; a
/// method call with one of these names is assumed *not* to target workspace
/// code (collisions would create false paths through e.g. every `push`).
/// Workspace methods sharing a name here are reachable via `self.`/`Type::`
/// calls, which bypass the stoplist.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "borrow",
    "borrow_mut",
    "ceil",
    "chain",
    "chars",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "exp",
    "expect",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fold",
    "for_each",
    "fract",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hypot",
    "insert",
    "into_iter",
    "is_empty",
    "is_finite",
    "is_nan",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "ln",
    "log2",
    "map",
    "map_err",
    "map_while",
    "max",
    "max_by",
    "min",
    "min_by",
    "mul_add",
    "next",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "peekable",
    "pop",
    "pop_front",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_back",
    "push_front",
    "push_str",
    "range",
    "remove",
    "replace",
    "resize",
    "rev",
    "rotate_left",
    "round",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "split_at",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "step_by",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "swap_remove",
    "take",
    "take_while",
    "then",
    "to_owned",
    "to_string",
    "to_vec",
    "total_cmp",
    "trim",
    "truncate",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "zip",
];

/// The resolved call graph: `edges[slot]` lists callee slots.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Adjacency list indexed by symbol slot.
    pub edges: Vec<Vec<usize>>,
}

/// Builds the graph. `parsed` is the per-file parse output the index was
/// built from (parallel to the workspace file list).
pub fn build(idx: &SymbolIndex, parsed: &[Vec<FnItem>]) -> CallGraph {
    let mut g = CallGraph { edges: vec![Vec::new(); idx.fns.len()] };
    for (slot, id) in idx.fns.iter().enumerate() {
        let f = &parsed[id.file][id.item];
        for call in &f.calls {
            let targets: Vec<usize> = match &call.kind {
                CallKind::Method { recv_self: true } => match &f.self_ty {
                    Some(ty) => idx.by_type_method(ty, &call.name).to_vec(),
                    None => Vec::new(),
                },
                CallKind::Qualified { qualifier } => {
                    let ty = if qualifier == "Self" {
                        f.self_ty.as_deref().unwrap_or("")
                    } else {
                        qualifier.as_str()
                    };
                    if idx.knows_type(ty) {
                        idx.by_type_method(ty, &call.name).to_vec()
                    } else {
                        Vec::new()
                    }
                }
                CallKind::Method { recv_self: false } | CallKind::Free => {
                    if STD_METHODS.contains(&call.name.as_str()) {
                        Vec::new()
                    } else {
                        // A method call can only land on a method, a free
                        // call only on a free fn — `buf.expect(..)` must
                        // never edge to a free `fn expect` elsewhere.
                        let want_method = matches!(call.kind, CallKind::Method { .. });
                        let candidates: Vec<usize> = idx
                            .by_name(&call.name)
                            .iter()
                            .copied()
                            .filter(|&s| {
                                let t = idx.fns[s];
                                parsed[t.file][t.item].self_ty.is_some() == want_method
                            })
                            .collect();
                        let same_file: Vec<usize> = candidates
                            .iter()
                            .copied()
                            .filter(|&s| idx.fns[s].file == id.file)
                            .collect();
                        if !same_file.is_empty() {
                            same_file
                        } else if candidates.len() == 1 {
                            candidates
                        } else {
                            Vec::new() // ambiguous or external — drop
                        }
                    }
                }
            };
            for t in targets {
                if !g.edges[slot].contains(&t) {
                    g.edges[slot].push(t);
                }
            }
        }
    }
    g
}

/// BFS from `roots`; returns `pred[slot] = Some(parent)` for every reached
/// slot (roots map to themselves). Unreached slots stay `None`.
pub fn reach(g: &CallGraph, roots: &[usize]) -> Vec<Option<usize>> {
    let mut pred: Vec<Option<usize>> = vec![None; g.edges.len()];
    let mut queue = std::collections::VecDeque::new();
    for &r in roots {
        if r < pred.len() && pred[r].is_none() {
            pred[r] = Some(r);
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &g.edges[u] {
            if pred[v].is_none() {
                pred[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    pred
}

/// The call path root → … → `slot` as `Type::fn` labels, from a `reach`
/// predecessor map.
pub fn path_labels(
    idx: &SymbolIndex,
    parsed: &[Vec<FnItem>],
    pred: &[Option<usize>],
    slot: usize,
) -> Vec<String> {
    let mut rev = Vec::new();
    let mut cur = slot;
    loop {
        let id = idx.fns[cur];
        rev.push(parsed[id.file][id.item].label());
        match pred[cur] {
            Some(p) if p != cur && rev.len() <= pred.len() => cur = p,
            _ => break,
        }
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn setup(srcs: &[&str]) -> (SymbolIndex, Vec<Vec<FnItem>>, CallGraph) {
        let parsed: Vec<_> = srcs.iter().map(|s| parse_file(&lex(s).toks)).collect();
        let idx = SymbolIndex::build(&parsed);
        let g = build(&idx, &parsed);
        (idx, parsed, g)
    }

    fn slot(idx: &SymbolIndex, label: &str) -> usize {
        idx.resolve_root(label)[0]
    }

    #[test]
    fn self_and_qualified_calls_resolve() {
        let (idx, _, g) =
            setup(&["impl K { pub fn a(&self) { self.b(); K::c(); } fn b(&self) {} fn c() {} }"]);
        let a = slot(&idx, "K::a");
        assert_eq!(g.edges[a], vec![slot(&idx, "K::b"), slot(&idx, "K::c")]);
    }

    #[test]
    fn std_methods_and_unknown_types_drop() {
        let (idx, _, g) = setup(&[
            "impl K { pub fn a(&self, v: &mut Vec<f64>) { v.push(1.0); Vec::new(); HashMap::new(); } }",
        ]);
        assert!(g.edges[slot(&idx, "K::a")].is_empty());
    }

    #[test]
    fn cross_file_unique_names_resolve_same_file_wins() {
        let (idx, _, g) = setup(&[
            "fn caller() { unique_helper(); shared(); } fn shared() {}",
            "fn unique_helper() {} fn shared() {}",
        ]);
        let c = slot(&idx, "caller");
        // unique_helper: workspace-unique, cross-file edge. shared: two
        // candidates, the same-file one wins.
        let labels: Vec<usize> = g.edges[c].clone();
        assert!(labels.contains(&slot(&idx, "unique_helper")));
        let shared_same_file = idx
            .by_name("shared")
            .iter()
            .copied()
            .find(|&s| idx.fns[s].file == 0)
            .expect("same-file shared");
        assert!(labels.contains(&shared_same_file));
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn call_shape_must_match_target_shape() {
        // `fn expect` exists as a free helper, but `.expect(..)` is a
        // method call — the edge must drop, not land on the helper.
        let (idx, _, g) = setup(&["fn caller(v: Option<u32>) { v.fancy_take(); fancy_make(); }\n\
             fn fancy_take() {}\nimpl K { fn fancy_make(&self) {} }"]);
        assert!(g.edges[slot(&idx, "caller")].is_empty());
    }

    #[test]
    fn reachability_and_paths() {
        let (idx, parsed, g) =
            setup(&["impl K { pub fn root(&self) { self.mid(); } fn mid(&self) { leaf(); } }\n\
             fn leaf() {}\nfn island() {}"]);
        let pred = reach(&g, &idx.resolve_root("K::root"));
        let leaf = slot(&idx, "leaf");
        assert!(pred[leaf].is_some());
        assert!(pred[slot(&idx, "island")].is_none());
        assert_eq!(path_labels(&idx, &parsed, &pred, leaf), ["K::root", "K::mid", "leaf"]);
    }
}

//! Seeded L10 violation: `Kern::step` → `relay` → `describe`, and
//! `describe` builds a fresh `String` with `format!`.

pub struct Kern {
    acc: f64,
}

impl Kern {
    pub fn step(&mut self, v: f64) -> f64 {
        self.acc += v;
        relay(self.acc);
        self.acc
    }
}

fn relay(x: f64) -> usize {
    describe(x).len()
}

fn describe(x: f64) -> String {
    format!("acc={x}")
}

//! Seeded L9 violation: a `fetch_add` with `Ordering::Relaxed` and no
//! per-site waiver arguing merge correctness.

use std::sync::atomic::{AtomicU64, Ordering};

static SEQ: AtomicU64 = AtomicU64::new(0);

pub fn next_id() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed)
}

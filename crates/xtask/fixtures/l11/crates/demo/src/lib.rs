//! Seeded L11 violation: `Kern::step` → `relay` → `pick`, and `pick`
//! unwraps an Option.

pub struct Kern {
    acc: f64,
}

impl Kern {
    pub fn step(&mut self, vs: &[f64]) -> f64 {
        self.acc += relay(vs);
        self.acc
    }
}

fn relay(vs: &[f64]) -> f64 {
    pick(vs)
}

fn pick(vs: &[f64]) -> f64 {
    vs.first().copied().unwrap()
}

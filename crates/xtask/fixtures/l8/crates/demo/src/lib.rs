//! Seeded L8 violation: `demo.recrods` is a typo'd mint, so it is
//! unregistered and the registry's `demo.records` entry goes unused.

pub fn counter(name: &str) -> usize {
    name.len()
}

pub fn tally() -> usize {
    counter("demo.recrods")
}

//! Clean demo crate: registered metric, justified atomics, and a kernel
//! whose call graph neither allocates nor panics.

use std::sync::atomic::{AtomicU64, Ordering};

static STEPS: AtomicU64 = AtomicU64::new(0);

/// Stand-in for the obs counter handle.
pub fn counter(name: &str) -> usize {
    name.len()
}

pub struct Kern {
    acc: f64,
}

impl Kern {
    pub fn new() -> Kern {
        Kern { acc: 0.0 }
    }

    /// The registered kernel root: everything reachable from here must be
    /// allocation- and panic-free.
    pub fn step(&mut self, v: f64) -> f64 {
        self.acc += v;
        self.note();
        scaled(self.acc)
    }

    fn note(&self) {
        counter("demo.records");
        // Relaxed: a freestanding statistic, no data published through it.
        STEPS.store(1, Ordering::Relaxed);
    }
}

impl Default for Kern {
    fn default() -> Kern {
        Kern::new()
    }
}

fn scaled(x: f64) -> f64 {
    x * 0.5
}

//! Per-shard health state machine: `Ok / Degraded / Stalled` driven by
//! rates computed over metric-snapshot-style deltas, with hysteresis.
//!
//! The inputs are the three signals that precede an ingest melt-down in
//! practice: queue-depth growth (the shard is falling behind its feed),
//! late-drop rate (the horizon is being blown, data is being lost) and
//! dead-letter rate (the feed itself has gone bad). Each observation
//! compares against the previous one — the same delta discipline as
//! `obs::snapshot` — so the machine reasons about *rates*, not absolutes,
//! and an old backlog that is draining reads as healthy.
//!
//! Rates are normalised **per record ingested**, not per wall-clock
//! second: a replayed feed runs the same pipeline orders of magnitude
//! faster than a live one, and per-second thresholds that are sane for a
//! one-record-per-vehicle-per-minute deployment read every replay as an
//! emergency. Fractions (late drops per arrival, net queue growth per
//! accepted record) mean the same thing at both speeds.
//!
//! Two properties are load-bearing and proptested in `tests/props.rs`:
//!
//! * **No skips.** Transitions move one level at a time; `Ok → Stalled`
//!   always passes through `Degraded`, so an operator watching the
//!   transition log sees escalation, never teleportation.
//! * **Hysteresis.** A state only changes after `worsen_ticks` (resp.
//!   `improve_ticks`) *consecutive* observations pointing the same way, so
//!   a single noisy sample cannot flap the gauge.

/// Shard health, ordered by severity. The discriminants are the values
/// exported on the `ingest.shardNN.health` gauge (0 = healthy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Keeping up: every rate below its degraded threshold.
    Ok = 0,
    /// Falling behind: some rate at or above its degraded threshold.
    Degraded = 1,
    /// Effectively not making progress: some rate at or above its stalled
    /// threshold.
    Stalled = 2,
}

impl HealthState {
    /// Value exported on the health gauge.
    pub fn gauge_value(self) -> u64 {
        self as u64
    }

    /// Lowercase name for events and journals.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Stalled => "stalled",
        }
    }

    fn one_step_toward(self, target: HealthState) -> HealthState {
        use HealthState::*;
        match (self, target) {
            (Ok, Degraded) | (Ok, Stalled) => Degraded,
            (Degraded, Stalled) => Stalled,
            (Stalled, Degraded) | (Stalled, Ok) => Degraded,
            (Degraded, Ok) => Ok,
            (same, _) => same,
        }
    }
}

/// Per-record rate thresholds at which a shard *reaches* a level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthThresholds {
    /// Net queue-depth growth per accepted record; 1.0 means everything
    /// accepted in the interval is still sitting in the buffer. Negative
    /// growth (draining) can never trip this.
    pub queue_growth_per_record: f64,
    /// Fraction of the interval's arrivals dropped as beyond-horizon.
    pub late_drop_fraction: f64,
    /// Fraction of the interval's arrivals dead-lettered.
    pub dead_letter_fraction: f64,
    /// Fraction of the interval's records flagged by the data-quality
    /// monitors (see [`crate::quality`]).
    pub quality_fraction: f64,
}

impl HealthThresholds {
    fn tripped(&self, r: &HealthRates) -> bool {
        r.queue_growth_per_record >= self.queue_growth_per_record
            || r.late_drop_fraction >= self.late_drop_fraction
            || r.dead_letter_fraction >= self.dead_letter_fraction
            || r.quality_fraction >= self.quality_fraction
    }
}

/// Thresholds plus hysteresis for one shard's machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Rates at which the shard reads as degraded.
    pub degraded: HealthThresholds,
    /// Rates at which the shard reads as stalled.
    pub stalled: HealthThresholds,
    /// Consecutive worse-pointing observations before stepping up one
    /// severity level (≥ 1).
    pub worsen_ticks: u32,
    /// Consecutive better-pointing observations before stepping down one
    /// level (≥ 1). Larger than `worsen_ticks` by default: recovery should
    /// be announced more cautiously than trouble.
    pub improve_ticks: u32,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            degraded: HealthThresholds {
                queue_growth_per_record: 0.5,
                late_drop_fraction: 0.05,
                dead_letter_fraction: 0.05,
                quality_fraction: 0.05,
            },
            stalled: HealthThresholds {
                queue_growth_per_record: 0.95,
                late_drop_fraction: 0.5,
                dead_letter_fraction: 0.5,
                quality_fraction: 0.5,
            },
            worsen_ticks: 2,
            improve_ticks: 3,
        }
    }
}

/// Rates derived from two consecutive samples, normalised per record.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HealthRates {
    /// Net queue growth per accepted record (negative while draining).
    pub queue_growth_per_record: f64,
    /// Late drops as a fraction of the interval's arrivals.
    pub late_drop_fraction: f64,
    /// Dead letters as a fraction of the interval's arrivals.
    pub dead_letter_fraction: f64,
    /// Quality-flagged records as a fraction of the interval's records.
    pub quality_fraction: f64,
}

/// One observation of a shard: a monotonic timestamp, the instantaneous
/// queue depth, and the *cumulative* progress/drop counters (the machine
/// deltas them itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSample {
    /// Monotonic nanoseconds (`obs::elapsed_ns` scale).
    pub t_ns: u64,
    /// Total items currently buffered across the shard's lanes.
    pub queue_depth: u64,
    /// Cumulative records accepted into the shard's lanes — the
    /// normaliser that makes the rates replay-speed-independent.
    pub records: u64,
    /// Cumulative late-dropped count.
    pub late_dropped: u64,
    /// Cumulative dead-letter count.
    pub dead_letter: u64,
    /// Cumulative count of records flagged by the data-quality monitors.
    pub quality_flagged: u64,
}

/// The hysteresis core: folds a stream of *target* states (what the rates
/// say right now) into actual single-step transitions.
#[derive(Debug, Clone)]
pub struct HealthFsm {
    policy: HealthPolicy,
    state: HealthState,
    worse_streak: u32,
    better_streak: u32,
}

impl HealthFsm {
    /// A machine starting at [`HealthState::Ok`].
    pub fn new(policy: HealthPolicy) -> HealthFsm {
        HealthFsm { policy, state: HealthState::Ok, worse_streak: 0, better_streak: 0 }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Feeds one target state; returns `Some((from, to))` when the actual
    /// state steps (always exactly one level).
    pub fn observe(&mut self, target: HealthState) -> Option<(HealthState, HealthState)> {
        use std::cmp::Ordering::*;
        match target.cmp(&self.state) {
            Equal => {
                self.worse_streak = 0;
                self.better_streak = 0;
                None
            }
            Greater => {
                self.worse_streak += 1;
                self.better_streak = 0;
                if self.worse_streak >= self.policy.worsen_ticks.max(1) {
                    let from = self.state;
                    self.state = self.state.one_step_toward(target);
                    self.worse_streak = 0;
                    Some((from, self.state))
                } else {
                    None
                }
            }
            Less => {
                self.better_streak += 1;
                self.worse_streak = 0;
                if self.better_streak >= self.policy.improve_ticks.max(1) {
                    let from = self.state;
                    self.state = self.state.one_step_toward(target);
                    self.better_streak = 0;
                    Some((from, self.state))
                } else {
                    None
                }
            }
        }
    }
}

/// One shard's health tracker: keeps the previous sample, derives rates,
/// classifies them against the policy and runs them through the FSM.
#[derive(Debug, Clone)]
pub struct ShardHealth {
    policy: HealthPolicy,
    fsm: HealthFsm,
    prev: Option<HealthSample>,
    last_rates: HealthRates,
}

impl ShardHealth {
    /// A tracker starting at `Ok` with no history.
    pub fn new(policy: HealthPolicy) -> ShardHealth {
        ShardHealth {
            policy,
            fsm: HealthFsm::new(policy),
            prev: None,
            last_rates: HealthRates::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.fsm.state()
    }

    /// Rates derived at the last observation (zeros before the second one).
    pub fn last_rates(&self) -> HealthRates {
        self.last_rates
    }

    /// What the given rates ask for under this tracker's policy, before
    /// hysteresis.
    pub fn classify(&self, rates: &HealthRates) -> HealthState {
        if self.policy.stalled.tripped(rates) {
            HealthState::Stalled
        } else if self.policy.degraded.tripped(rates) {
            HealthState::Degraded
        } else {
            HealthState::Ok
        }
    }

    /// Feeds one sample. The first sample only arms the tracker; empty or
    /// backwards intervals are ignored (monotonic clocks don't go back,
    /// but a caller replaying journals might). Returns the transition, if
    /// this observation caused one.
    pub fn observe(&mut self, sample: HealthSample) -> Option<(HealthState, HealthState)> {
        let Some(prev) = self.prev else {
            self.prev = Some(sample);
            return None;
        };
        let dt_ns = sample.t_ns.saturating_sub(prev.t_ns);
        if dt_ns == 0 {
            return None;
        }
        let d_records = sample.records.saturating_sub(prev.records) as f64;
        let d_late = sample.late_dropped.saturating_sub(prev.late_dropped) as f64;
        let d_dead = sample.dead_letter.saturating_sub(prev.dead_letter) as f64;
        let d_quality = sample.quality_flagged.saturating_sub(prev.quality_flagged) as f64;
        let rates = HealthRates {
            queue_growth_per_record: (sample.queue_depth as f64 - prev.queue_depth as f64)
                / d_records.max(1.0),
            late_drop_fraction: d_late / (d_late + d_records).max(1.0),
            dead_letter_fraction: d_dead / (d_dead + d_records).max(1.0),
            // Flagged records are a subset of records, so the record count
            // is the denominator directly.
            quality_fraction: d_quality / d_records.max(1.0),
        };
        self.prev = Some(sample);
        self.last_rates = rates;
        let target = self.classify(&rates);
        self.fsm.observe(target)
    }
}

/// A state change on one shard, as returned by
/// `ShardedIngest::observe_health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Shard index.
    pub shard: usize,
    /// State before.
    pub from: HealthState,
    /// State after (always exactly one level away from `from`).
    pub to: HealthState,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy() -> HealthPolicy {
        HealthPolicy { worsen_ticks: 1, improve_ticks: 1, ..HealthPolicy::default() }
    }

    #[test]
    fn fsm_never_skips_a_level() {
        let mut fsm = HealthFsm::new(quick_policy());
        let tr = fsm.observe(HealthState::Stalled).expect("one tick suffices here");
        assert_eq!(tr, (HealthState::Ok, HealthState::Degraded), "Ok must pass through Degraded");
        let tr = fsm.observe(HealthState::Stalled).expect("second step");
        assert_eq!(tr, (HealthState::Degraded, HealthState::Stalled));
        // And back down: Stalled → Degraded → Ok, one level per tick.
        assert_eq!(
            fsm.observe(HealthState::Ok),
            Some((HealthState::Stalled, HealthState::Degraded))
        );
        assert_eq!(fsm.observe(HealthState::Ok), Some((HealthState::Degraded, HealthState::Ok)));
    }

    #[test]
    fn hysteresis_requires_consecutive_ticks() {
        let policy = HealthPolicy { worsen_ticks: 2, improve_ticks: 3, ..HealthPolicy::default() };
        let mut fsm = HealthFsm::new(policy);
        assert_eq!(fsm.observe(HealthState::Degraded), None, "first worse tick arms only");
        assert_eq!(fsm.observe(HealthState::Ok), None, "an Ok tick resets the streak");
        assert_eq!(fsm.observe(HealthState::Degraded), None);
        assert_eq!(
            fsm.observe(HealthState::Degraded),
            Some((HealthState::Ok, HealthState::Degraded)),
            "two consecutive worse ticks step up"
        );
        // Recovery needs three consecutive better ticks.
        assert_eq!(fsm.observe(HealthState::Ok), None);
        assert_eq!(fsm.observe(HealthState::Ok), None);
        assert_eq!(fsm.observe(HealthState::Degraded), None, "streak broken");
        assert_eq!(fsm.observe(HealthState::Ok), None);
        assert_eq!(fsm.observe(HealthState::Ok), None);
        assert_eq!(fsm.observe(HealthState::Ok), Some((HealthState::Degraded, HealthState::Ok)));
    }

    #[test]
    fn rates_are_deltas_not_absolutes() {
        let mut h = ShardHealth::new(quick_policy());
        // Arm with a big existing backlog and big cumulative counters.
        assert_eq!(
            h.observe(HealthSample {
                t_ns: 0,
                queue_depth: 10_000,
                records: 50_000,
                late_dropped: 9999,
                dead_letter: 9999,
                quality_flagged: 9999
            }),
            None
        );
        // One interval later everything is flat → all rates ≤ 0 → Ok stays.
        let tr = h.observe(HealthSample {
            t_ns: 1_000_000_000,
            queue_depth: 9_000,
            records: 51_000,
            late_dropped: 9999,
            dead_letter: 9999,
            quality_flagged: 9999,
        });
        assert_eq!(tr, None);
        assert_eq!(h.state(), HealthState::Ok);
        assert!(h.last_rates().queue_growth_per_record < 0.0, "draining reads as negative growth");
    }

    #[test]
    fn rates_are_replay_speed_independent() {
        // The same interval (1000 records, 20 late drops, flat queue)
        // classifies identically whether it took a second or a millisecond.
        for dt_ns in [1_000_000_000u64, 1_000_000] {
            let mut h = ShardHealth::new(quick_policy());
            let arm = HealthSample {
                t_ns: 1,
                queue_depth: 30,
                records: 0,
                late_dropped: 0,
                dead_letter: 0,
                quality_flagged: 0,
            };
            assert_eq!(h.observe(arm), None);
            let tr = h.observe(HealthSample {
                t_ns: 1 + dt_ns,
                queue_depth: 30,
                records: 1000,
                late_dropped: 20,
                dead_letter: 0,
                quality_flagged: 0,
            });
            assert_eq!(tr, None, "2% late drops is below the 5% degraded threshold");
            assert_eq!(h.state(), HealthState::Ok);
            assert!((h.last_rates().late_drop_fraction - 20.0 / 1020.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sustained_late_drops_degrade_then_recover() {
        let mut h = ShardHealth::new(HealthPolicy {
            worsen_ticks: 2,
            improve_ticks: 2,
            ..HealthPolicy::default()
        });
        let mut t = 0u64;
        let mut late = 0u64;
        let mut records = 0u64;
        let mut step = |h: &mut ShardHealth, d_late: u64| {
            t += 1_000_000_000;
            late += d_late;
            records += 100;
            h.observe(HealthSample {
                t_ns: t,
                queue_depth: 0,
                records,
                late_dropped: late,
                dead_letter: 0,
                quality_flagged: 0,
            })
        };
        assert_eq!(step(&mut h, 0), None, "arming sample");
        assert_eq!(step(&mut h, 50), None, "first bad tick arms the streak");
        assert_eq!(
            step(&mut h, 50),
            Some((HealthState::Ok, HealthState::Degraded)),
            "50 late of 150 arrivals = 33% ≥ degraded threshold of 5%"
        );
        assert_eq!(step(&mut h, 0), None);
        assert_eq!(step(&mut h, 0), Some((HealthState::Degraded, HealthState::Ok)));
    }

    #[test]
    fn zero_interval_is_ignored() {
        let mut h = ShardHealth::new(quick_policy());
        let s = HealthSample {
            t_ns: 5,
            queue_depth: 0,
            records: 0,
            late_dropped: 0,
            dead_letter: 0,
            quality_flagged: 0,
        };
        assert_eq!(h.observe(s), None);
        assert_eq!(h.observe(s), None, "dt=0 cannot produce rates");
        assert_eq!(h.state(), HealthState::Ok);
    }

    #[test]
    fn quality_flags_trip_the_machine_like_other_rates() {
        let mut h = ShardHealth::new(quick_policy());
        let sample = |t_ns, records, flagged| HealthSample {
            t_ns,
            queue_depth: 0,
            records,
            late_dropped: 0,
            dead_letter: 0,
            quality_flagged: flagged,
        };
        assert_eq!(h.observe(sample(1, 0, 0)), None, "arming sample");
        // 10% of the interval's records flagged ≥ the 5% degraded bar.
        let tr = h.observe(sample(1_000_000_001, 1000, 100));
        assert_eq!(tr, Some((HealthState::Ok, HealthState::Degraded)));
        assert!((h.last_rates().quality_fraction - 0.1).abs() < 1e-12);
        // Clean interval → recovery (quick_policy: one tick each way).
        assert_eq!(
            h.observe(sample(2_000_000_001, 2000, 100)),
            Some((HealthState::Degraded, HealthState::Ok))
        );
    }

    #[test]
    fn gauge_values_are_severity_ordered() {
        assert_eq!(HealthState::Ok.gauge_value(), 0);
        assert_eq!(HealthState::Degraded.gauge_value(), 1);
        assert_eq!(HealthState::Stalled.gauge_value(), 2);
        assert!(HealthState::Ok < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Stalled);
        assert_eq!(HealthState::Stalled.as_str(), "stalled");
    }
}

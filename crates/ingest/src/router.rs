//! Vehicle → shard routing by hash.
//!
//! Fleet ids are often assigned sequentially (fleetsim's certainly are),
//! so routing by `id % n_shards` would stripe models/usage groups across
//! shards in lockstep. The router instead finalises the id through a
//! SplitMix64-style avalanche so consecutive ids land on effectively
//! independent shards, then reduces modulo the shard count. Stateless and
//! pure: the same id always routes to the same shard, which is what keeps
//! each vehicle's pipeline confined to exactly one shard.

/// Routes vehicle ids to one of `n_shards` shards.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    n_shards: u64,
}

impl ShardRouter {
    /// Creates a router over `n_shards` (≥ 1) shards.
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        ShardRouter { n_shards: n_shards as u64 }
    }

    /// Number of shards routed over.
    pub fn n_shards(&self) -> usize {
        self.n_shards as usize
    }

    /// The shard owning `vehicle`. Always `< n_shards`.
    pub fn route(&self, vehicle: u32) -> usize {
        // SplitMix64 finaliser: full 64-bit avalanche in three rounds.
        let mut z = u64::from(vehicle).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.n_shards) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_stay_in_range_and_are_stable() {
        for n in [1usize, 2, 3, 8, 13] {
            let r = ShardRouter::new(n);
            for v in 0..500u32 {
                let s = r.route(v);
                assert!(s < n, "shard {s} out of range for {n} shards");
                assert_eq!(s, r.route(v), "routing must be deterministic");
            }
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let r = ShardRouter::new(1);
        assert!((0..100).all(|v| r.route(v) == 0));
    }

    #[test]
    fn sequential_ids_spread_over_shards() {
        // 40 sequential ids (a fleetsim fleet) over 4 shards: every shard
        // must see some traffic — the avalanche breaks the stripe pattern.
        let r = ShardRouter::new(4);
        let mut seen = [0usize; 4];
        for v in 0..40u32 {
            seen[r.route(v)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "empty shard in {seen:?}");
    }
}

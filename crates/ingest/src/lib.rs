//! `navarchos-ingest` — the sharded fleet ingest engine: the serving seam
//! between a single interleaved telematics feed and the per-vehicle
//! streaming pipelines of the paper's framework.
//!
//! The paper's deployment consumes one FMS record per vehicle per minute;
//! a fleet of hundreds multiplexes those into one tagged stream that
//! carries everything real feeds carry — out-of-order arrivals,
//! duplicates, gaps, malformed records. This crate fans that stream out
//! to N shards by vehicle hash ([`ShardRouter`]), re-sequences each
//! vehicle's arrivals through a bounded [`ReorderBuffer`] with a
//! configurable lateness horizon, and feeds the result into per-vehicle
//! `StreamingPipeline`s ([`ShardedIngest`]). Malformed input is counted
//! into a dead-letter sink, never panicked on; arrivals beyond the
//! horizon are counted and skipped, never allowed to corrupt window
//! state.
//!
//! # The headline contract
//!
//! For any clean stream permuted within the lateness horizon and salted
//! with exact duplicates, the engine's alarms are **byte-identical** to
//! sorted single-vehicle replay (`navarchos_core::replay_interleaved`).
//! `tests/golden.rs` pins this end-to-end on a seeded fleetsim fleet and
//! `tests/props.rs` proves the reorder-buffer half property-based; the
//! release-rule argument itself is in the [`reorder`] module docs.

pub mod checkpoint;
pub mod engine;
pub mod health;
pub mod quality;
pub mod reorder;
pub mod router;

pub use checkpoint::{
    read_checkpoint, write_checkpoint, RestoredEngine, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use engine::{
    AlarmProvenance, DeadLetter, DeadLetterReason, FleetAlarm, IngestConfig, IngestStats,
    MigrationStats, ShardedIngest,
};
pub use health::{
    HealthFsm, HealthPolicy, HealthRates, HealthSample, HealthState, HealthThresholds,
    HealthTransition, ShardHealth,
};
pub use quality::{QualityConfig, QualityMonitor, QualitySnapshot};
pub use reorder::{PushOutcome, ReorderBuffer, ReorderStats, SeqKey, Sequenced};
pub use router::ShardRouter;

// The stream item types live in `navarchos-fleetsim` (the feed substrate);
// re-exported here so engine users need only this crate. `SnapError` is
// re-exported so checkpoint callers (the CLI) can match restore failures
// without depending on `navarchos-stat` directly.
pub use navarchos_fleetsim::{StreamBody, StreamItem};
pub use navarchos_stat::SnapError;

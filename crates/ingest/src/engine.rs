//! The sharded fleet ingest engine.
//!
//! One engine owns N [`Shard`]s; a [`ShardRouter`] fans the interleaved
//! fleet stream out by vehicle hash, so each vehicle's state — a bounded
//! [`ReorderBuffer`] plus a [`StreamingPipeline`] — lives on exactly one
//! shard and batches can be processed with one worker per shard
//! ([`ShardedIngest::ingest_batch`] via `par_map_mut`). Malformed records
//! (wrong arity, non-finite values) and same-timestamp conflicts go to a
//! counted dead-letter sink; arrivals beyond the lateness horizon are
//! counted and skipped. Nothing panics on dirty input and no path grows
//! without bound.
//!
//! # Observability
//!
//! Each shard keeps plain `u64` stats that are always on (they cost an
//! increment) and mirrors them into the global `ingest.*` counters when
//! metrics are enabled, resolving the `Arc` handles once at construction
//! — the same discipline as `PipelineStats`. Queue depth is sampled into
//! a per-shard `ingest.shardNN.queue_depth` histogram through a
//! `BatchedRecorder`, flushed on [`ShardedIngest::finish`].
//!
//! The live ops plane adds three always-available facets: a per-shard
//! `ingest.shardNN.records` counter (so scrape deltas yield per-shard
//! throughput), a per-shard `ingest.shardNN.health` gauge driven by the
//! [`crate::health`] state machine via [`ShardedIngest::observe_health`],
//! and an [`AlarmProvenance`] entry per emitted alarm (arrival/release/
//! emission stamps + release watermark) drained through
//! [`ShardedIngest::drain_provenance`] into the CLI's NDJSON journal.

use navarchos_core::pipeline::{Alarm, PipelineConfig, StreamingPipeline};
use navarchos_core::{par_map_mut, DetectorKind, TransformKind};
use navarchos_fleetsim::{StreamBody, StreamItem};
use navarchos_obs as obs;
use navarchos_stat::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};

use crate::health::{HealthPolicy, HealthSample, HealthState, HealthTransition, ShardHealth};
use crate::quality::{QualityConfig, QualityMonitor, QualitySnapshot};
use crate::reorder::{PushOutcome, ReorderBuffer, SeqKey, Sequenced};
use crate::router::ShardRouter;

/// A stream item plus the wall-clock (monotonic) moment the engine first
/// saw it. The arrival stamp rides through the reorder buffer so alarm
/// provenance can attribute latency to buffering vs. pipeline work; it is
/// deliberately ignored by [`Sequenced::identical`] — a duplicate is a
/// duplicate no matter when its copies arrived.
#[derive(Debug, Clone)]
struct Arrival {
    item: StreamItem,
    arrival_ns: u64,
}

impl Sequenced for Arrival {
    fn key(&self) -> SeqKey {
        self.item.key()
    }

    fn identical(&self, other: &Self) -> bool {
        self.item.identical(&other.item)
    }
}

/// Serialises one in-flight arrival for checkpoints and migration. The
/// arrival stamp travels too: [`AlarmProvenance`] subtracts stamps with
/// `saturating_sub`, so a stamp from a previous process (a different
/// monotonic epoch) degrades a latency reading, never an alarm.
fn write_arrival(w: &mut SnapWriter, a: &Arrival) {
    w.put_u32(a.item.vehicle);
    w.put_i64(a.item.timestamp);
    match &a.item.body {
        StreamBody::Record(row) => {
            w.put_u8(0);
            w.put_f64_slice(row);
        }
        StreamBody::Maintenance { is_repair } => {
            w.put_u8(1);
            w.put_bool(*is_repair);
        }
    }
    w.put_u64(a.arrival_ns);
}

fn read_arrival(r: &mut SnapReader<'_>) -> Result<Arrival, SnapError> {
    let vehicle = r.get_u32()?;
    let timestamp = r.get_i64()?;
    let body = match r.get_u8()? {
        0 => StreamBody::Record(r.get_f64_vec()?),
        1 => StreamBody::Maintenance { is_repair: r.get_bool()? },
        _ => return Err(SnapError::Corrupt("unknown stream-body tag")),
    };
    let arrival_ns = r.get_u64()?;
    Ok(Arrival { item: StreamItem { vehicle, timestamp, body }, arrival_ns })
}

impl Sequenced for StreamItem {
    fn key(&self) -> SeqKey {
        SeqKey { timestamp: self.timestamp, rank: self.body.rank() }
    }

    fn identical(&self, other: &Self) -> bool {
        if self.vehicle != other.vehicle || self.timestamp != other.timestamp {
            return false;
        }
        match (&self.body, &other.body) {
            (StreamBody::Record(a), StreamBody::Record(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (
                StreamBody::Maintenance { is_repair: a },
                StreamBody::Maintenance { is_repair: b },
            ) => a == b,
            _ => false,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Number of shards (≥ 1).
    pub n_shards: usize,
    /// Lateness horizon in seconds: an arrival is re-sequenced as long as
    /// it is delayed by strictly less than this. Must be at least the
    /// feed's worst-case delay for the equivalence guarantee to hold.
    pub horizon_s: i64,
    /// Per-vehicle reorder-buffer capacity (items).
    pub reorder_capacity: usize,
    /// Dead letters retained for inspection (the count is unbounded, the
    /// stored samples are capped).
    pub max_dead_letters_kept: usize,
    /// Per-vehicle pipeline instantiation.
    pub pipeline: PipelineConfig,
    /// Per-shard health thresholds and hysteresis (see [`crate::health`]).
    pub health: HealthPolicy,
    /// Per-vehicle data-quality monitor thresholds (see
    /// [`crate::quality`]).
    pub quality: QualityConfig,
}

impl IngestConfig {
    /// The paper's main pipeline (correlation transformation + closest
    /// pair) behind an ingest front with a 30-minute lateness horizon.
    pub fn paper_default(n_shards: usize) -> Self {
        IngestConfig {
            n_shards,
            horizon_s: 1800,
            reorder_capacity: 256,
            max_dead_letters_kept: 32,
            pipeline: PipelineConfig::paper_default(
                TransformKind::Correlation,
                DetectorKind::ClosestPair,
            ),
            health: HealthPolicy::default(),
            quality: QualityConfig::default(),
        }
    }
}

/// Where an alarm's latency went: one journal entry per alarm emitted by
/// the engine, linking event time (the alarm's timestamp and the release
/// watermark, both epoch seconds) with processing time (monotonic
/// nanoseconds at arrival, release and emission). Collected always-on —
/// alarms are rare, so the cost is a few stores per alarm — and drained
/// via [`ShardedIngest::drain_provenance`].
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmProvenance {
    /// Vehicle whose pipeline raised the alarm.
    pub vehicle: u32,
    /// Shard the vehicle is routed to.
    pub shard: usize,
    /// The alarm's event timestamp (epoch seconds).
    pub alarm_timestamp: i64,
    /// Violating channel name, as on the alarm.
    pub channel_name: String,
    /// The release watermark (epoch seconds) when the triggering record
    /// left the reorder buffer.
    pub watermark_ts: i64,
    /// Monotonic ns when the triggering record arrived at the engine.
    pub arrival_ns: u64,
    /// Monotonic ns when the reorder buffer released it to the pipeline.
    pub release_ns: u64,
    /// Monotonic ns when the pipeline returned the alarm.
    pub emit_ns: u64,
}

impl AlarmProvenance {
    /// Time the triggering record sat in the reorder buffer.
    pub fn buffer_wait_ns(&self) -> u64 {
        self.release_ns.saturating_sub(self.arrival_ns)
    }

    /// Time the pipeline spent on the record that raised the alarm.
    pub fn pipeline_ns(&self) -> u64 {
        self.emit_ns.saturating_sub(self.release_ns)
    }

    /// Arrival-to-emission latency.
    pub fn total_ns(&self) -> u64 {
        self.emit_ns.saturating_sub(self.arrival_ns)
    }
}

/// An alarm raised by some vehicle's pipeline, tagged with the vehicle.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAlarm {
    /// The vehicle whose pipeline raised the alarm.
    pub vehicle: u32,
    /// The alarm itself.
    pub alarm: Alarm,
}

/// Why an item was dead-lettered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadLetterReason {
    /// Record row had the wrong number of values.
    WrongArity {
        /// Values present on the wire.
        got: usize,
        /// Values the pipeline expects.
        expected: usize,
    },
    /// Record row contained a NaN or infinity.
    NonFinite,
    /// Same canonical key as a buffered item, different payload.
    Conflict,
}

/// A rejected item, kept (up to a cap) for post-mortem inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// Source vehicle.
    pub vehicle: u32,
    /// Event timestamp of the rejected item.
    pub timestamp: i64,
    /// Classification.
    pub reason: DeadLetterReason,
}

/// Aggregated engine counters (always on; cheap `u64` increments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Telemetry records offered to the engine.
    pub records: u64,
    /// Maintenance markers offered to the engine.
    pub maintenance: u64,
    /// Items released through reorder buffers into pipelines.
    pub released: u64,
    /// Accepted arrivals that were out of order.
    pub reordered: u64,
    /// Exact duplicates dropped.
    pub duplicates: u64,
    /// Arrivals beyond the lateness horizon, counted and skipped.
    pub late_dropped: u64,
    /// Malformed or conflicting items routed to the dead-letter sink.
    pub dead_letter: u64,
    /// Early releases forced by reorder-buffer capacity.
    pub forced_releases: u64,
    /// Alarms raised across all vehicles.
    pub alarms: u64,
    /// Highest reorder-buffer depth observed on any vehicle.
    pub peak_queue_depth: u64,
    /// Records flagged by the per-vehicle data-quality monitors.
    pub quality_flagged: u64,
}

impl IngestStats {
    fn merge(&mut self, other: &IngestStats) {
        self.records += other.records;
        self.maintenance += other.maintenance;
        self.released += other.released;
        self.reordered += other.reordered;
        self.duplicates += other.duplicates;
        self.late_dropped += other.late_dropped;
        self.dead_letter += other.dead_letter;
        self.forced_releases += other.forced_releases;
        self.alarms += other.alarms;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.quality_flagged += other.quality_flagged;
    }

    fn write_state(&self, w: &mut SnapWriter) {
        for v in [
            self.records,
            self.maintenance,
            self.released,
            self.reordered,
            self.duplicates,
            self.late_dropped,
            self.dead_letter,
            self.forced_releases,
            self.alarms,
            self.peak_queue_depth,
            self.quality_flagged,
        ] {
            w.put_u64(v);
        }
    }

    fn read_state(r: &mut SnapReader<'_>) -> Result<IngestStats, SnapError> {
        Ok(IngestStats {
            records: r.get_u64()?,
            maintenance: r.get_u64()?,
            released: r.get_u64()?,
            reordered: r.get_u64()?,
            duplicates: r.get_u64()?,
            late_dropped: r.get_u64()?,
            dead_letter: r.get_u64()?,
            forced_releases: r.get_u64()?,
            alarms: r.get_u64()?,
            peak_queue_depth: r.get_u64()?,
            quality_flagged: r.get_u64()?,
        })
    }
}

fn write_dead_letter(w: &mut SnapWriter, d: &DeadLetter) {
    w.put_u32(d.vehicle);
    w.put_i64(d.timestamp);
    match d.reason {
        DeadLetterReason::WrongArity { got, expected } => {
            w.put_u8(0);
            w.put_usize(got);
            w.put_usize(expected);
        }
        DeadLetterReason::NonFinite => w.put_u8(1),
        DeadLetterReason::Conflict => w.put_u8(2),
    }
}

fn read_dead_letter(r: &mut SnapReader<'_>) -> Result<DeadLetter, SnapError> {
    let vehicle = r.get_u32()?;
    let timestamp = r.get_i64()?;
    let reason = match r.get_u8()? {
        0 => DeadLetterReason::WrongArity { got: r.get_usize()?, expected: r.get_usize()? },
        1 => DeadLetterReason::NonFinite,
        2 => DeadLetterReason::Conflict,
        _ => return Err(SnapError::Corrupt("unknown dead-letter reason tag")),
    };
    Ok(DeadLetter { vehicle, timestamp, reason })
}

/// Global-counter handles, resolved once per shard.
#[derive(Debug)]
struct ShardObs {
    records: std::sync::Arc<obs::Counter>,
    reordered: std::sync::Arc<obs::Counter>,
    duplicates: std::sync::Arc<obs::Counter>,
    late_dropped: std::sync::Arc<obs::Counter>,
    dead_letter: std::sync::Arc<obs::Counter>,
    alarms: std::sync::Arc<obs::Counter>,
    /// Fleet-wide count of quality-flagged records (the burn-rate
    /// evaluator's `quality` policy numerator).
    quality_flagged: std::sync::Arc<obs::Counter>,
    /// Per-shard record count — the `top` client derives records/s per
    /// shard from scrape deltas of this family.
    shard_records: std::sync::Arc<obs::Counter>,
    /// Live health state (0 = Ok, 1 = Degraded, 2 = Stalled).
    health: std::sync::Arc<obs::Gauge>,
    queue_depth: obs::BatchedRecorder,
}

impl ShardObs {
    fn new(shard: usize) -> Self {
        ShardObs {
            records: obs::counter("ingest.records"),
            reordered: obs::counter("ingest.reordered"),
            duplicates: obs::counter("ingest.duplicates"),
            late_dropped: obs::counter("ingest.late_dropped"),
            dead_letter: obs::counter("ingest.dead_letter"),
            alarms: obs::counter("ingest.alarms"),
            quality_flagged: obs::counter("ingest.quality.flagged"),
            shard_records: obs::counter(&format!("ingest.shard{shard:02}.records")),
            health: obs::gauge(&format!("ingest.shard{shard:02}.health")),
            queue_depth: obs::BatchedRecorder::new(obs::histogram(&format!(
                "ingest.shard{shard:02}.queue_depth"
            ))),
        }
    }
}

/// One vehicle's state on its owning shard.
#[derive(Debug)]
struct Lane {
    vehicle: u32,
    buffer: ReorderBuffer<Arrival>,
    pipeline: StreamingPipeline,
}

/// One vehicle's data-quality monitor plus its cached gauge handles.
/// Kept separate from [`Lane`]: monitors observe raw arrivals *before*
/// validation, so a vehicle that only ever sends garbage (and therefore
/// never grows a lane) is still watched.
#[derive(Debug)]
struct QualityLane {
    vehicle: u32,
    monitor: QualityMonitor,
    nan_bp: std::sync::Arc<obs::Gauge>,
    gap_bp: std::sync::Arc<obs::Gauge>,
    drift_mz: std::sync::Arc<obs::Gauge>,
}

impl QualityLane {
    fn new(vehicle: u32, n_channels: usize, cfg: QualityConfig) -> Self {
        QualityLane {
            vehicle,
            monitor: QualityMonitor::new(n_channels, cfg),
            nan_bp: obs::gauge(&format!("ingest.quality.v{vehicle:02}.nan_bp")),
            gap_bp: obs::gauge(&format!("ingest.quality.v{vehicle:02}.gap_bp")),
            drift_mz: obs::gauge(&format!("ingest.quality.v{vehicle:02}.drift_mz")),
        }
    }
}

/// Fraction (0..1) as basis points on a gauge, saturated at 10 000.
fn fraction_to_bp(f: f64) -> u64 {
    if !f.is_finite() || f <= 0.0 {
        0
    } else {
        ((f * 10_000.0).round() as u64).min(10_000)
    }
}

/// A z-score (or similar unbounded positive reading) in milli-units.
fn to_milli(v: f64) -> u64 {
    if !v.is_finite() || v <= 0.0 {
        0
    } else {
        (v * 1000.0).min(u64::MAX as f64 / 2.0).round() as u64
    }
}

/// One shard: the lanes of the vehicles that hash to it.
#[derive(Debug)]
struct Shard {
    index: usize,
    names: Vec<String>,
    cfg: IngestConfig,
    /// Lanes sorted by vehicle id for binary-search lookup.
    lanes: Vec<Lane>,
    /// Quality monitors, sorted by vehicle id like `lanes`.
    quality: Vec<QualityLane>,
    stats: IngestStats,
    dead: Vec<DeadLetter>,
    obs: ShardObs,
    /// Provenance of every alarm this shard emitted, pending drain.
    provenance: Vec<AlarmProvenance>,
    /// Scratch for reorder-buffer releases, reused across items.
    released: Vec<Arrival>,
}

impl Shard {
    fn new(index: usize, names: Vec<String>, cfg: IngestConfig) -> Self {
        Shard {
            index,
            names,
            cfg,
            lanes: Vec::new(),
            quality: Vec::new(),
            stats: IngestStats::default(),
            dead: Vec::new(),
            obs: ShardObs::new(index),
            provenance: Vec::new(),
            released: Vec::new(),
        }
    }

    fn lane_index(&mut self, vehicle: u32) -> usize {
        match self.lanes.binary_search_by_key(&vehicle, |l| l.vehicle) {
            Ok(i) => i,
            Err(i) => {
                self.lanes.insert(
                    i,
                    Lane {
                        vehicle,
                        buffer: ReorderBuffer::new(self.cfg.horizon_s, self.cfg.reorder_capacity),
                        pipeline: StreamingPipeline::new_scoped(
                            &self.names,
                            self.cfg.pipeline.clone(),
                            Some(&format!("v{vehicle:02}")),
                        ),
                    },
                );
                i
            }
        }
    }

    /// Routes one raw record through the vehicle's quality monitor,
    /// creating it on first sight. Returns true when the record flags.
    fn quality_observe(&mut self, vehicle: u32, timestamp: i64, row: &[f64]) -> bool {
        let i = match self.quality.binary_search_by_key(&vehicle, |q| q.vehicle) {
            Ok(i) => i,
            Err(i) => {
                self.quality
                    .insert(i, QualityLane::new(vehicle, self.names.len(), self.cfg.quality));
                i
            }
        };
        self.quality[i].monitor.observe(timestamp, row)
    }

    fn dead_letter(&mut self, vehicle: u32, timestamp: i64, reason: DeadLetterReason) {
        self.stats.dead_letter += 1;
        if obs::metrics_enabled() {
            self.obs.dead_letter.incr();
        }
        if self.dead.len() < self.cfg.max_dead_letters_kept {
            self.dead.push(DeadLetter { vehicle, timestamp, reason });
        }
    }

    fn process(&mut self, item: StreamItem, alarms: &mut Vec<FleetAlarm>) {
        let metrics_on = obs::metrics_enabled();
        let arrival_ns = obs::elapsed_ns();
        match &item.body {
            StreamBody::Record(row) => {
                self.stats.records += 1;
                if metrics_on {
                    self.obs.records.incr();
                    self.obs.shard_records.incr();
                }
                // Quality monitors see the raw row *before* validation:
                // the NaN bursts that dead-letter just below are exactly
                // what they exist to measure.
                if self.quality_observe(item.vehicle, item.timestamp, row) {
                    self.stats.quality_flagged += 1;
                    if metrics_on {
                        self.obs.quality_flagged.incr();
                    }
                }
                let expected = self.names.len();
                if row.len() != expected {
                    self.dead_letter(
                        item.vehicle,
                        item.timestamp,
                        DeadLetterReason::WrongArity { got: row.len(), expected },
                    );
                    return;
                }
                if row.iter().any(|v| !v.is_finite()) {
                    self.dead_letter(item.vehicle, item.timestamp, DeadLetterReason::NonFinite);
                    return;
                }
            }
            StreamBody::Maintenance { .. } => {
                self.stats.maintenance += 1;
            }
        }
        let (vehicle, timestamp) = (item.vehicle, item.timestamp);
        let lane_i = self.lane_index(vehicle);
        self.released.clear();
        let outcome = {
            let lane = &mut self.lanes[lane_i];
            lane.buffer.push(Arrival { item, arrival_ns }, &mut self.released)
        };
        match outcome {
            PushOutcome::Accepted { reordered } => {
                if reordered {
                    self.stats.reordered += 1;
                    if metrics_on {
                        self.obs.reordered.incr();
                    }
                }
            }
            PushOutcome::Duplicate => {
                self.stats.duplicates += 1;
                if metrics_on {
                    self.obs.duplicates.incr();
                }
            }
            PushOutcome::LateDropped => {
                self.stats.late_dropped += 1;
                if metrics_on {
                    self.obs.late_dropped.incr();
                }
            }
            PushOutcome::Conflict => {
                self.dead_letter(vehicle, timestamp, DeadLetterReason::Conflict);
            }
        }
        let depth = self.lanes[lane_i].buffer.len() as u64;
        self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(depth);
        if metrics_on {
            self.obs.queue_depth.record(depth);
        }
        // Feed whatever the watermark released, in canonical order.
        let released = std::mem::take(&mut self.released);
        for rel in &released {
            self.feed(lane_i, rel, alarms);
        }
        self.released = released;
    }

    fn feed(&mut self, lane_i: usize, arrival: &Arrival, alarms: &mut Vec<FleetAlarm>) {
        let lane = &mut self.lanes[lane_i];
        self.stats.released += 1;
        let item = &arrival.item;
        match &item.body {
            StreamBody::Maintenance { is_repair } => lane.pipeline.process_event(*is_repair),
            StreamBody::Record(row) => {
                let release_ns = obs::elapsed_ns();
                let raised = lane.pipeline.process_record(item.timestamp, row);
                if !raised.is_empty() {
                    self.stats.alarms += raised.len() as u64;
                    if obs::metrics_enabled() {
                        self.obs.alarms.add(raised.len() as u64);
                    }
                    let emit_ns = obs::elapsed_ns();
                    let watermark_ts = lane.buffer.watermark().unwrap_or(item.timestamp);
                    for alarm in &raised {
                        self.provenance.push(AlarmProvenance {
                            vehicle: lane.vehicle,
                            shard: self.index,
                            alarm_timestamp: alarm.timestamp,
                            channel_name: alarm.channel_name.clone(),
                            watermark_ts,
                            arrival_ns: arrival.arrival_ns,
                            release_ns,
                            emit_ns,
                        });
                    }
                    alarms.extend(
                        raised.into_iter().map(|alarm| FleetAlarm { vehicle: lane.vehicle, alarm }),
                    );
                }
            }
        }
    }

    /// Serialises one vehicle's lane (reorder buffer + pipeline) as a
    /// self-contained frame — the unit both full checkpoints and shard
    /// migration move around.
    fn write_lane(lane: &Lane, w: &mut SnapWriter) {
        w.put_u32(lane.vehicle);
        w.put_frame(|w| lane.buffer.write_state_with(w, write_arrival));
        w.put_frame(|w| lane.pipeline.write_state(w));
    }

    /// Reconstructs a lane from [`Shard::write_lane`] bytes and inserts it
    /// in vehicle order. The buffer and pipeline are built fresh from this
    /// shard's config, then overwritten with the serialised state.
    fn read_lane(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let vehicle = r.get_u32()?;
        let mut buffer = ReorderBuffer::new(self.cfg.horizon_s, self.cfg.reorder_capacity);
        let mut frame = r.get_frame()?;
        buffer.read_state_with(&mut frame, read_arrival)?;
        frame.finish()?;
        let mut pipeline = StreamingPipeline::new_scoped(
            &self.names,
            self.cfg.pipeline.clone(),
            Some(&format!("v{vehicle:02}")),
        );
        let mut frame = r.get_frame()?;
        pipeline.read_state(&mut frame)?;
        frame.finish()?;
        match self.lanes.binary_search_by_key(&vehicle, |l| l.vehicle) {
            Ok(_) => Err(SnapError::Corrupt("duplicate lane for one vehicle")),
            Err(i) => {
                self.lanes.insert(i, Lane { vehicle, buffer, pipeline });
                Ok(())
            }
        }
    }

    fn write_quality(q: &QualityLane, w: &mut SnapWriter) {
        w.put_u32(q.vehicle);
        w.put_frame(|w| q.monitor.write_state(w));
    }

    fn read_quality(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let vehicle = r.get_u32()?;
        let mut lane = QualityLane::new(vehicle, self.names.len(), self.cfg.quality);
        let mut frame = r.get_frame()?;
        lane.monitor.read_state(&mut frame)?;
        frame.finish()?;
        match self.quality.binary_search_by_key(&vehicle, |q| q.vehicle) {
            Ok(_) => Err(SnapError::Corrupt("duplicate quality lane for one vehicle")),
            Err(i) => {
                self.quality.insert(i, lane);
                Ok(())
            }
        }
    }

    /// Full shard state: counters, retained dead letters, every lane and
    /// every quality monitor. Config (names, horizon, pipeline…) is not
    /// written — the restoring engine is constructed from its own config
    /// and the checkpoint fingerprint guards against mismatch.
    fn write_state(&self, w: &mut SnapWriter) {
        self.stats.write_state(w);
        w.put_usize(self.dead.len());
        for d in &self.dead {
            write_dead_letter(w, d);
        }
        w.put_usize(self.lanes.len());
        for lane in &self.lanes {
            w.put_frame(|w| Shard::write_lane(lane, w));
        }
        w.put_usize(self.quality.len());
        for q in &self.quality {
            w.put_frame(|w| Shard::write_quality(q, w));
        }
    }

    /// Counterpart of [`Shard::write_state`], on a freshly built shard.
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.stats = IngestStats::read_state(r)?;
        let n_dead = r.get_len(13)?;
        if n_dead > self.cfg.max_dead_letters_kept {
            return Err(SnapError::Corrupt("more dead letters than the retention cap"));
        }
        self.dead.clear();
        for _ in 0..n_dead {
            let d = read_dead_letter(r)?;
            self.dead.push(d);
        }
        let n_lanes = r.get_len(1)?;
        for _ in 0..n_lanes {
            let mut frame = r.get_frame()?;
            self.read_lane(&mut frame)?;
            frame.finish()?;
        }
        let n_quality = r.get_len(1)?;
        for _ in 0..n_quality {
            let mut frame = r.get_frame()?;
            self.read_quality(&mut frame)?;
            frame.finish()?;
        }
        Ok(())
    }

    fn finish(&mut self, alarms: &mut Vec<FleetAlarm>) {
        for lane_i in 0..self.lanes.len() {
            self.released.clear();
            self.lanes[lane_i].buffer.flush_into(&mut self.released);
            let released = std::mem::take(&mut self.released);
            for rel in &released {
                self.feed(lane_i, rel, alarms);
            }
            self.released = released;
        }
        for lane in &mut self.lanes {
            let b = lane.buffer.stats();
            self.stats.forced_releases += b.forced_releases;
            lane.pipeline.flush_obs();
        }
        self.obs.queue_depth.flush();
    }
}

/// Counters for vehicle moves between shards (see
/// [`ShardedIngest::migrate_vehicle`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Vehicles moved to another shard.
    pub moves: u64,
    /// In-flight reorder-buffer items carried across during moves.
    pub inflight_items: u64,
}

/// The engine: router + shards. See the module docs.
#[derive(Debug)]
pub struct ShardedIngest {
    router: ShardRouter,
    /// Routing overrides from [`ShardedIngest::migrate_vehicle`], sorted
    /// by vehicle id. The hash router stays pure; the effective route is
    /// the override when present. Serialised into checkpoints so a
    /// restored engine keeps delivering migrated vehicles to their new
    /// home.
    overrides: Vec<(u32, usize)>,
    shards: Vec<Shard>,
    health: Vec<ShardHealth>,
    /// Fleet-level worst per-vehicle drift, in milli-z.
    worst_drift: std::sync::Arc<obs::Gauge>,
    migration: MigrationStats,
    migration_moves: std::sync::Arc<obs::Counter>,
    migration_inflight: std::sync::Arc<obs::Counter>,
    finished: bool,
}

impl ShardedIngest {
    /// Creates an engine whose per-vehicle pipelines read records with the
    /// given signal `names` (arity validation uses their count).
    pub fn new<S: AsRef<str>>(names: &[S], cfg: IngestConfig) -> Self {
        let names: Vec<String> = names.iter().map(|s| s.as_ref().to_string()).collect();
        let router = ShardRouter::new(cfg.n_shards);
        let health = (0..cfg.n_shards).map(|_| ShardHealth::new(cfg.health)).collect();
        let shards = (0..cfg.n_shards).map(|i| Shard::new(i, names.clone(), cfg.clone())).collect();
        ShardedIngest {
            router,
            overrides: Vec::new(),
            shards,
            health,
            worst_drift: obs::gauge("ingest.quality.worst_drift_mz"),
            migration: MigrationStats::default(),
            migration_moves: obs::counter("ingest.migration.moves"),
            migration_inflight: obs::counter("ingest.migration.inflight_items"),
            finished: false,
        }
    }

    /// The signal names per-vehicle pipelines read records with (arity
    /// validation uses their count).
    pub fn signal_names(&self) -> &[String] {
        &self.shards[0].names
    }

    /// The engine's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.shards[0].cfg
    }

    /// The shard `vehicle`'s state lives on: a migration override when one
    /// exists, else the pure hash route.
    pub fn shard_of(&self, vehicle: u32) -> usize {
        match self.overrides.binary_search_by_key(&vehicle, |(v, _)| *v) {
            Ok(i) => self.overrides[i].1,
            Err(_) => self.router.route(vehicle),
        }
    }

    /// Ingests one item inline (no fan-out). Returns any alarms raised by
    /// records this arrival released.
    pub fn ingest(&mut self, item: StreamItem) -> Vec<FleetAlarm> {
        let mut alarms = Vec::new();
        let shard = self.shard_of(item.vehicle);
        self.shards[shard].process(item, &mut alarms);
        alarms
    }

    /// Ingests a batch: items are bucketed per shard in arrival order,
    /// then the shards run in parallel (one worker per shard). Returned
    /// alarms are grouped by shard, per-vehicle order preserved.
    pub fn ingest_batch(&mut self, items: Vec<StreamItem>) -> Vec<FleetAlarm> {
        let _span = obs::span("ingest_batch");
        let n = self.shards.len();
        let mut buckets: Vec<Vec<StreamItem>> = (0..n).map(|_| Vec::new()).collect();
        for item in items {
            buckets[self.shard_of(item.vehicle)].push(item);
        }
        let mut tasks: Vec<(&mut Shard, Vec<StreamItem>)> =
            self.shards.iter_mut().zip(buckets).collect();
        let per_shard = par_map_mut(&mut tasks, |_, (shard, bucket)| {
            let mut alarms = Vec::new();
            for item in std::mem::take(bucket) {
                shard.process(item, &mut alarms);
            }
            alarms
        });
        per_shard.into_iter().flatten().collect()
    }

    /// Ends the stream: flushes every reorder buffer through its pipeline
    /// and flushes batched observability. Idempotent.
    pub fn finish(&mut self) -> Vec<FleetAlarm> {
        let mut alarms = Vec::new();
        if !self.finished {
            self.finished = true;
            for shard in &mut self.shards {
                shard.finish(&mut alarms);
            }
        }
        alarms
    }

    /// Aggregated counters across all shards.
    pub fn stats(&self) -> IngestStats {
        let mut total = IngestStats::default();
        for shard in &self.shards {
            total.merge(&shard.stats);
        }
        total
    }

    /// Per-shard counters, indexed by shard.
    pub fn shard_stats(&self) -> Vec<IngestStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Retained dead letters across all shards (counts are in
    /// [`IngestStats::dead_letter`]; retention is capped per shard).
    pub fn dead_letters(&self) -> Vec<&DeadLetter> {
        self.shards.iter().flat_map(|s| &s.dead).collect()
    }

    /// Number of vehicles with live state, per shard.
    pub fn vehicles_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lanes.len()).collect()
    }

    /// Ticks every shard's health state machine against its current queue
    /// depth and cumulative drop/quality counters (the tracker deltas
    /// internally — see [`crate::health`]). Call between batches at the
    /// snapshot cadence. Updates the `ingest.shardNN.health` and
    /// `ingest.quality.*` gauges when metrics are on, emits one structured
    /// `ingest.health` event per transition when events are on, and
    /// returns the transitions.
    pub fn observe_health(&mut self) -> Vec<HealthTransition> {
        let t_ns = obs::elapsed_ns();
        let metrics_on = obs::metrics_enabled();
        let mut transitions = Vec::new();
        let mut worst_drift = 0u64;
        for (shard, tracker) in self.shards.iter_mut().zip(self.health.iter_mut()) {
            let queue_depth: u64 = shard.lanes.iter().map(|l| l.buffer.len() as u64).sum();
            let sample = HealthSample {
                t_ns,
                queue_depth,
                records: shard.stats.records,
                late_dropped: shard.stats.late_dropped,
                dead_letter: shard.stats.dead_letter,
                quality_flagged: shard.stats.quality_flagged,
            };
            if let Some((from, to)) = tracker.observe(sample) {
                transitions.push(HealthTransition { shard: shard.index, from, to });
            }
            if metrics_on {
                shard.obs.health.set(tracker.state().gauge_value());
            }
            for q in &shard.quality {
                let snap = q.monitor.snapshot();
                let drift = to_milli(snap.max_drift_z);
                worst_drift = worst_drift.max(drift);
                if metrics_on {
                    q.nan_bp.set(fraction_to_bp(snap.nan_fraction));
                    q.gap_bp.set(fraction_to_bp(snap.gap_fraction));
                    q.drift_mz.set(drift);
                }
            }
        }
        if metrics_on {
            self.worst_drift.set(worst_drift);
        }
        if obs::events_enabled() {
            for tr in &transitions {
                obs::emit(
                    &obs::Event::new("ingest.health")
                        .field("shard", tr.shard as u64)
                        .field("from", tr.from.as_str())
                        .field("to", tr.to.as_str()),
                );
            }
        }
        transitions
    }

    /// Current health state per shard (what the gauges show).
    pub fn health_states(&self) -> Vec<HealthState> {
        self.health.iter().map(|h| h.state()).collect()
    }

    /// Current per-vehicle quality readings, sorted by vehicle id (what
    /// the `ingest.quality.v*` gauges show after the next health tick).
    pub fn quality_snapshots(&self) -> Vec<(u32, QualitySnapshot)> {
        let mut out: Vec<(u32, QualitySnapshot)> = self
            .shards
            .iter()
            .flat_map(|s| s.quality.iter().map(|q| (q.vehicle, q.monitor.snapshot())))
            .collect();
        out.sort_by_key(|(v, _)| *v);
        out
    }

    /// Takes the provenance of every alarm emitted since the last drain
    /// (arrival order within each shard, shards concatenated in index
    /// order).
    pub fn drain_provenance(&mut self) -> Vec<AlarmProvenance> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            out.append(&mut shard.provenance);
        }
        out
    }

    /// Moves one vehicle's entire state — reorder buffer with in-flight
    /// items, pipeline, quality monitor — to `to_shard`, and records a
    /// routing override so future arrivals follow it. The state travels
    /// through the same serialised-lane frames checkpoints use (drain →
    /// snapshot → reroute → restore), so migration equivalence is the
    /// checkpoint equivalence guarantee applied between shards: alarms
    /// after the move are byte-identical to never having moved.
    ///
    /// In-flight items are *not* flushed: flushing would feed the pipeline
    /// records the watermark has not released and change its output.
    /// Returns whether any live state moved (an unseen vehicle gets only
    /// the override).
    ///
    /// # Panics
    /// Panics if `to_shard` is out of range.
    pub fn migrate_vehicle(&mut self, vehicle: u32, to_shard: usize) -> bool {
        assert!(to_shard < self.shards.len(), "target shard out of range");
        let from = self.shard_of(vehicle);
        match self.overrides.binary_search_by_key(&vehicle, |(v, _)| *v) {
            Ok(i) => self.overrides[i].1 = to_shard,
            Err(i) => self.overrides.insert(i, (vehicle, to_shard)),
        }
        if from == to_shard {
            return false;
        }
        let mut moved = false;
        let mut inflight = 0u64;
        if let Ok(i) = self.shards[from].lanes.binary_search_by_key(&vehicle, |l| l.vehicle) {
            let lane = self.shards[from].lanes.remove(i);
            inflight = lane.buffer.len() as u64;
            let mut w = SnapWriter::new();
            Shard::write_lane(&lane, &mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            self.shards[to_shard]
                .read_lane(&mut r)
                .and_then(|()| r.finish())
                .expect("a just-written lane frame must restore");
            moved = true;
        }
        if let Ok(i) = self.shards[from].quality.binary_search_by_key(&vehicle, |q| q.vehicle) {
            let q = self.shards[from].quality.remove(i);
            let mut w = SnapWriter::new();
            Shard::write_quality(&q, &mut w);
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            self.shards[to_shard]
                .read_quality(&mut r)
                .and_then(|()| r.finish())
                .expect("a just-written quality frame must restore");
            moved = true;
        }
        if moved {
            self.migration.moves += 1;
            self.migration.inflight_items += inflight;
            if obs::metrics_enabled() {
                self.migration_moves.incr();
                self.migration_inflight.add(inflight);
            }
        }
        moved
    }

    /// Cumulative migration counters.
    pub fn migration_stats(&self) -> MigrationStats {
        self.migration
    }

    /// Serialises the engine's full mutable state (routing overrides plus
    /// every shard). Health-FSM trackers are deliberately excluded: they
    /// are wall-clock-rate ops telemetry, re-armed on the next
    /// [`ShardedIngest::observe_health`] tick after a restore.
    pub(crate) fn write_engine_state(&self, w: &mut SnapWriter) {
        w.put_bool(self.finished);
        w.put_usize(self.overrides.len());
        for (v, s) in &self.overrides {
            w.put_u32(*v);
            w.put_usize(*s);
        }
        w.put_u64(self.migration.moves);
        w.put_u64(self.migration.inflight_items);
        w.put_usize(self.shards.len());
        for shard in &self.shards {
            w.put_frame(|w| shard.write_state(w));
        }
    }

    /// Counterpart of [`ShardedIngest::write_engine_state`], on a freshly
    /// constructed engine with the same config.
    pub(crate) fn read_engine_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let finished = r.get_bool()?;
        let n_overrides = r.get_len(12)?;
        let mut overrides = Vec::with_capacity(n_overrides);
        for _ in 0..n_overrides {
            let v = r.get_u32()?;
            let s = r.get_usize()?;
            if s >= self.shards.len() {
                return Err(SnapError::Corrupt("routing override to a nonexistent shard"));
            }
            overrides.push((v, s));
        }
        if !overrides.iter().zip(overrides.iter().skip(1)).all(|(a, b)| a.0 < b.0) {
            return Err(SnapError::Corrupt("routing overrides out of order"));
        }
        let moves = r.get_u64()?;
        let inflight_items = r.get_u64()?;
        let n_shards = r.get_usize()?;
        if n_shards != self.shards.len() {
            return Err(SnapError::Corrupt("shard-count mismatch"));
        }
        for shard in &mut self.shards {
            let mut frame = r.get_frame()?;
            shard.read_state(&mut frame)?;
            frame.finish()?;
        }
        self.finished = finished;
        self.overrides = overrides;
        self.migration = MigrationStats { moves, inflight_items };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_items(n: usize) -> Vec<StreamItem> {
        // Two correlated signals; enough records to pass reference +
        // holdout so the pipeline reaches Detecting.
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.37).sin() * 3.0 + 10.0;
                StreamItem {
                    vehicle: 1,
                    timestamp: i as i64 * 60,
                    body: StreamBody::Record(vec![x, 2.0 * x + 1.0]),
                }
            })
            .collect()
    }

    fn tiny_config(n_shards: usize) -> IngestConfig {
        let mut cfg = IngestConfig::paper_default(n_shards);
        cfg.pipeline.window = 8;
        cfg.pipeline.stride = 2;
        cfg.pipeline.profile_length = 6;
        cfg.pipeline.holdout = 4;
        cfg.pipeline.filter = navarchos_tsframe::FilterSpec::default();
        cfg.pipeline.corr_floors = None;
        cfg.horizon_s = 300;
        cfg
    }

    #[test]
    fn clean_stream_counts_and_no_dead_letters() {
        let mut engine = ShardedIngest::new(&["a", "b"], tiny_config(2));
        let items = synthetic_items(200);
        let _ = engine.ingest_batch(items);
        let _ = engine.finish();
        let stats = engine.stats();
        assert_eq!(stats.records, 200);
        assert_eq!(stats.dead_letter, 0);
        assert_eq!(stats.duplicates, 0);
        assert_eq!(stats.late_dropped, 0);
        assert_eq!(stats.released, 200);
    }

    #[test]
    fn malformed_records_go_to_dead_letter_not_panic() {
        let mut engine = ShardedIngest::new(&["a", "b"], tiny_config(1));
        let mut items = synthetic_items(50);
        items[10].body = StreamBody::Record(vec![1.0]); // wrong arity
        items[20].body = StreamBody::Record(vec![f64::NAN, 1.0]); // non-finite
        items[30].body = StreamBody::Record(vec![]); // empty row
        let _ = engine.ingest_batch(items);
        let _ = engine.finish();
        let stats = engine.stats();
        assert_eq!(stats.dead_letter, 3);
        assert_eq!(stats.released, 47, "malformed items never reach the pipeline");
        let reasons: Vec<DeadLetterReason> =
            engine.dead_letters().iter().map(|d| d.reason).collect();
        assert!(reasons.contains(&DeadLetterReason::NonFinite));
        assert!(reasons
            .iter()
            .any(|r| matches!(r, DeadLetterReason::WrongArity { got: 1, expected: 2 })));
    }

    #[test]
    fn single_item_ingest_matches_batch() {
        let items = synthetic_items(200);
        let mut batch = ShardedIngest::new(&["a", "b"], tiny_config(2));
        let mut one = ShardedIngest::new(&["a", "b"], tiny_config(2));
        let mut a1 = batch.ingest_batch(items.clone());
        a1.extend(batch.finish());
        let mut a2 = Vec::new();
        for item in items {
            a2.extend(one.ingest(item));
        }
        a2.extend(one.finish());
        assert_eq!(a1, a2);
        assert_eq!(batch.stats(), one.stats());
    }

    #[test]
    fn finish_is_idempotent() {
        let mut engine = ShardedIngest::new(&["a", "b"], tiny_config(1));
        let _ = engine.ingest_batch(synthetic_items(30));
        let first = engine.finish();
        let second = engine.finish();
        assert!(second.is_empty(), "second finish must be a no-op, got {first:?}{second:?}");
    }

    /// One vehicle, two signals whose correlation breaks mid-stream so the
    /// tiny pipeline must raise alarms.
    fn breaking_items(n: usize) -> Vec<StreamItem> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.31).sin() * 2.0 + 10.0;
                let y = if i < 2 * n / 3 {
                    2.0 * x + 1.0
                } else {
                    21.0 - (i as f64 * 0.77).cos() * 2.0
                };
                StreamItem {
                    vehicle: 1,
                    timestamp: i as i64 * 60,
                    body: StreamBody::Record(vec![x, y]),
                }
            })
            .collect()
    }

    #[test]
    fn every_alarm_carries_provenance() {
        let mut engine = ShardedIngest::new(&["a", "b"], tiny_config(1));
        let mut alarms = engine.ingest_batch(breaking_items(240));
        alarms.extend(engine.finish());
        assert!(!alarms.is_empty(), "the correlation break must alarm");
        let prov = engine.drain_provenance();
        assert_eq!(prov.len(), alarms.len(), "one provenance entry per alarm");
        for (p, fa) in prov.iter().zip(&alarms) {
            assert_eq!(p.vehicle, fa.vehicle);
            assert_eq!(p.alarm_timestamp, fa.alarm.timestamp);
            assert_eq!(p.channel_name, fa.alarm.channel_name);
            assert_eq!(p.shard, 0);
            assert!(p.release_ns >= p.arrival_ns, "buffer wait cannot be negative");
            assert!(p.emit_ns >= p.release_ns, "pipeline time cannot be negative");
            assert_eq!(p.total_ns(), p.buffer_wait_ns() + p.pipeline_ns());
        }
        assert!(engine.drain_provenance().is_empty(), "drain takes everything");
    }

    #[test]
    fn provenance_is_identical_with_metrics_off_and_on() {
        // Provenance is always-on; flipping metrics must not change what
        // the journal sees (timestamps differ, shape and counts do not).
        let was = obs::metrics_enabled();
        obs::set_metrics_enabled(false);
        let mut off = ShardedIngest::new(&["a", "b"], tiny_config(1));
        let _ = off.ingest_batch(breaking_items(240));
        let _ = off.finish();
        obs::set_metrics_enabled(true);
        let mut on = ShardedIngest::new(&["a", "b"], tiny_config(1));
        let _ = on.ingest_batch(breaking_items(240));
        let _ = on.finish();
        obs::set_metrics_enabled(was);
        let (a, b) = (off.drain_provenance(), on.drain_provenance());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.vehicle, x.alarm_timestamp), (y.vehicle, y.alarm_timestamp));
        }
    }

    #[test]
    fn clean_stream_health_stays_ok() {
        let mut engine = ShardedIngest::new(&["a", "b"], tiny_config(2));
        assert!(engine.observe_health().is_empty(), "arming tick");
        let _ = engine.ingest_batch(synthetic_items(200));
        assert!(engine.observe_health().is_empty());
        let _ = engine.finish();
        assert!(engine.observe_health().is_empty());
        assert!(engine.health_states().iter().all(|s| *s == HealthState::Ok));
    }

    #[test]
    fn late_drop_flood_escalates_one_level_at_a_time() {
        let mut cfg = tiny_config(1);
        cfg.health.worsen_ticks = 1;
        cfg.health.improve_ticks = 1;
        let mut engine = ShardedIngest::new(&["a", "b"], cfg);
        // Drive the watermark far enough that t=400000 is *released* (the
        // flood below must arrive behind the last released key), then arm
        // the health tracker.
        for t in [0i64, 400_000, 800_000] {
            let _ = engine.ingest(StreamItem {
                vehicle: 1,
                timestamp: t,
                body: StreamBody::Record(vec![1.0, 2.0]),
            });
        }
        assert!(engine.observe_health().is_empty());
        let flood = |engine: &mut ShardedIngest| {
            for i in 0..200i64 {
                // Far behind the watermark → every one is late-dropped at
                // an enormous instantaneous rate.
                let _ = engine.ingest(StreamItem {
                    vehicle: 1,
                    timestamp: 1 + i,
                    body: StreamBody::Record(vec![1.0, 2.0]),
                });
            }
        };
        flood(&mut engine);
        assert_eq!(
            engine.observe_health(),
            vec![HealthTransition { shard: 0, from: HealthState::Ok, to: HealthState::Degraded }],
            "first escalation stops at Degraded even though the rate is stalled-level"
        );
        flood(&mut engine);
        assert_eq!(
            engine.observe_health(),
            vec![HealthTransition {
                shard: 0,
                from: HealthState::Degraded,
                to: HealthState::Stalled
            }]
        );
        // Quiet interval → recovery, again one level per tick.
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(
            engine.observe_health(),
            vec![HealthTransition {
                shard: 0,
                from: HealthState::Stalled,
                to: HealthState::Degraded
            }]
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(
            engine.observe_health(),
            vec![HealthTransition { shard: 0, from: HealthState::Degraded, to: HealthState::Ok }]
        );
        assert!(engine.stats().late_dropped >= 400, "the floods really were late-dropped");
    }

    #[test]
    fn nan_burst_flags_quality_and_degrades_the_shard() {
        let mut cfg = tiny_config(1);
        cfg.health.worsen_ticks = 1;
        cfg.quality.reference_len = 16;
        cfg.quality.window = 8;
        let mut engine = ShardedIngest::new(&["a", "b"], cfg);
        let _ = engine.ingest_batch(synthetic_items(100));
        assert!(engine.observe_health().is_empty(), "clean warm-up arms the tracker");
        assert_eq!(engine.stats().quality_flagged, 0, "clean stream never flags");
        // One vehicle's channels go NaN: dead-lettered by validation, but
        // the quality monitor saw the raw rows and flags the stream.
        let bad: Vec<StreamItem> = (100..160)
            .map(|i| StreamItem {
                vehicle: 1,
                timestamp: i as i64 * 60,
                body: StreamBody::Record(vec![f64::NAN, f64::NAN]),
            })
            .collect();
        let _ = engine.ingest_batch(bad);
        let stats = engine.stats();
        assert!(stats.quality_flagged > 0, "NaN burst must flag");
        let transitions = engine.observe_health();
        assert_eq!(
            transitions,
            vec![HealthTransition { shard: 0, from: HealthState::Ok, to: HealthState::Degraded }],
            "quality flags alone must move the shard off Ok"
        );
        let quality = engine.quality_snapshots();
        assert_eq!(quality.len(), 1);
        assert!(quality[0].1.nan_fraction > 0.9, "window is all NaN");
    }

    #[test]
    fn drifting_channel_raises_drift_z_without_dead_letters() {
        let mut cfg = tiny_config(1);
        cfg.quality.reference_len = 32;
        cfg.quality.window = 8;
        let mut engine = ShardedIngest::new(&["a", "b"], cfg);
        let _ = engine.ingest_batch(synthetic_items(100));
        // Finite but wildly out-of-range values: validation accepts them,
        // only the drift monitor complains.
        let drifted: Vec<StreamItem> = (100..140)
            .map(|i| {
                let x = (i as f64 * 0.37).sin() * 3.0 + 500.0;
                StreamItem {
                    vehicle: 1,
                    timestamp: i as i64 * 60,
                    body: StreamBody::Record(vec![x, 2.0 * x + 1.0]),
                }
            })
            .collect();
        let _ = engine.ingest_batch(drifted);
        assert_eq!(engine.stats().dead_letter, 0);
        assert!(engine.stats().quality_flagged > 0, "drift must flag");
        let (_, snap) = engine.quality_snapshots()[0];
        assert!(snap.max_drift_z > 4.0, "drift z {}", snap.max_drift_z);
    }

    #[test]
    fn vehicles_land_on_their_routed_shard_only() {
        let cfg = tiny_config(3);
        let mut engine = ShardedIngest::new(&["a", "b"], cfg);
        let mut items = Vec::new();
        for v in 0..9u32 {
            for i in 0..5usize {
                items.push(StreamItem {
                    vehicle: v,
                    timestamp: i as i64 * 60,
                    body: StreamBody::Record(vec![1.0, 2.0]),
                });
            }
        }
        let _ = engine.ingest_batch(items);
        let per_shard = engine.vehicles_per_shard();
        assert_eq!(per_shard.iter().sum::<usize>(), 9, "every vehicle exactly once");
    }
}

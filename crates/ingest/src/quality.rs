//! Per-vehicle data-quality monitors: NaN/missing fraction, cadence-gap
//! rate, and value-range drift against a frozen reference window.
//!
//! The monitors watch the *raw* stream — rows exactly as they arrive,
//! before arity/finiteness validation dead-letters them — because the
//! question they answer ("is this vehicle's feed going bad?") is about
//! what the wire carries, not about what survives validation. A channel
//! that starts streaming NaNs is invisible to the pipelines (the engine
//! rejects those rows) but very visible here.
//!
//! Three signals per vehicle, each over a rolling window of the last
//! [`QualityConfig::window`] records:
//!
//! * **NaN/missing fraction** — non-finite or absent cells as a fraction
//!   of all cells in the window (a truncated row's missing tail counts as
//!   missing).
//! * **Cadence-gap rate** — fraction of inter-record gaps exceeding
//!   [`QualityConfig::cadence_gap_factor`] × the vehicle's median cadence,
//!   learned during the reference phase. Non-positive gaps (reordered
//!   arrivals) are skipped: reordering is the reorder buffer's problem.
//! * **Value-range drift** — per channel, `|rolling mean − reference
//!   mean| / reference std`, against mean/std/min/max frozen from the
//!   first [`QualityConfig::reference_len`] finite samples. The max across
//!   channels is the vehicle's drift score.
//!
//! A record is **flagged** when the NaN or gap fraction crosses its
//! threshold (once the window has filled), or when drift crosses its
//! z-threshold (once the reference is frozen). The drift flag has a
//! second gate: the rolling mean must also sit
//! [`QualityConfig::drift_range_factor`] × the reference's observed
//! *range* away from the reference mean. Vehicle telemetry is regime-
//! structured (urban vs highway days shift every signal's mean by many
//! reference stds), so a z-score alone pages on normal driving; a shift
//! beyond anything the reference ever saw does not. Flag counts feed the
//! shard-health state machine via `HealthSample::quality_flagged`; the
//! engine exports the rolling fractions as `ingest.quality.v*.{nan_bp,
//! gap_bp,drift_mz}` gauges.
//!
//! Memory is bounded: one `f64` ring per channel plus one gap ring per
//! vehicle, all of length `window`.

use navarchos_stat::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use std::collections::VecDeque;

/// Thresholds and window lengths for one vehicle's monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityConfig {
    /// Finite samples per channel frozen into the reference mean/std.
    pub reference_len: usize,
    /// Rolling window length, in records.
    pub window: usize,
    /// Rolling NaN/missing cell fraction at which records flag.
    pub nan_fraction_flag: f64,
    /// A gap counts when `dt > cadence_gap_factor × median cadence`.
    pub cadence_gap_factor: f64,
    /// Rolling gap fraction at which records flag.
    pub gap_fraction_flag: f64,
    /// Drift z-score (per channel, vs the frozen reference) at which
    /// records flag.
    pub drift_z_flag: f64,
    /// Second gate on the drift flag: the rolling mean must also sit this
    /// many reference *ranges* (`ref_max − ref_min`) away from the
    /// reference mean. Regime changes in normal driving routinely exceed
    /// any z-threshold (the reference std is tiny next to an urban→highway
    /// shift); a shift beyond everything the reference ever saw is the
    /// part that means sensor fault rather than different road.
    pub drift_range_factor: f64,
}

impl Default for QualityConfig {
    fn default() -> QualityConfig {
        QualityConfig {
            // Long enough to span several rides/regimes: a one-ride
            // reference makes every later regime look like drift (an
            // urban-only hour caps `speed`'s range at city speeds).
            reference_len: 256,
            window: 32,
            nan_fraction_flag: 0.25,
            cadence_gap_factor: 8.0,
            // Ride boundaries park the vehicle for hours — long gaps are
            // the normal shape of telematics, so only a majority-gap
            // window flags.
            gap_fraction_flag: 0.5,
            drift_z_flag: 4.0,
            // Calibrated against seeded clean fleets: with a 256-sample
            // reference the worst clean-stream excursion stays under
            // ~1.7 ranges, so 2.5 leaves ~1.5x headroom while still
            // catching any genuine sensor fault (stuck, bias, unit slip
            // — all land tens of ranges out).
            drift_range_factor: 2.5,
        }
    }
}

/// Point-in-time view of a monitor, for gauge export and dashboards.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QualitySnapshot {
    /// Non-finite/missing cells over the rolling window, 0..1.
    pub nan_fraction: f64,
    /// Cadence gaps over the rolling window, 0..1.
    pub gap_fraction: f64,
    /// Max per-channel drift z-score (0 until the reference freezes).
    pub max_drift_z: f64,
    /// True once every channel's reference mean/std is frozen.
    pub reference_frozen: bool,
    /// Records observed so far.
    pub records: u64,
}

/// One channel's reference statistics plus rolling-window state.
#[derive(Debug, Clone)]
struct ChannelQuality {
    // Welford accumulator until `reference_len` finite samples, then
    // frozen into (ref_mean, ref_std).
    ref_count: usize,
    ref_mean: f64,
    ref_m2: f64,
    ref_min: f64,
    ref_max: f64,
    frozen: bool,
    // Rolling window of raw cell values (NaN kept — it is the signal).
    ring: VecDeque<f64>,
    finite_sum: f64,
    finite_count: usize,
    nan_count: usize,
}

impl ChannelQuality {
    fn new() -> ChannelQuality {
        ChannelQuality {
            ref_count: 0,
            ref_mean: 0.0,
            ref_m2: 0.0,
            ref_min: f64::INFINITY,
            ref_max: f64::NEG_INFINITY,
            frozen: false,
            ring: VecDeque::new(),
            finite_sum: 0.0,
            finite_count: 0,
            nan_count: 0,
        }
    }

    fn push(&mut self, v: f64, reference_len: usize, window: usize) {
        if !self.frozen && v.is_finite() {
            self.ref_count += 1;
            let delta = v - self.ref_mean;
            self.ref_mean += delta / self.ref_count as f64;
            self.ref_m2 += delta * (v - self.ref_mean);
            self.ref_min = self.ref_min.min(v);
            self.ref_max = self.ref_max.max(v);
            if self.ref_count >= reference_len {
                self.frozen = true;
            }
        }
        self.ring.push_back(v);
        if v.is_finite() {
            self.finite_sum += v;
            self.finite_count += 1;
        } else {
            self.nan_count += 1;
        }
        if self.ring.len() > window {
            let old = self.ring.pop_front().unwrap_or(f64::NAN);
            if old.is_finite() {
                self.finite_sum -= old;
                self.finite_count -= 1;
            } else {
                self.nan_count -= 1;
            }
        }
    }

    fn ref_std(&self) -> f64 {
        if self.ref_count < 2 {
            return 0.0;
        }
        (self.ref_m2 / (self.ref_count - 1) as f64).sqrt()
    }

    /// Drift z-score of the rolling mean vs the frozen reference; 0 until
    /// both the reference and enough of the window are in. The std floor
    /// keeps a constant-valued reference channel from turning any wiggle
    /// into an infinite z.
    fn drift_z(&self, min_window: usize) -> f64 {
        if !self.frozen || self.finite_count < min_window {
            return 0.0;
        }
        let roll_mean = self.finite_sum / self.finite_count as f64;
        let denom = self.ref_std().max(1e-9 * self.ref_mean.abs().max(1.0));
        ((roll_mean - self.ref_mean) / denom).abs()
    }

    /// The range gate: true when the rolling mean sits `range_factor`
    /// reference ranges away from the reference mean. The floor keeps a
    /// constant-valued reference (zero range) from making the gate
    /// unpassable — any real shift off a constant clears it.
    fn drift_beyond_range(&self, min_window: usize, range_factor: f64) -> bool {
        if !self.frozen || self.finite_count < min_window {
            return false;
        }
        let roll_mean = self.finite_sum / self.finite_count as f64;
        let range = (self.ref_max - self.ref_min).max(1e-9 * self.ref_mean.abs().max(1.0));
        (roll_mean - self.ref_mean).abs() > range_factor * range
    }
}

impl ChannelQuality {
    fn write_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.ref_count);
        w.put_f64(self.ref_mean);
        w.put_f64(self.ref_m2);
        w.put_f64(self.ref_min);
        w.put_f64(self.ref_max);
        w.put_bool(self.frozen);
        w.put_f64_seq(self.ring.len(), self.ring.iter().copied());
        w.put_f64(self.finite_sum);
        w.put_usize(self.finite_count);
        w.put_usize(self.nan_count);
    }

    fn read_state(&mut self, r: &mut SnapReader<'_>, window: usize) -> Result<(), SnapError> {
        let ref_count = r.get_usize()?;
        let ref_mean = r.get_f64()?;
        let ref_m2 = r.get_f64()?;
        let ref_min = r.get_f64()?;
        let ref_max = r.get_f64()?;
        let frozen = r.get_bool()?;
        let ring = r.get_f64_vec()?;
        if ring.len() > window {
            return Err(SnapError::Corrupt("quality ring larger than the window"));
        }
        let finite_sum = r.get_f64()?;
        let finite_count = r.get_usize()?;
        let nan_count = r.get_usize()?;
        if finite_count + nan_count != ring.len() {
            return Err(SnapError::Corrupt("quality ring counts disagree with its length"));
        }
        self.ref_count = ref_count;
        self.ref_mean = ref_mean;
        self.ref_m2 = ref_m2;
        self.ref_min = ref_min;
        self.ref_max = ref_max;
        self.frozen = frozen;
        self.ring = ring.into();
        self.finite_sum = finite_sum;
        self.finite_count = finite_count;
        self.nan_count = nan_count;
        Ok(())
    }
}

/// One vehicle's monitor: per-channel stats plus the cadence tracker.
#[derive(Debug, Clone)]
pub struct QualityMonitor {
    cfg: QualityConfig,
    channels: Vec<ChannelQuality>,
    records: u64,
    // Cadence: inter-record gaps collected during warm-up, median frozen.
    last_ts: Option<i64>,
    warmup_dts: Vec<i64>,
    median_dt: Option<i64>,
    gap_ring: VecDeque<bool>,
    gap_count: usize,
}

impl QualityMonitor {
    /// A monitor for rows of `n_channels` values.
    pub fn new(n_channels: usize, cfg: QualityConfig) -> QualityMonitor {
        QualityMonitor {
            cfg,
            channels: (0..n_channels).map(|_| ChannelQuality::new()).collect(),
            records: 0,
            last_ts: None,
            warmup_dts: Vec::new(),
            median_dt: None,
            gap_ring: VecDeque::new(),
            gap_count: 0,
        }
    }

    /// Observes one raw record (pre-validation). Cells beyond the row's
    /// length count as missing. Returns true when the record is flagged
    /// under the config's thresholds.
    pub fn observe(&mut self, timestamp: i64, row: &[f64]) -> bool {
        self.records += 1;
        for (i, ch) in self.channels.iter_mut().enumerate() {
            let v = row.get(i).copied().unwrap_or(f64::NAN);
            ch.push(v, self.cfg.reference_len, self.cfg.window);
        }
        self.observe_cadence(timestamp);
        self.flagged()
    }

    fn observe_cadence(&mut self, timestamp: i64) {
        let prev = self.last_ts.replace(timestamp);
        let Some(prev) = prev else { return };
        let dt = timestamp - prev;
        if dt <= 0 {
            // Reordered arrival: sequencing trouble, not a cadence gap.
            return;
        }
        match self.median_dt {
            None => {
                self.warmup_dts.push(dt);
                if self.warmup_dts.len() >= self.cfg.reference_len {
                    self.warmup_dts.sort_unstable();
                    self.median_dt = Some(self.warmup_dts[self.warmup_dts.len() / 2].max(1));
                    self.warmup_dts = Vec::new();
                }
            }
            Some(median) => {
                let is_gap = dt as f64 > self.cfg.cadence_gap_factor * median as f64;
                self.gap_ring.push_back(is_gap);
                self.gap_count += usize::from(is_gap);
                if self.gap_ring.len() > self.cfg.window {
                    let old = self.gap_ring.pop_front().unwrap_or(false);
                    self.gap_count -= usize::from(old);
                }
            }
        }
    }

    fn min_window(&self) -> usize {
        (self.cfg.window / 4).max(4)
    }

    fn nan_fraction(&self) -> f64 {
        let cells: usize = self.channels.iter().map(|c| c.ring.len()).sum();
        if cells == 0 {
            return 0.0;
        }
        let nan: usize = self.channels.iter().map(|c| c.nan_count).sum();
        nan as f64 / cells as f64
    }

    fn gap_fraction(&self) -> f64 {
        if self.gap_ring.is_empty() {
            return 0.0;
        }
        self.gap_count as f64 / self.gap_ring.len() as f64
    }

    fn max_drift_z(&self) -> f64 {
        let min_window = self.min_window();
        self.channels.iter().map(|c| c.drift_z(min_window)).fold(0.0, f64::max)
    }

    fn flagged(&self) -> bool {
        let windowed = self.records >= self.cfg.window as u64;
        if windowed && self.nan_fraction() >= self.cfg.nan_fraction_flag {
            return true;
        }
        // The gap ring only starts filling once the cadence median is
        // frozen, so gate on *its* fill — right after freeze, one gap in
        // a two-entry ring would otherwise read as "half the window".
        if self.gap_ring.len() >= self.cfg.window
            && self.gap_fraction() >= self.cfg.gap_fraction_flag
        {
            return true;
        }
        if !self.reference_frozen() {
            return false;
        }
        let min_window = self.min_window();
        // Both gates on the same channel: statistically impossible under
        // the reference (z) AND outside everything it ever saw (range).
        self.channels.iter().any(|c| {
            c.drift_z(min_window) >= self.cfg.drift_z_flag
                && c.drift_beyond_range(min_window, self.cfg.drift_range_factor)
        })
    }

    /// True once every channel's reference is frozen.
    pub fn reference_frozen(&self) -> bool {
        !self.channels.is_empty() && self.channels.iter().all(|c| c.frozen)
    }

    /// Current rolling fractions and drift, for gauge export.
    pub fn snapshot(&self) -> QualitySnapshot {
        QualitySnapshot {
            nan_fraction: self.nan_fraction(),
            gap_fraction: self.gap_fraction(),
            max_drift_z: self.max_drift_z(),
            reference_frozen: self.reference_frozen(),
            records: self.records,
        }
    }
}

// Everything outside `cfg` is evolved state: reference accumulators (the
// freeze threshold may not be reached yet), rolling rings, and the cadence
// tracker including its warm-up gap collection.
impl Snapshot for QualityMonitor {
    fn write_state(&self, w: &mut SnapWriter) {
        w.put_usize(self.channels.len());
        for ch in &self.channels {
            ch.write_state(w);
        }
        w.put_u64(self.records);
        w.put_opt_i64(self.last_ts);
        w.put_usize(self.warmup_dts.len());
        for dt in &self.warmup_dts {
            w.put_i64(*dt);
        }
        w.put_opt_i64(self.median_dt);
        w.put_usize(self.gap_ring.len());
        for g in &self.gap_ring {
            w.put_bool(*g);
        }
        w.put_usize(self.gap_count);
    }
}

impl Restore for QualityMonitor {
    fn read_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n_channels = r.get_usize()?;
        if n_channels != self.channels.len() {
            return Err(SnapError::Corrupt("quality monitor channel-count mismatch"));
        }
        let mut channels: Vec<ChannelQuality> =
            (0..n_channels).map(|_| ChannelQuality::new()).collect();
        for ch in &mut channels {
            ch.read_state(r, self.cfg.window)?;
        }
        let records = r.get_u64()?;
        let last_ts = r.get_opt_i64()?;
        let n_warmup = r.get_len(8)?;
        if n_warmup > self.cfg.reference_len {
            return Err(SnapError::Corrupt("cadence warm-up larger than the reference"));
        }
        let mut warmup_dts = Vec::with_capacity(n_warmup);
        for _ in 0..n_warmup {
            warmup_dts.push(r.get_i64()?);
        }
        let median_dt = r.get_opt_i64()?;
        let n_gaps = r.get_len(1)?;
        if n_gaps > self.cfg.window {
            return Err(SnapError::Corrupt("gap ring larger than the window"));
        }
        let mut gap_ring = VecDeque::with_capacity(n_gaps);
        for _ in 0..n_gaps {
            gap_ring.push_back(r.get_bool()?);
        }
        let gap_count = r.get_usize()?;
        if gap_count != gap_ring.iter().filter(|g| **g).count() {
            return Err(SnapError::Corrupt("gap count disagrees with the gap ring"));
        }
        self.channels = channels;
        self.records = records;
        self.last_ts = last_ts;
        self.warmup_dts = warmup_dts;
        self.median_dt = median_dt;
        self.gap_ring = gap_ring;
        self.gap_count = gap_count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> QualityConfig {
        QualityConfig { reference_len: 16, window: 8, ..QualityConfig::default() }
    }

    /// Feeds `n` clean records at a steady cadence starting at `t0`. The
    /// signals cycle fast relative to `reference_len` so the frozen
    /// reference sees full periods, not a biased partial phase.
    fn feed_clean(m: &mut QualityMonitor, t0: i64, n: usize) -> bool {
        let mut any = false;
        for i in 0..n {
            let t = t0 + i as i64 * 60;
            let x = (i as f64 * 0.9).sin() + 10.0;
            any |= m.observe(t, &[x, 20.0 + (i as f64 * 1.1).cos()]);
        }
        any
    }

    #[test]
    fn clean_stream_never_flags() {
        let mut m = QualityMonitor::new(2, tiny_cfg());
        assert!(!feed_clean(&mut m, 0, 200), "clean feed flagged");
        let s = m.snapshot();
        assert!(s.reference_frozen);
        assert_eq!(s.nan_fraction, 0.0);
        assert_eq!(s.gap_fraction, 0.0);
        assert!(s.max_drift_z < 4.0, "healthy drift {}", s.max_drift_z);
    }

    #[test]
    fn nan_burst_flags_and_fraction_rises() {
        let mut m = QualityMonitor::new(2, tiny_cfg());
        feed_clean(&mut m, 0, 100);
        let mut flagged = false;
        for i in 100..108 {
            flagged |= m.observe(i * 60, &[f64::NAN, f64::NAN]);
        }
        assert!(flagged, "an all-NaN window must flag");
        assert!(m.snapshot().nan_fraction >= 0.9);
        // The window slides: once it refills with clean records the flag
        // clears (transition records while NaNs drain out may still flag).
        let mut tail_flagged = false;
        for i in 108..160i64 {
            let x = (i as f64 * 0.9).sin() + 10.0;
            let f = m.observe(i * 60, &[x, 20.0 + (i as f64 * 1.1).cos()]);
            if i >= 120 {
                tail_flagged |= f;
            }
        }
        assert!(!tail_flagged, "a refilled clean window must not flag");
        assert_eq!(m.snapshot().nan_fraction, 0.0);
    }

    #[test]
    fn truncated_rows_count_as_missing() {
        let mut m = QualityMonitor::new(4, tiny_cfg());
        for i in 0..40 {
            // Half the cells missing on every record.
            m.observe(i * 60, &[1.0, 2.0]);
        }
        assert!((m.snapshot().nan_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_shift_drives_drift_z_past_threshold() {
        let mut m = QualityMonitor::new(2, tiny_cfg());
        feed_clean(&mut m, 0, 100);
        assert!(m.snapshot().max_drift_z < 4.0);
        // Channel 0 jumps far outside its reference range.
        let mut flagged = false;
        for i in 0..16 {
            let t = 100 * 60 + i * 60;
            flagged |= m.observe(t, &[500.0 + (i as f64 * 0.3).sin(), 20.0]);
        }
        assert!(flagged, "a gross mean shift must flag");
        assert!(m.snapshot().max_drift_z >= 4.0, "z {}", m.snapshot().max_drift_z);
    }

    #[test]
    fn cadence_gaps_are_measured_against_learned_median() {
        let mut m = QualityMonitor::new(1, tiny_cfg());
        // Learn a 60 s cadence.
        for i in 0..30 {
            m.observe(i * 60, &[1.0]);
        }
        assert_eq!(m.snapshot().gap_fraction, 0.0);
        // Then the feed goes sparse: hour-long holes.
        let mut t = 30 * 60;
        let mut flagged = false;
        for _ in 0..8 {
            t += 3600;
            flagged |= m.observe(t, &[1.0]);
        }
        assert!(flagged, "sustained cadence gaps must flag");
        assert!(m.snapshot().gap_fraction > 0.5);
    }

    #[test]
    fn reordered_arrivals_are_not_gaps() {
        let mut m = QualityMonitor::new(1, tiny_cfg());
        for i in 0..30 {
            m.observe(i * 60, &[1.0]);
        }
        // A burst of out-of-order timestamps: dt <= 0 is skipped entirely.
        for i in 0..8 {
            m.observe(29 * 60 - i * 60, &[1.0]);
        }
        assert_eq!(m.snapshot().gap_fraction, 0.0);
    }

    #[test]
    fn memory_is_bounded_by_the_window() {
        let mut m = QualityMonitor::new(3, tiny_cfg());
        for i in 0..10_000 {
            m.observe(i * 60, &[1.0, 2.0, f64::NAN]);
        }
        for c in &m.channels {
            assert!(c.ring.len() <= m.cfg.window);
        }
        assert!(m.gap_ring.len() <= m.cfg.window);
        assert!(m.warmup_dts.is_empty(), "warm-up buffer is released after freeze");
    }
}

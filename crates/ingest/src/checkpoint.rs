//! Checkpoint/restore for the sharded ingest engine: the
//! `navarchos-checkpoint/v1` snapshot format.
//!
//! A checkpoint captures **every piece of per-vehicle mutable state** the
//! engine owns — incremental transform accumulators, window cadence,
//! reference profiles and tuned thresholds, detector streaming state,
//! data-quality monitors, per-shard reorder buffers with their in-flight
//! records and watermarks — plus per-shard counters, routing overrides
//! from migrations, and two pieces of replay context supplied by the
//! caller: the **cursor** (stream items consumed so far) and the **alarm
//! ledger** (alarms already emitted), so a restored run can resume a
//! deterministic stream mid-way and still verify its total output against
//! a full-stream oracle.
//!
//! # The headline contract
//!
//! Checkpoint at an arbitrary record `k`, restore into a fresh engine,
//! feed the remainder of the stream: the alarms are **byte-identical** to
//! the uninterrupted run — scores and thresholds compare equal by
//! `f64::to_bits`. `tests/checkpoint_props.rs` proves this over random
//! cut points and dirty streams; `tests/golden.rs` pins it end-to-end on
//! a seeded fleet, including a migration under load.
//!
//! # Format
//!
//! Hand-rolled framed binary (`navarchos_stat::snapshot`), zero-dep:
//! little-endian fixed-width integers, `f64` by bit pattern, length
//! prefixes validated against remaining bytes before any allocation.
//! Layout: magic, version (`u32`, currently 1 — any other value is
//! [`SnapError::VersionMismatch`]), a config fingerprint (signal names
//! plus the scalars that shape serialised state; mismatch is refused as
//! corrupt rather than misinterpreted), then cursor, alarm ledger, the
//! engine frame, and a trailing CRC-32 over everything before it. Magic
//! and version are checked *before* the checksum so a future-format file
//! is still reported as a version mismatch; any other byte flip fails
//! the checksum. Truncated or corrupted bytes return [`SnapError`],
//! never panic.
//!
//! Not captured: health-FSM trackers (wall-clock-rate ops telemetry,
//! re-armed on the first `observe_health` tick after restore) and obs
//! counter handles (global registry state, re-resolved on construction).

use navarchos_core::pipeline::Alarm;
use navarchos_obs as obs;
use navarchos_stat::{SnapError, SnapReader, SnapWriter};

use crate::engine::{FleetAlarm, IngestConfig, ShardedIngest};

/// Leading magic of every checkpoint. The version rides separately so a
/// future-format file is reported as a version mismatch, not bad magic.
pub const CHECKPOINT_MAGIC: &[u8] = b"navarchos-checkpoint";

/// Current snapshot format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected) — the integrity trailer. Bitwise, no
/// table: checkpoints are written once per N thousand records, so the
/// ~8 cycles/byte cost is irrelevant next to the serialisation itself.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Everything [`read_checkpoint`] recovers.
#[derive(Debug)]
pub struct RestoredEngine {
    /// The engine, state-identical to the one checkpointed.
    pub engine: ShardedIngest,
    /// Stream items the checkpointed run had consumed — the restorer
    /// skips this many items of the deterministically regenerated stream.
    pub cursor: u64,
    /// Alarms the checkpointed run had already emitted, in emission
    /// order; prepend to the resumed run's alarms to compare against a
    /// full-stream oracle.
    pub prior_alarms: Vec<FleetAlarm>,
}

fn write_fleet_alarm(w: &mut SnapWriter, fa: &FleetAlarm) {
    w.put_u32(fa.vehicle);
    w.put_i64(fa.alarm.timestamp);
    w.put_usize(fa.alarm.channel);
    w.put_str(&fa.alarm.channel_name);
    w.put_f64(fa.alarm.score);
    w.put_f64(fa.alarm.threshold);
}

fn read_fleet_alarm(r: &mut SnapReader<'_>) -> Result<FleetAlarm, SnapError> {
    Ok(FleetAlarm {
        vehicle: r.get_u32()?,
        alarm: Alarm {
            timestamp: r.get_i64()?,
            channel: r.get_usize()?,
            channel_name: r.get_str()?,
            score: r.get_f64()?,
            threshold: r.get_f64()?,
        },
    })
}

/// The config scalars that shape serialised state. Restoring under a
/// different value of any of these would silently misinterpret ring
/// bounds and watermarks, so they are pinned into the checkpoint.
fn write_fingerprint(w: &mut SnapWriter, names: &[String], cfg: &IngestConfig) {
    w.put_usize(names.len());
    for n in names {
        w.put_str(n);
    }
    w.put_usize(cfg.n_shards);
    w.put_i64(cfg.horizon_s);
    w.put_usize(cfg.reorder_capacity);
    w.put_usize(cfg.max_dead_letters_kept);
    w.put_usize(cfg.pipeline.window);
    w.put_usize(cfg.pipeline.stride);
    w.put_usize(cfg.pipeline.profile_length);
    w.put_usize(cfg.pipeline.holdout);
    w.put_usize(cfg.quality.reference_len);
    w.put_usize(cfg.quality.window);
}

fn check_fingerprint(
    r: &mut SnapReader<'_>,
    names: &[String],
    cfg: &IngestConfig,
) -> Result<(), SnapError> {
    let n_names = r.get_len(1)?;
    if n_names != names.len() {
        return Err(SnapError::Corrupt("checkpoint signal-name count mismatch"));
    }
    for expected in names {
        if r.get_str()? != *expected {
            return Err(SnapError::Corrupt("checkpoint signal-name mismatch"));
        }
    }
    let same = r.get_usize()? == cfg.n_shards
        && r.get_i64()? == cfg.horizon_s
        && r.get_usize()? == cfg.reorder_capacity
        && r.get_usize()? == cfg.max_dead_letters_kept
        && r.get_usize()? == cfg.pipeline.window
        && r.get_usize()? == cfg.pipeline.stride
        && r.get_usize()? == cfg.pipeline.profile_length
        && r.get_usize()? == cfg.pipeline.holdout
        && r.get_usize()? == cfg.quality.reference_len
        && r.get_usize()? == cfg.quality.window;
    if same {
        Ok(())
    } else {
        Err(SnapError::Corrupt("checkpoint config fingerprint mismatch"))
    }
}

/// Serialises the engine plus replay context into a `v1` checkpoint.
/// Updates the `ingest.checkpoint.{writes,bytes,write_us}` metrics when
/// metrics are on.
pub fn write_checkpoint(
    engine: &ShardedIngest,
    cursor: u64,
    prior_alarms: &[FleetAlarm],
) -> Vec<u8> {
    let t0 = obs::elapsed_ns();
    let mut w = SnapWriter::new();
    w.put_bytes(CHECKPOINT_MAGIC);
    w.put_u32(CHECKPOINT_VERSION);
    w.put_frame(|w| write_fingerprint(w, engine.signal_names(), engine.config()));
    w.put_u64(cursor);
    w.put_usize(prior_alarms.len());
    for fa in prior_alarms {
        write_fleet_alarm(&mut w, fa);
    }
    w.put_frame(|w| engine.write_engine_state(w));
    let mut bytes = w.into_bytes();
    let sum = crc32(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    if obs::metrics_enabled() {
        obs::counter("ingest.checkpoint.writes").incr();
        obs::gauge("ingest.checkpoint.bytes").set(bytes.len() as u64);
        obs::gauge("ingest.checkpoint.write_us").set(obs::elapsed_ns().saturating_sub(t0) / 1000);
    }
    bytes
}

/// Restores a checkpoint into a fresh engine built from `names`/`cfg`,
/// which must match the checkpointed run's (the fingerprint is checked).
/// A wrong version is [`SnapError::VersionMismatch`]; truncated or
/// corrupted bytes are an error, never a panic. Updates the
/// `ingest.checkpoint.{restores,restore_us}` metrics when metrics are on.
pub fn read_checkpoint<S: AsRef<str>>(
    names: &[S],
    cfg: IngestConfig,
    bytes: &[u8],
) -> Result<RestoredEngine, SnapError> {
    let t0 = obs::elapsed_ns();
    let names: Vec<String> = names.iter().map(|s| s.as_ref().to_string()).collect();
    if bytes.len() < 4 {
        return Err(SnapError::UnexpectedEof);
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 4);
    let mut r = SnapReader::new(payload);
    if r.get_bytes()? != CHECKPOINT_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.get_u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(SnapError::VersionMismatch { found: version, expected: CHECKPOINT_VERSION });
    }
    let stored = u32::from_le_bytes(tail.try_into().expect("split_at keeps 4 bytes"));
    if crc32(payload) != stored {
        return Err(SnapError::Corrupt("checkpoint checksum mismatch"));
    }
    let mut frame = r.get_frame()?;
    check_fingerprint(&mut frame, &names, &cfg)?;
    frame.finish()?;
    let cursor = r.get_u64()?;
    let n_alarms = r.get_len(1)?;
    let mut prior_alarms = Vec::with_capacity(n_alarms);
    for _ in 0..n_alarms {
        prior_alarms.push(read_fleet_alarm(&mut r)?);
    }
    let mut engine = ShardedIngest::new(&names, cfg);
    let mut frame = r.get_frame()?;
    engine.read_engine_state(&mut frame)?;
    frame.finish()?;
    r.finish()?;
    if obs::metrics_enabled() {
        obs::counter("ingest.checkpoint.restores").incr();
        obs::gauge("ingest.checkpoint.restore_us").set(obs::elapsed_ns().saturating_sub(t0) / 1000);
    }
    Ok(RestoredEngine { engine, cursor, prior_alarms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use navarchos_fleetsim::{StreamBody, StreamItem};

    fn tiny_config(n_shards: usize) -> IngestConfig {
        let mut cfg = IngestConfig::paper_default(n_shards);
        cfg.pipeline.window = 8;
        cfg.pipeline.stride = 2;
        cfg.pipeline.profile_length = 6;
        cfg.pipeline.holdout = 4;
        cfg.pipeline.filter = navarchos_tsframe::FilterSpec::default();
        cfg.pipeline.corr_floors = None;
        cfg.horizon_s = 300;
        cfg
    }

    fn items(n: usize, vehicles: u32) -> Vec<StreamItem> {
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.37).sin() * 3.0 + 10.0;
                StreamItem {
                    vehicle: i as u32 % vehicles,
                    timestamp: (i as i64 / vehicles as i64) * 60,
                    body: StreamBody::Record(vec![x, 2.0 * x + 1.0]),
                }
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_counters_and_context() {
        let names = ["a", "b"];
        let mut engine = ShardedIngest::new(&names, tiny_config(2));
        let alarms: Vec<FleetAlarm> = engine.ingest_batch(items(300, 3));
        let stats = engine.stats();
        let bytes = write_checkpoint(&engine, 300, &alarms);
        let restored = read_checkpoint(&names, tiny_config(2), &bytes).expect("restore");
        assert_eq!(restored.cursor, 300);
        assert_eq!(restored.prior_alarms, alarms);
        assert_eq!(restored.engine.stats(), stats);
        assert_eq!(restored.engine.vehicles_per_shard(), engine.vehicles_per_shard());
        // A snapshot of the restored engine is byte-identical.
        let again = write_checkpoint(&restored.engine, 300, &alarms);
        assert_eq!(bytes, again, "snapshot → restore → snapshot is byte-stable");
    }

    #[test]
    fn version_mismatch_is_a_named_error() {
        let names = ["a", "b"];
        let engine = ShardedIngest::new(&names, tiny_config(1));
        let mut bytes = write_checkpoint(&engine, 0, &[]);
        // The version u32 sits right after the length-prefixed magic.
        let at = 8 + CHECKPOINT_MAGIC.len();
        bytes[at] = 9;
        match read_checkpoint(&names, tiny_config(1), &bytes) {
            Err(SnapError::VersionMismatch { found: 9, expected: 1 }) => {}
            other => panic!("expected a version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_and_fingerprint_are_refused() {
        let names = ["a", "b"];
        let engine = ShardedIngest::new(&names, tiny_config(2));
        let bytes = write_checkpoint(&engine, 0, &[]);
        let mut wrong = bytes.clone();
        wrong[8] ^= 0xFF;
        assert!(matches!(
            read_checkpoint(&names, tiny_config(2), &wrong),
            Err(SnapError::BadMagic)
        ));
        // Same bytes, different shard count: fingerprint mismatch.
        assert!(read_checkpoint(&names, tiny_config(3), &bytes).is_err());
        // Different signal names: fingerprint mismatch.
        assert!(read_checkpoint(&["a", "c"], tiny_config(2), &bytes).is_err());
    }

    #[test]
    fn migrated_vehicle_stays_migrated_after_restore() {
        let names = ["a", "b"];
        let mut engine = ShardedIngest::new(&names, tiny_config(4));
        let _ = engine.ingest_batch(items(200, 2));
        let v = 1u32;
        let home = engine.shard_of(v);
        let target = (home + 1) % 4;
        assert!(engine.migrate_vehicle(v, target));
        assert_eq!(engine.shard_of(v), target);
        assert_eq!(engine.migration_stats().moves, 1);
        let bytes = write_checkpoint(&engine, 200, &[]);
        let restored = read_checkpoint(&names, tiny_config(4), &bytes).expect("restore");
        assert_eq!(restored.engine.shard_of(v), target, "override survives the checkpoint");
        assert_eq!(restored.engine.migration_stats().moves, 1);
    }
}

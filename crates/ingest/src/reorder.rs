//! Bounded per-vehicle reorder buffer: re-sequences out-of-order arrivals
//! within a lateness horizon, drops exact duplicates, and degrades
//! gracefully (counted, state-preserving) on everything else.
//!
//! # Release rule and the equivalence guarantee
//!
//! The buffer holds arrivals sorted by their canonical key and releases an
//! item once the **watermark** — the maximum event timestamp seen so far
//! minus the horizon `L` — passes it. For any arrival sequence in which
//! every item is delayed by strictly less than `L` from its event time,
//! this yields exactly the sorted clean sequence: when an item with event
//! time `b` is released, the releasing watermark-driver arrived carrying
//! timestamp `>= b + L`, so any not-yet-arrived item with event time `t`
//! must have arrival position `> t + L - L = t >= b` — nothing earlier
//! than `b` can still be in flight. That argument is what makes the
//! engine's headline contract ("dirty stream in, byte-identical alarms
//! out") a theorem rather than a hope, and the proptests in
//! `tests/props.rs` check it mechanically.
//!
//! # Bounded memory
//!
//! `capacity` caps the buffer. On overflow the oldest item is force-
//! released (counted in [`ReorderStats::forced_releases`]); ordering can
//! then suffer, but memory cannot grow without bound — graceful
//! degradation over correctness-at-any-cost.

use navarchos_stat::{SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// Canonical ordering key of a stream element: event time, then a rank
/// that puts maintenance markers before telemetry records at equal
/// timestamps (matching `replay_stream`'s event-before-record contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeqKey {
    /// Event timestamp (epoch seconds).
    pub timestamp: i64,
    /// Tie-break rank at equal timestamps (0 = maintenance, 1 = record).
    pub rank: u8,
}

/// Items a [`ReorderBuffer`] can sequence.
pub trait Sequenced {
    /// The item's canonical ordering key.
    fn key(&self) -> SeqKey;

    /// Bitwise payload equality — used to tell an exact duplicate from a
    /// conflicting rewrite of the same key. Implementations must compare
    /// floats by bit pattern (`f64::to_bits`), not `==`, so NaN payloads
    /// still deduplicate.
    fn identical(&self, other: &Self) -> bool;
}

/// What [`ReorderBuffer::push`] did with an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Stored (and possibly released downstream items). `reordered` is
    /// true when the item arrived after one with a later key.
    Accepted {
        /// True when this arrival was out of order.
        reordered: bool,
    },
    /// Exact duplicate of a buffered or recently released item; dropped.
    Duplicate,
    /// Arrived beyond the lateness horizon (its key is at or before the
    /// last released key and it is not a known duplicate); dropped
    /// without touching downstream state.
    LateDropped,
    /// Same key as a buffered item but a different payload; rejected so
    /// the buffered original wins. The caller dead-letters it.
    Conflict,
}

/// Counters accumulated by one buffer. The engine aggregates these across
/// vehicles and mirrors them into the `ingest.*` obs counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Items accepted into the buffer.
    pub accepted: u64,
    /// Accepted items that arrived out of order.
    pub reordered: u64,
    /// Exact duplicates dropped.
    pub duplicates: u64,
    /// Items dropped for arriving beyond the horizon.
    pub late_dropped: u64,
    /// Same-key/different-payload rejections.
    pub conflicts: u64,
    /// Items released early because the buffer hit capacity.
    pub forced_releases: u64,
}

/// Bounded reorder buffer over one vehicle's arrival stream. See the
/// module docs for the release rule and its equivalence guarantee.
#[derive(Debug)]
pub struct ReorderBuffer<T: Sequenced> {
    horizon: i64,
    capacity: usize,
    /// Buffered items, sorted ascending by key.
    buf: VecDeque<T>,
    /// Maximum event timestamp observed (drives the watermark).
    max_ts: Option<i64>,
    /// Key of the most recently released item.
    last_released: Option<SeqKey>,
    /// Keys of recently released items, newest last, bounded by
    /// `capacity`. Classifies arrivals at or before `last_released`:
    /// in the ring ⇒ duplicate of a released item, else genuinely late.
    recent: VecDeque<SeqKey>,
    stats: ReorderStats,
}

impl<T: Sequenced> ReorderBuffer<T> {
    /// Creates a buffer with the given lateness `horizon` (seconds) and
    /// item `capacity` (≥ 1).
    pub fn new(horizon: i64, capacity: usize) -> Self {
        assert!(horizon >= 0, "lateness horizon must be non-negative");
        assert!(capacity >= 1, "capacity must hold at least one item");
        ReorderBuffer {
            horizon,
            capacity,
            buf: VecDeque::new(),
            max_ts: None,
            last_released: None,
            recent: VecDeque::new(),
            stats: ReorderStats::default(),
        }
    }

    /// Offers one arrival. Items whose watermark has passed are appended
    /// to `out` in canonical order.
    pub fn push(&mut self, item: T, out: &mut Vec<T>) -> PushOutcome {
        let key = item.key();
        if let Some(last) = self.last_released {
            if key <= last {
                // Either way the item is dropped; the ring only decides
                // which counter it lands in, so a ring miss on a true
                // duplicate (evicted entry) misclassifies a count, never
                // corrupts the released sequence.
                return if self.recent.contains(&key) {
                    self.stats.duplicates += 1;
                    PushOutcome::Duplicate
                } else {
                    self.stats.late_dropped += 1;
                    PushOutcome::LateDropped
                };
            }
        }
        match self.buf.binary_search_by(|x| x.key().cmp(&key)) {
            Ok(pos) => {
                if self.buf.get(pos).is_some_and(|held| held.identical(&item)) {
                    self.stats.duplicates += 1;
                    PushOutcome::Duplicate
                } else {
                    self.stats.conflicts += 1;
                    PushOutcome::Conflict
                }
            }
            Err(pos) => {
                let reordered = self.max_ts.is_some_and(|m| key.timestamp < m);
                self.stats.accepted += 1;
                if reordered {
                    self.stats.reordered += 1;
                }
                self.buf.insert(pos, item);
                self.max_ts = Some(self.max_ts.map_or(key.timestamp, |m| m.max(key.timestamp)));
                self.drain_ready(out);
                PushOutcome::Accepted { reordered }
            }
        }
    }

    /// Releases everything still buffered (end of stream).
    pub fn flush_into(&mut self, out: &mut Vec<T>) {
        while let Some(item) = self.buf.pop_front() {
            self.release(item, out);
        }
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ReorderStats {
        self.stats
    }

    /// The current release watermark in event-time seconds (maximum
    /// observed timestamp minus the horizon); `None` before any arrival.
    /// Items at or before the watermark are released by the next drain.
    pub fn watermark(&self) -> Option<i64> {
        self.max_ts.map(|m| m - self.horizon)
    }

    fn drain_ready(&mut self, out: &mut Vec<T>) {
        if let Some(w) = self.watermark() {
            while self.buf.front().is_some_and(|f| f.key().timestamp <= w) {
                let Some(item) = self.buf.pop_front() else { break };
                self.release(item, out);
            }
        }
        while self.buf.len() > self.capacity {
            let Some(item) = self.buf.pop_front() else { break };
            self.stats.forced_releases += 1;
            self.release(item, out);
        }
    }

    /// Appends the buffer's full mutable state to a checkpoint writer.
    /// Items are serialised through `put_item` because the element type is
    /// the caller's (the engine wraps stream items with arrival stamps the
    /// buffer knows nothing about). `horizon` and `capacity` are config,
    /// not state: the restoring side reconstructs them and
    /// [`ReorderBuffer::read_state_with`] only fills in what evolved.
    pub fn write_state_with(
        &self,
        w: &mut SnapWriter,
        mut put_item: impl FnMut(&mut SnapWriter, &T),
    ) {
        w.put_usize(self.buf.len());
        for item in &self.buf {
            put_item(w, item);
        }
        w.put_opt_i64(self.max_ts);
        match self.last_released {
            None => w.put_bool(false),
            Some(k) => {
                w.put_bool(true);
                w.put_i64(k.timestamp);
                w.put_u8(k.rank);
            }
        }
        w.put_usize(self.recent.len());
        for k in &self.recent {
            w.put_i64(k.timestamp);
            w.put_u8(k.rank);
        }
        w.put_u64(self.stats.accepted);
        w.put_u64(self.stats.reordered);
        w.put_u64(self.stats.duplicates);
        w.put_u64(self.stats.late_dropped);
        w.put_u64(self.stats.conflicts);
        w.put_u64(self.stats.forced_releases);
    }

    /// Restores state written by [`ReorderBuffer::write_state_with`] into
    /// a freshly constructed buffer (same horizon/capacity). Errors — and
    /// leaves `self` untouched in an unspecified but valid state — on any
    /// structural mismatch; never panics.
    pub fn read_state_with(
        &mut self,
        r: &mut SnapReader<'_>,
        mut get_item: impl FnMut(&mut SnapReader<'_>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        let n = r.get_len(1)?;
        if n > self.capacity {
            return Err(SnapError::Corrupt("reorder buffer larger than its capacity"));
        }
        let mut buf = VecDeque::with_capacity(n);
        for _ in 0..n {
            buf.push_back(get_item(r)?);
        }
        if !buf.iter().zip(buf.iter().skip(1)).all(|(a, b)| a.key() <= b.key()) {
            return Err(SnapError::Corrupt("reorder buffer items out of order"));
        }
        let max_ts = r.get_opt_i64()?;
        let last_released = if r.get_bool()? {
            Some(SeqKey { timestamp: r.get_i64()?, rank: r.get_u8()? })
        } else {
            None
        };
        let n_recent = r.get_len(9)?;
        if n_recent > self.capacity {
            return Err(SnapError::Corrupt("reorder recent-ring larger than its capacity"));
        }
        let mut recent = VecDeque::with_capacity(n_recent);
        for _ in 0..n_recent {
            recent.push_back(SeqKey { timestamp: r.get_i64()?, rank: r.get_u8()? });
        }
        let stats = ReorderStats {
            accepted: r.get_u64()?,
            reordered: r.get_u64()?,
            duplicates: r.get_u64()?,
            late_dropped: r.get_u64()?,
            conflicts: r.get_u64()?,
            forced_releases: r.get_u64()?,
        };
        self.buf = buf;
        self.max_ts = max_ts;
        self.last_released = last_released;
        self.recent = recent;
        self.stats = stats;
        Ok(())
    }

    fn release(&mut self, item: T, out: &mut Vec<T>) {
        let key = item.key();
        self.last_released = Some(key);
        self.recent.push_back(key);
        while self.recent.len() > self.capacity {
            self.recent.pop_front();
        }
        out.push(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Item(i64, u64);

    impl Sequenced for Item {
        fn key(&self) -> SeqKey {
            SeqKey { timestamp: self.0, rank: 1 }
        }
        fn identical(&self, other: &Self) -> bool {
            self == other
        }
    }

    fn run(buffer: &mut ReorderBuffer<Item>, arrivals: &[Item]) -> Vec<Item> {
        let mut out = Vec::new();
        for a in arrivals {
            buffer.push(a.clone(), &mut out);
        }
        buffer.flush_into(&mut out);
        out
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut b = ReorderBuffer::new(120, 16);
        let items: Vec<Item> = (0..10).map(|i| Item(i * 60, i as u64)).collect();
        let out = run(&mut b, &items);
        assert_eq!(out, items);
        assert_eq!(b.stats().reordered, 0);
        assert_eq!(b.stats().late_dropped, 0);
    }

    #[test]
    fn within_horizon_swap_is_resequenced() {
        let mut b = ReorderBuffer::new(120, 16);
        let out = run(&mut b, &[Item(0, 0), Item(120, 2), Item(60, 1), Item(180, 3)]);
        assert_eq!(out, vec![Item(0, 0), Item(60, 1), Item(120, 2), Item(180, 3)]);
        assert_eq!(b.stats().reordered, 1);
    }

    #[test]
    fn duplicate_in_buffer_and_after_release_both_drop() {
        let mut b = ReorderBuffer::new(60, 16);
        let mut out = Vec::new();
        assert_eq!(b.push(Item(0, 7), &mut out), PushOutcome::Accepted { reordered: false });
        assert_eq!(b.push(Item(0, 7), &mut out), PushOutcome::Duplicate);
        // Advance far enough to release t=0, then duplicate it again.
        b.push(Item(120, 8), &mut out);
        assert_eq!(out, vec![Item(0, 7)]);
        assert_eq!(b.push(Item(0, 7), &mut out), PushOutcome::Duplicate);
        assert_eq!(b.stats().duplicates, 2);
    }

    #[test]
    fn beyond_horizon_arrival_is_late_dropped() {
        let mut b = ReorderBuffer::new(60, 16);
        let mut out = Vec::new();
        b.push(Item(0, 0), &mut out);
        b.push(Item(120, 1), &mut out); // watermark 60 → releases t=0
        b.push(Item(240, 2), &mut out); // watermark 180 → releases t=120
        assert_eq!(out.len(), 2);
        // t=60 was never seen; t=120 is already released downstream, so
        // re-sequencing it is impossible → counted and skipped.
        assert_eq!(b.push(Item(60, 99), &mut out), PushOutcome::LateDropped);
        assert_eq!(b.stats().late_dropped, 1);
        // Released sequence is unaffected.
        b.flush_into(&mut out);
        assert_eq!(out, vec![Item(0, 0), Item(120, 1), Item(240, 2)]);
    }

    #[test]
    fn straggler_after_watermark_but_before_any_later_release_is_recovered() {
        // Watermark passing an item's time is not by itself fatal: as long
        // as nothing *later* was released, the straggler still slots in.
        let mut b = ReorderBuffer::new(60, 16);
        let mut out = Vec::new();
        b.push(Item(0, 0), &mut out);
        b.push(Item(300, 1), &mut out); // watermark 240 → releases t=0 only
        assert_eq!(
            b.push(Item(120, 2), &mut out),
            PushOutcome::Accepted { reordered: true },
            "t=120 is past the watermark but after the last release"
        );
        b.flush_into(&mut out);
        assert_eq!(out, vec![Item(0, 0), Item(120, 2), Item(300, 1)]);
    }

    #[test]
    fn conflicting_payload_is_rejected_and_original_wins() {
        let mut b = ReorderBuffer::new(600, 16);
        let mut out = Vec::new();
        b.push(Item(0, 1), &mut out);
        assert_eq!(b.push(Item(0, 2), &mut out), PushOutcome::Conflict);
        b.flush_into(&mut out);
        assert_eq!(out, vec![Item(0, 1)]);
        assert_eq!(b.stats().conflicts, 1);
    }

    #[test]
    fn capacity_forces_oldest_out() {
        let mut b = ReorderBuffer::new(i64::MAX / 2, 4);
        let items: Vec<Item> = (0..10).map(|i| Item(i, i as u64)).collect();
        let out = run(&mut b, &items);
        // Huge horizon means nothing releases by watermark; capacity must.
        assert_eq!(out, items, "in-order input stays in order even when forced");
        assert_eq!(b.stats().forced_releases, 6);
    }

    #[test]
    fn maintenance_rank_sorts_before_record_at_equal_time() {
        #[derive(Debug, Clone, PartialEq)]
        struct Ranked(i64, u8);
        impl Sequenced for Ranked {
            fn key(&self) -> SeqKey {
                SeqKey { timestamp: self.0, rank: self.1 }
            }
            fn identical(&self, other: &Self) -> bool {
                self == other
            }
        }
        let mut b = ReorderBuffer::new(60, 16);
        let mut out = Vec::new();
        b.push(Ranked(60, 1), &mut out); // record first on the wire
        b.push(Ranked(60, 0), &mut out); // maintenance same second
        b.flush_into(&mut out);
        assert_eq!(out, vec![Ranked(60, 0), Ranked(60, 1)]);
    }
}

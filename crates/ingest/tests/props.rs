//! Property-based tests for the ingest substrate: the `ReorderBuffer`
//! equivalence and lateness guarantees, `ShardRouter` totality, and the
//! end-to-end alarm-equivalence contract on a synthetic two-signal
//! pipeline.
//!
//! The generative scheme mirrors the formal statement in
//! `src/reorder.rs`: arrivals are the clean sequence displaced by
//! per-item jitter drawn strictly below the horizon (stable-sorted by
//! arrival key), optionally salted with exact duplicates that get their
//! own jitter. Under exactly those preconditions the buffer must release
//! the clean sequence verbatim — not approximately, verbatim.

use navarchos_core::pipeline::{replay_stream, PipelineConfig};
use navarchos_core::{DetectorKind, TransformKind};
use navarchos_fleetsim::{StreamBody, StreamItem};
use navarchos_ingest::{
    IngestConfig, PushOutcome, ReorderBuffer, SeqKey, Sequenced, ShardRouter, ShardedIngest,
};
use navarchos_tsframe::{FilterSpec, Frame};
use proptest::prelude::*;

const HORIZON: i64 = 600;
const STEP: i64 = 60;

/// Minimal sequenced item: timestamp + distinguishing payload.
#[derive(Debug, Clone, PartialEq)]
struct Item {
    ts: i64,
    payload: u64,
}

impl Sequenced for Item {
    fn key(&self) -> SeqKey {
        SeqKey { timestamp: self.ts, rank: 1 }
    }
    fn identical(&self, other: &Self) -> bool {
        self == other
    }
}

/// Builds the arrival order: each clean item displaced by its jitter,
/// duplicates (where marked) displaced by a second jitter, stable-sorted
/// by arrival key. Returns (arrivals, n_duplicates).
fn arrival_order(
    clean: &[Item],
    jitters: &[i64],
    dup_jitters: &[i64],
    dup_marks: &[u8],
) -> (Vec<Item>, usize) {
    let mut keyed: Vec<(i64, usize, Item)> = Vec::new();
    let mut seq = 0usize;
    let mut dups = 0usize;
    for (i, item) in clean.iter().enumerate() {
        keyed.push((item.ts + jitters[i % jitters.len()], seq, item.clone()));
        seq += 1;
        if dup_marks[i % dup_marks.len()] < 40 {
            keyed.push((item.ts + dup_jitters[i % dup_jitters.len()], seq, item.clone()));
            seq += 1;
            dups += 1;
        }
    }
    keyed.sort_by_key(|&(k, s, _)| (k, s));
    (keyed.into_iter().map(|(_, _, it)| it).collect(), dups)
}

proptest! {
    #[test]
    fn within_horizon_permutation_plus_duplicates_release_sorted(
        n in 10usize..80,
        jitters in prop::collection::vec(0i64..HORIZON, 80),
        dup_jitters in prop::collection::vec(0i64..HORIZON, 80),
        dup_marks in prop::collection::vec(0u8..100, 80),
    ) {
        let clean: Vec<Item> = (0..n).map(|i| Item { ts: i as i64 * STEP, payload: i as u64 }).collect();
        let (arrivals, dups) = arrival_order(&clean, &jitters, &dup_jitters, &dup_marks);
        let mut buffer = ReorderBuffer::new(HORIZON, 128);
        let mut out = Vec::new();
        for a in arrivals {
            buffer.push(a, &mut out);
        }
        buffer.flush_into(&mut out);
        prop_assert_eq!(&out, &clean, "released sequence must equal the sorted clean input");
        let stats = buffer.stats();
        prop_assert_eq!(stats.accepted, n as u64);
        prop_assert_eq!(stats.duplicates, dups as u64, "every duplicate is classified as such");
        prop_assert_eq!(stats.late_dropped, 0);
        prop_assert_eq!(stats.conflicts, 0);
        prop_assert_eq!(stats.forced_releases, 0);
    }

    #[test]
    fn beyond_horizon_straggler_is_counted_and_sequence_unaffected(
        n in 25usize..80,
        jitters in prop::collection::vec(0i64..HORIZON, 80),
        straggler_slot in 0usize..1000,
        straggler_offset in 1i64..STEP,
    ) {
        let clean: Vec<Item> = (0..n).map(|i| Item { ts: i as i64 * STEP, payload: i as u64 }).collect();
        let (mut arrivals, _) = arrival_order(&clean, &jitters, &[0], &[100]);
        // A never-seen timestamp near the stream start, injected late
        // enough that the buffer has released well past it: position
        // >= 20 means watermark >= 20*60 - (600 + 600) jitter slack > ts.
        let pos = 20 + straggler_slot % (arrivals.len() - 20);
        let straggler = Item { ts: straggler_offset, payload: 999_999 };
        arrivals.insert(pos, straggler.clone());

        let mut buffer = ReorderBuffer::new(HORIZON, 128);
        let mut out = Vec::new();
        let mut straggler_outcome = None;
        for a in arrivals {
            let was_straggler = a == straggler;
            let outcome = buffer.push(a, &mut out);
            if was_straggler {
                straggler_outcome = Some(outcome);
            }
        }
        buffer.flush_into(&mut out);
        prop_assert_eq!(straggler_outcome, Some(PushOutcome::LateDropped));
        prop_assert_eq!(buffer.stats().late_dropped, 1);
        prop_assert_eq!(&out, &clean, "the straggler must not perturb the released sequence");
    }

    #[test]
    fn router_is_total_and_deterministic(
        n_shards in 1usize..12,
        vehicles in prop::collection::vec(0u32..5000, 1..64),
    ) {
        let router = ShardRouter::new(n_shards);
        for &v in &vehicles {
            let s = router.route(v);
            prop_assert!(s < n_shards);
            prop_assert_eq!(s, router.route(v));
        }
    }

    #[test]
    fn engine_alarms_equal_sorted_replay_on_synthetic_vehicle(
        phase in 0.0f64..3.0,
        amp in 1.0f64..4.0,
        jitters in prop::collection::vec(0i64..HORIZON, 128),
        dup_jitters in prop::collection::vec(0i64..HORIZON, 128),
        dup_marks in prop::collection::vec(0u8..100, 128),
        n_shards in 1usize..4,
    ) {
        // One synthetic vehicle, two correlated signals, a mid-stream
        // service event; enough records for the tiny pipeline to detect.
        let n = 240usize;
        let names = ["a", "b"];
        let mut frame = Frame::new(&names);
        let mut items = Vec::new();
        for i in 0..n {
            let t = i as i64 * STEP;
            let x = (i as f64 * 0.31 + phase).sin() * amp + 10.0;
            // Correlation break in the last third: the detector must fire
            // so the equivalence check compares non-empty alarm lists.
            let y = if i < 160 { 2.0 * x + 1.0 } else { 21.0 - (i as f64 * 0.77).cos() * amp };
            frame.push_row(t, &[x, y]);
            items.push(StreamItem { vehicle: 3, timestamp: t, body: StreamBody::Record(vec![x, y]) });
        }
        let maintenance = vec![(40 * STEP, false)];
        items.push(StreamItem {
            vehicle: 3,
            timestamp: 40 * STEP,
            body: StreamBody::Maintenance { is_repair: false },
        });
        items.sort_by_key(|i| (i.timestamp, i.body.rank()));

        let mut cfg = IngestConfig::paper_default(n_shards);
        cfg.horizon_s = HORIZON;
        cfg.pipeline = PipelineConfig {
            window: 8,
            stride: 2,
            profile_length: 10,
            holdout: 8,
            filter: FilterSpec::default(),
            ..PipelineConfig::paper_default(TransformKind::Correlation, DetectorKind::ClosestPair)
        };
        let expected = replay_stream(&frame, &maintenance, cfg.pipeline.clone());

        // Jitter + duplicate the items (stream-item variant of
        // arrival_order; same displacement-below-horizon precondition).
        let mut keyed: Vec<(i64, usize, StreamItem)> = Vec::new();
        let mut seq = 0usize;
        for (i, item) in items.iter().enumerate() {
            keyed.push((item.timestamp + jitters[i % jitters.len()], seq, item.clone()));
            seq += 1;
            if dup_marks[i % dup_marks.len()] < 25 {
                keyed.push((item.timestamp + dup_jitters[i % dup_jitters.len()], seq, item.clone()));
                seq += 1;
            }
        }
        keyed.sort_by_key(|&(k, s, _)| (k, s));
        let dirty: Vec<StreamItem> = keyed.into_iter().map(|(_, _, it)| it).collect();

        let mut engine = ShardedIngest::new(&names, cfg);
        let mut alarms = engine.ingest_batch(dirty);
        alarms.extend(engine.finish());
        let got: Vec<_> = alarms.into_iter().map(|fa| fa.alarm).collect();
        prop_assert_eq!(&got, &expected, "engine must match sorted replay byte-for-byte");
        prop_assert!(!got.is_empty(), "the synthetic break must raise alarms");
        prop_assert_eq!(engine.stats().dead_letter, 0);
    }
}

// ---- ReorderBuffer checkpoint round-trip (xtask L4 kernel) --------------

proptest! {
    /// Checkpoint contract for the [`ReorderBuffer`]: cut the arrival
    /// sequence anywhere — including with items still in flight — snapshot
    /// through the item-codec closures, restore into a fresh buffer, and
    /// the remainder of the stream releases **identically**: same released
    /// items, same final stats, byte-identical re-snapshot.
    #[test]
    fn reorder_buffer_snapshot_round_trip_is_release_identical(
        n in 10usize..80,
        jitters in prop::collection::vec(0i64..HORIZON, 80),
        dup_jitters in prop::collection::vec(0i64..HORIZON, 80),
        dup_marks in prop::collection::vec(0u8..100, 80),
        cut_sel in 0usize..1_000_000,
    ) {
        use navarchos_stat::{SnapReader, SnapWriter};

        let clean: Vec<Item> =
            (0..n).map(|i| Item { ts: i as i64 * STEP, payload: i as u64 }).collect();
        let (arrivals, _) = arrival_order(&clean, &jitters, &dup_jitters, &dup_marks);
        let cut = cut_sel % (arrivals.len() + 1);

        let write_item = |w: &mut SnapWriter, it: &Item| {
            w.put_i64(it.ts);
            w.put_u64(it.payload);
        };
        let read_item = |r: &mut SnapReader<'_>| {
            Ok(Item { ts: r.get_i64()?, payload: r.get_u64()? })
        };

        let mut live = ReorderBuffer::new(HORIZON, 128);
        let mut live_out = Vec::new();
        for a in &arrivals[..cut] {
            live.push(a.clone(), &mut live_out);
        }

        let mut w = SnapWriter::new();
        live.write_state_with(&mut w, write_item);
        let bytes = w.into_bytes();
        let mut restored: ReorderBuffer<Item> = ReorderBuffer::new(HORIZON, 128);
        let mut r = SnapReader::new(&bytes);
        restored.read_state_with(&mut r, read_item).expect("buffer snapshot must restore");
        r.finish().expect("buffer snapshot must have no trailing bytes");

        let mut restored_out = Vec::new();
        for a in &arrivals[cut..] {
            prop_assert_eq!(
                live.push(a.clone(), &mut live_out),
                restored.push(a.clone(), &mut restored_out),
                "push outcome diverged after restore"
            );
        }
        live.flush_into(&mut live_out);
        restored.flush_into(&mut restored_out);
        prop_assert_eq!(&live_out[..], &clean[..], "the wounded run still releases sorted");
        // The restored buffer's releases are the tail of the full run.
        prop_assert_eq!(
            &restored_out[..],
            &live_out[live_out.len() - restored_out.len()..],
            "restored buffer must release the same tail"
        );
        // Stats ride in the snapshot, so after the shared remainder the
        // two buffers' counters are identical, not merely consistent.
        prop_assert_eq!(live.stats(), restored.stats());
    }

    /// Buffer snapshots with broken invariants — out-of-order in-flight
    /// items, lengths beyond capacity — are refused, never trusted.
    #[test]
    fn reorder_buffer_rejects_malformed_snapshots(
        n in 2usize..40,
        trunc_sel in 0usize..1_000_000,
    ) {
        use navarchos_stat::{SnapReader, SnapWriter};

        let write_item = |w: &mut SnapWriter, it: &Item| {
            w.put_i64(it.ts);
            w.put_u64(it.payload);
        };
        let read_item = |r: &mut SnapReader<'_>| {
            Ok(Item { ts: r.get_i64()?, payload: r.get_u64()? })
        };

        let mut buffer = ReorderBuffer::new(HORIZON, 128);
        let mut out = Vec::new();
        for i in 0..n {
            buffer.push(Item { ts: i as i64 * STEP, payload: i as u64 }, &mut out);
        }
        let mut w = SnapWriter::new();
        buffer.write_state_with(&mut w, write_item);
        let bytes = w.into_bytes();

        // Any truncation is an error, never a panic.
        let trunc_at = trunc_sel % bytes.len();
        let mut fresh: ReorderBuffer<Item> = ReorderBuffer::new(HORIZON, 128);
        let mut r = SnapReader::new(&bytes[..trunc_at]);
        prop_assert!(
            fresh.read_state_with(&mut r, read_item).and_then(|()| r.finish()).is_err(),
            "a truncated buffer snapshot must be refused"
        );

        // A capacity smaller than the in-flight count is a refusal too.
        let mut tiny: ReorderBuffer<Item> = ReorderBuffer::new(HORIZON, 1);
        let mut r = SnapReader::new(&bytes);
        if buffer.len() > 1 {
            prop_assert!(
                tiny.read_state_with(&mut r, read_item).is_err(),
                "in-flight items beyond capacity must be refused"
            );
        }
    }
}

// ---- health state machine (ops plane) ----------------------------------

proptest! {
    /// Whatever target sequence the rates produce, the FSM only ever moves
    /// one severity level per observation — `Ok` can never jump straight
    /// to `Stalled` — and every reported transition matches the actual
    /// state evolution.
    #[test]
    fn health_fsm_never_skips_levels(
        targets in prop::collection::vec(0u8..3, 1..200),
        worsen in 1u32..4,
        improve in 1u32..4,
    ) {
        use navarchos_ingest::{HealthFsm, HealthPolicy, HealthState};
        let to_state = |v: u8| match v {
            0 => HealthState::Ok,
            1 => HealthState::Degraded,
            _ => HealthState::Stalled,
        };
        let policy = HealthPolicy { worsen_ticks: worsen, improve_ticks: improve, ..HealthPolicy::default() };
        let mut fsm = HealthFsm::new(policy);
        let mut prev = fsm.state();
        prop_assert_eq!(prev, HealthState::Ok, "machines start healthy");
        for &t in &targets {
            let transition = fsm.observe(to_state(t));
            let now = fsm.state();
            if let Some((from, to)) = transition {
                prop_assert_eq!(from, prev, "transition must start at the previous state");
                prop_assert_eq!(to, now, "transition must land on the current state");
                let gap = (from.gauge_value() as i64 - to.gauge_value() as i64).abs();
                prop_assert_eq!(gap, 1, "exactly one severity level per step: {:?}->{:?}", from, to);
            } else {
                prop_assert_eq!(now, prev, "no transition reported, no state change allowed");
            }
            prev = now;
        }
    }

    /// Hysteresis: fewer than `worsen_ticks` consecutive worse
    /// observations never change the state, no matter how they are
    /// interleaved with equal-state observations.
    #[test]
    fn health_fsm_hysteresis_holds(worsen in 2u32..5, bursts in prop::collection::vec(1u32..5, 1..20)) {
        use navarchos_ingest::{HealthFsm, HealthPolicy, HealthState};
        let policy = HealthPolicy { worsen_ticks: worsen, improve_ticks: 3, ..HealthPolicy::default() };
        let mut fsm = HealthFsm::new(policy);
        for &burst in &bursts {
            // A burst shorter than the threshold, then a resetting Ok tick.
            for _ in 0..burst.min(worsen - 1) {
                prop_assert_eq!(fsm.observe(HealthState::Degraded), None);
            }
            prop_assert_eq!(fsm.observe(HealthState::Ok), None);
            prop_assert_eq!(fsm.state(), HealthState::Ok, "sub-threshold bursts must not flip the state");
        }
    }
}

//! Deterministic golden end-to-end test: a seeded fleetsim fleet,
//! interleaved into one stream and salted with lossless dirt (within-
//! horizon reordering + exact duplicates), must produce **byte-identical**
//! per-vehicle alarms through the sharded ingest engine as through sorted
//! single-vehicle replay (`replay_interleaved`).
//!
//! Everything is pinned: the fleet seed, the dirt seed, the shard counts.
//! No clocks, no test-local RNG — a failure here is a real equivalence
//! break, never flake.

use std::collections::BTreeMap;

use navarchos_core::pipeline::{replay_interleaved, Alarm};
use navarchos_fleetsim::{
    dirty_stream, interleave_fleet, DirtyConfig, FleetConfig, FleetData, StreamItem,
};
use navarchos_ingest::{read_checkpoint, write_checkpoint, IngestConfig, ShardedIngest};

/// The committed scenario seeds.
const FLEET_SEED: u64 = 42;
const DIRT_SEED: u64 = 1234;

fn fleet() -> FleetData {
    FleetConfig::small(FLEET_SEED).generate()
}

/// Per-vehicle maintenance logs in `replay_stream`'s `(timestamp,
/// is_repair)` shape.
fn maintenance_logs(fleet: &FleetData) -> Vec<Vec<(i64, bool)>> {
    fleet
        .vehicles
        .iter()
        .map(|vd| {
            vd.events
                .iter()
                .filter(|e| e.recorded && e.kind.is_maintenance())
                .map(|e| (e.timestamp, e.kind == navarchos_fleetsim::EventKind::Repair))
                .collect()
        })
        .collect()
}

/// Sorted replay oracle: vehicle id → alarms.
fn oracle(fleet: &FleetData, cfg: &IngestConfig) -> BTreeMap<u32, Vec<Alarm>> {
    let logs = maintenance_logs(fleet);
    let vehicles: Vec<_> =
        fleet.vehicles.iter().zip(&logs).map(|(vd, log)| (vd.frame.clone(), log.clone())).collect();
    let per_vehicle = replay_interleaved(&vehicles, &cfg.pipeline);
    fleet
        .vehicles
        .iter()
        .map(|vd| vd.id.0)
        .zip(per_vehicle)
        .filter(|(_, alarms)| !alarms.is_empty())
        .collect()
}

/// Engine run: vehicle id → alarms, plus the engine for stats assertions.
fn engine_run(
    fleet: &FleetData,
    stream: Vec<StreamItem>,
    cfg: &IngestConfig,
) -> (BTreeMap<u32, Vec<Alarm>>, ShardedIngest) {
    let names = fleet.vehicles[0].frame.names().to_vec();
    let mut engine = ShardedIngest::new(&names, cfg.clone());
    let mut alarms = engine.ingest_batch(stream);
    alarms.extend(engine.finish());
    let mut by_vehicle: BTreeMap<u32, Vec<Alarm>> = BTreeMap::new();
    for fa in alarms {
        by_vehicle.entry(fa.vehicle).or_default().push(fa.alarm);
    }
    (by_vehicle, engine)
}

#[test]
fn clean_stream_matches_sorted_replay() {
    let fleet = fleet();
    let cfg = IngestConfig::paper_default(3);
    let expected = oracle(&fleet, &cfg);
    let (got, engine) = engine_run(&fleet, interleave_fleet(&fleet), &cfg);
    assert_eq!(got, expected, "clean interleaved stream must reproduce per-vehicle replay");
    let stats = engine.stats();
    assert_eq!(stats.dead_letter, 0);
    assert_eq!(stats.duplicates, 0);
    assert_eq!(stats.late_dropped, 0);
    assert_eq!(stats.forced_releases, 0);
    assert!(stats.alarms > 0, "the seeded fleet must raise alarms for the test to bite");
}

#[test]
fn dirty_stream_matches_sorted_replay_byte_identical() {
    let fleet = fleet();
    let clean = interleave_fleet(&fleet);
    let dirt = DirtyConfig::reorder_and_dup(DIRT_SEED);
    assert!(dirt.reorder_horizon_s <= IngestConfig::paper_default(1).horizon_s);
    let dirty = dirty_stream(&clean, &dirt);
    assert!(dirty.len() > clean.len(), "dirt must actually add duplicates");

    for n_shards in [1usize, 4] {
        let cfg = IngestConfig::paper_default(n_shards);
        let expected = oracle(&fleet, &cfg);
        let (got, engine) = engine_run(&fleet, dirty.clone(), &cfg);
        assert_eq!(
            got, expected,
            "dirty stream through {n_shards} shard(s) must match sorted replay"
        );
        let stats = engine.stats();
        assert!(stats.reordered > 0, "dirt must actually reorder");
        assert!(stats.duplicates + stats.late_dropped > 0, "duplicates must be dropped");
        assert_eq!(stats.dead_letter, 0, "lossless dirt produces no dead letters");
        assert_eq!(stats.forced_releases, 0, "horizon fits in capacity");
    }
}

#[test]
fn lossy_stream_degrades_gracefully() {
    // Gaps + corruption break equivalence by construction; the contract
    // here is weaker and different: nothing panics, malformed records are
    // counted into the dead-letter sink, and the engine still raises
    // alarms from the surviving data.
    let fleet = fleet();
    let clean = interleave_fleet(&fleet);
    let dirty = dirty_stream(&clean, &DirtyConfig::lossy(DIRT_SEED));
    let cfg = IngestConfig::paper_default(2);
    let (got, engine) = engine_run(&fleet, dirty, &cfg);
    let stats = engine.stats();
    assert!(stats.dead_letter > 0, "corruption must be observed");
    assert!(!engine.dead_letters().is_empty(), "samples are retained");
    assert!(stats.alarms > 0 && !got.is_empty(), "pipelines keep working around the dirt");
}

#[test]
fn beyond_horizon_straggler_never_corrupts_window_state() {
    // Clean stream plus one injected far-late record: the engine must
    // count it in late_dropped and produce alarms identical to the clean
    // run — the straggler cannot perturb any pipeline's window.
    let fleet = fleet();
    let cfg = IngestConfig::paper_default(2);
    let expected = oracle(&fleet, &cfg);

    let clean = interleave_fleet(&fleet);
    let victim = fleet.vehicles[0].id.0;
    // A duplicate of the vehicle's first record, re-arriving mid-stream —
    // days past the horizon. Place it after enough traffic that the
    // vehicle's watermark has long moved on.
    let first = clean.iter().find(|i| i.vehicle == victim).expect("vehicle 0 has records").clone();
    let mut salted = clean.clone();
    let insert_at = salted.len() / 2;
    let mut straggler = first;
    straggler.timestamp += 1; // never-seen timestamp → genuinely late, not a duplicate
    salted.insert(insert_at, straggler);

    let (got, engine) = engine_run(&fleet, salted, &cfg);
    assert_eq!(got, expected, "straggler must not change a single alarm");
    assert_eq!(engine.stats().late_dropped, 1, "straggler is counted");
}

/// Groups a flat fleet-alarm list per vehicle, preserving emission order
/// within each vehicle (batch boundaries permute alarms only *across*
/// vehicles, by shard emission order).
fn group(alarms: Vec<navarchos_ingest::FleetAlarm>) -> BTreeMap<u32, Vec<Alarm>> {
    let mut by_vehicle: BTreeMap<u32, Vec<Alarm>> = BTreeMap::new();
    for fa in alarms {
        by_vehicle.entry(fa.vehicle).or_default().push(fa.alarm);
    }
    by_vehicle
}

/// Bit-exact equality: `Alarm`'s `PartialEq` compares `f64`s by value,
/// which conflates `0.0`/`-0.0`; the checkpoint contract is stronger.
fn assert_bit_identical(got: &BTreeMap<u32, Vec<Alarm>>, expected: &BTreeMap<u32, Vec<Alarm>>) {
    assert_eq!(got, expected);
    for (v, alarms) in got {
        for (a, b) in alarms.iter().zip(&expected[v]) {
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "score bits diverge on vehicle {v}");
            assert_eq!(
                a.threshold.to_bits(),
                b.threshold.to_bits(),
                "threshold bits diverge on vehicle {v}"
            );
        }
    }
}

#[test]
fn checkpoint_mid_replay_resumes_byte_identical_to_oracle() {
    // The committed-seed dirty stream, wounded at three different depths:
    // early (reference windows still filling), midway, and late (most
    // alarms already emitted). Each wound: checkpoint → fresh engine →
    // restore → feed the remainder. Total alarms must equal the sorted-
    // replay oracle bit for bit, and cumulative counters must match the
    // uninterrupted engine's.
    let fleet = fleet();
    let clean = interleave_fleet(&fleet);
    let dirty = dirty_stream(&clean, &DirtyConfig::reorder_and_dup(DIRT_SEED));
    let cfg = IngestConfig::paper_default(3);
    let expected = oracle(&fleet, &cfg);
    let (_, uninterrupted) = engine_run(&fleet, dirty.clone(), &cfg);
    let names = fleet.vehicles[0].frame.names().to_vec();

    for cut in [dirty.len() / 8, dirty.len() / 2, dirty.len() * 7 / 8] {
        let mut first = ShardedIngest::new(&names, cfg.clone());
        let prior = first.ingest_batch(dirty[..cut].to_vec());
        let bytes = write_checkpoint(&first, cut as u64, &prior);
        drop(first);

        let restored =
            read_checkpoint(&names, cfg.clone(), &bytes).expect("golden checkpoint restores");
        assert_eq!(restored.cursor, cut as u64);
        let mut engine = restored.engine;
        let mut alarms = restored.prior_alarms;
        alarms.extend(engine.ingest_batch(dirty[cut..].to_vec()));
        alarms.extend(engine.finish());

        assert_bit_identical(&group(alarms), &expected);
        assert_eq!(engine.stats(), uninterrupted.stats(), "counters must survive the cut at {cut}");
    }
}

#[test]
fn migration_under_load_loses_and_duplicates_no_alarms() {
    // Mid-stream, migrate half the fleet to different shards — drain,
    // snapshot, reroute, restore, exactly the checkpoint codec applied
    // between shards — then keep feeding. Alarms must still equal the
    // oracle bit for bit: nothing lost, nothing duplicated, in-flight
    // reorder-buffer items carried across un-flushed.
    let fleet = fleet();
    let clean = interleave_fleet(&fleet);
    let dirty = dirty_stream(&clean, &DirtyConfig::reorder_and_dup(DIRT_SEED));
    let cfg = IngestConfig::paper_default(4);
    let expected = oracle(&fleet, &cfg);
    let names = fleet.vehicles[0].frame.names().to_vec();

    let mut engine = ShardedIngest::new(&names, cfg.clone());
    let cut = dirty.len() / 2;
    let mut alarms = engine.ingest_batch(dirty[..cut].to_vec());

    let movers: Vec<u32> = fleet.vehicles.iter().map(|vd| vd.id.0).filter(|v| v % 2 == 0).collect();
    assert!(!movers.is_empty(), "the committed fleet must contain even-id vehicles");
    for &v in &movers {
        let home = engine.shard_of(v);
        let target = (home + 1) % 4;
        assert!(engine.migrate_vehicle(v, target), "migration must move an off-home vehicle");
        assert_eq!(engine.shard_of(v), target, "routing override must take effect");
    }
    let migration = engine.migration_stats();
    assert_eq!(migration.moves, movers.len() as u64, "ingest.migration.moves counts every move");
    assert!(
        migration.inflight_items > 0,
        "mid-stream migration must carry in-flight reorder-buffer items \
         (ingest.migration.inflight_items)"
    );

    alarms.extend(engine.ingest_batch(dirty[cut..].to_vec()));
    alarms.extend(engine.finish());
    assert_bit_identical(&group(alarms), &expected);
    assert_eq!(engine.stats().dead_letter, 0, "migration must not dead-letter anything");
}

//! Property-based proof of the checkpoint/restore headline contract:
//! checkpoint the sharded engine at an **arbitrary** record `k` of a
//! dirty stream, restore into a fresh engine, feed the remainder — the
//! combined alarms must be byte-identical (`f64::to_bits` on scores and
//! thresholds) to the uninterrupted run. The cut point, the dirt (jitter
//! + duplicates, same displacement-below-horizon scheme as
//! `tests/props.rs`), and the shard count are all drawn by proptest, so
//! every case is a different mid-stream wound.
//!
//! Also proven here: snapshot → restore → snapshot is byte-stable, and
//! truncated or corrupted checkpoint bytes are a [`SnapError`] — never a
//! panic, never a silently wrong engine (a CRC-32 trailer catches byte
//! flips that the structural validators cannot).

use std::collections::BTreeMap;

use navarchos_core::pipeline::{Alarm, PipelineConfig};
use navarchos_core::{DetectorKind, TransformKind};
use navarchos_fleetsim::{StreamBody, StreamItem};
use navarchos_ingest::{
    read_checkpoint, write_checkpoint, FleetAlarm, IngestConfig, ShardedIngest, SnapError,
};
use navarchos_tsframe::FilterSpec;
use proptest::prelude::*;

const HORIZON: i64 = 600;
const STEP: i64 = 60;
const NAMES: [&str; 2] = ["a", "b"];

fn tiny_config(n_shards: usize) -> IngestConfig {
    let mut cfg = IngestConfig::paper_default(n_shards);
    cfg.horizon_s = HORIZON;
    cfg.pipeline = PipelineConfig {
        window: 8,
        stride: 2,
        profile_length: 10,
        holdout: 8,
        filter: FilterSpec::default(),
        ..PipelineConfig::paper_default(TransformKind::Correlation, DetectorKind::ClosestPair)
    };
    cfg
}

/// Three synthetic vehicles, two correlated signals each, a correlation
/// break in the last third (so alarms fire and the equivalence check
/// bites) and one maintenance event — then jittered and duplicated into
/// a dirty arrival order, every displacement strictly below the horizon.
fn dirty_stream(
    phase: f64,
    amp: f64,
    jitters: &[i64],
    dup_jitters: &[i64],
    dup_marks: &[u8],
) -> Vec<StreamItem> {
    let mut items = Vec::new();
    for v in [3u32, 7, 11] {
        for i in 0..200usize {
            let t = i as i64 * STEP;
            let x = (i as f64 * 0.31 + phase + f64::from(v)).sin() * amp + 10.0;
            let y = if i < 130 { 2.0 * x + 1.0 } else { 21.0 - (i as f64 * 0.77).cos() * amp };
            items.push(StreamItem {
                vehicle: v,
                timestamp: t,
                body: StreamBody::Record(vec![x, y]),
            });
        }
        items.push(StreamItem {
            vehicle: v,
            timestamp: 40 * STEP,
            body: StreamBody::Maintenance { is_repair: false },
        });
    }
    items.sort_by_key(|i| (i.timestamp, i.body.rank()));

    let mut keyed: Vec<(i64, usize, StreamItem)> = Vec::new();
    let mut seq = 0usize;
    for (i, item) in items.iter().enumerate() {
        keyed.push((item.timestamp + jitters[i % jitters.len()], seq, item.clone()));
        seq += 1;
        if dup_marks[i % dup_marks.len()] < 25 {
            keyed.push((item.timestamp + dup_jitters[i % dup_jitters.len()], seq, item.clone()));
            seq += 1;
        }
    }
    keyed.sort_by_key(|&(k, s, _)| (k, s));
    keyed.into_iter().map(|(_, _, it)| it).collect()
}

/// Bit-exact view of an alarm list, grouped per vehicle. Grouping is
/// necessary because batch boundaries reorder alarms *across* vehicles
/// (shard emission order) while preserving order *within* each vehicle.
fn by_vehicle_bits(alarms: &[FleetAlarm]) -> BTreeMap<u32, Vec<(i64, usize, String, u64, u64)>> {
    let mut map: BTreeMap<u32, Vec<_>> = BTreeMap::new();
    for fa in alarms {
        let Alarm { timestamp, channel, ref channel_name, score, threshold } = fa.alarm;
        map.entry(fa.vehicle).or_default().push((
            timestamp,
            channel,
            channel_name.clone(),
            score.to_bits(),
            threshold.to_bits(),
        ));
    }
    map
}

proptest! {
    // 96 cases ≥ the 64 random cut points the acceptance criteria demand,
    // with headroom; each case is two full engine runs plus a round trip.
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline contract, end to end.
    #[test]
    fn checkpoint_at_any_cut_point_resumes_byte_identical(
        phase in 0.0f64..3.0,
        amp in 1.0f64..4.0,
        jitters in prop::collection::vec(0i64..HORIZON, 64),
        dup_jitters in prop::collection::vec(0i64..HORIZON, 64),
        dup_marks in prop::collection::vec(0u8..100, 64),
        cut_sel in 0usize..1_000_000,
        n_shards in 1usize..4,
    ) {
        let stream = dirty_stream(phase, amp, &jitters, &dup_jitters, &dup_marks);
        let cut = cut_sel % (stream.len() + 1);

        // Oracle: the uninterrupted run.
        let mut oracle = ShardedIngest::new(&NAMES, tiny_config(n_shards));
        let mut oracle_alarms = oracle.ingest_batch(stream.clone());
        oracle_alarms.extend(oracle.finish());
        prop_assert!(!oracle_alarms.is_empty(), "the synthetic break must raise alarms");

        // Wounded run: ingest up to the cut, checkpoint, restore into a
        // fresh engine, feed the remainder.
        let mut first = ShardedIngest::new(&NAMES, tiny_config(n_shards));
        let prior = first.ingest_batch(stream[..cut].to_vec());
        let bytes = write_checkpoint(&first, cut as u64, &prior);
        drop(first);

        let restored = read_checkpoint(&NAMES, tiny_config(n_shards), &bytes)
            .expect("a pristine checkpoint must restore");
        prop_assert_eq!(restored.cursor, cut as u64);

        // Snapshot → restore → snapshot is byte-stable.
        let again = write_checkpoint(&restored.engine, restored.cursor, &restored.prior_alarms);
        prop_assert_eq!(&bytes, &again, "re-snapshot of a restored engine must be byte-identical");

        let mut engine = restored.engine;
        let mut alarms = restored.prior_alarms;
        alarms.extend(engine.ingest_batch(stream[cut..].to_vec()));
        alarms.extend(engine.finish());

        prop_assert_eq!(
            by_vehicle_bits(&alarms),
            by_vehicle_bits(&oracle_alarms),
            "restored run diverged from the uninterrupted run at cut {}",
            cut
        );
        prop_assert_eq!(engine.stats(), oracle.stats(), "cumulative counters must survive the cut");
    }

    /// Every truncation of a checkpoint is an error; every single-byte
    /// corruption is an error; neither ever panics.
    #[test]
    fn truncated_or_corrupted_checkpoint_is_an_error_never_a_panic(
        trunc_sel in 0usize..1_000_000,
        flip_sel in 0usize..1_000_000,
        flip_mask in 1u8..=255,
    ) {
        // One deterministic warmed engine per case keeps this cheap; the
        // drawn values choose where to wound the bytes.
        let mut engine = ShardedIngest::new(&NAMES, tiny_config(2));
        let alarms: Vec<FleetAlarm> = engine.ingest_batch(
            (0..120usize)
                .map(|i| {
                    let x = (i as f64 * 0.37).sin() * 3.0 + 10.0;
                    StreamItem {
                        vehicle: i as u32 % 2,
                        timestamp: (i as i64 / 2) * STEP,
                        body: StreamBody::Record(vec![x, 2.0 * x + 1.0]),
                    }
                })
                .collect(),
        );
        let bytes = write_checkpoint(&engine, 120, &alarms);

        let trunc_at = trunc_sel % bytes.len();
        let err = read_checkpoint(&NAMES, tiny_config(2), &bytes[..trunc_at])
            .expect_err("a truncated checkpoint must be refused");
        prop_assert!(
            !matches!(err, SnapError::VersionMismatch { .. }),
            "truncation must not masquerade as a version skew"
        );

        let mut flipped = bytes.clone();
        let flip_at = flip_sel % flipped.len();
        flipped[flip_at] ^= flip_mask;
        read_checkpoint(&NAMES, tiny_config(2), &flipped)
            .expect_err("a corrupted checkpoint must be refused");
    }
}

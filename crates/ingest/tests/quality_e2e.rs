//! End-to-end data-quality telemetry: a seeded fleet stream whose first
//! vehicle drifts mid-replay must light up the whole quality plane —
//! the per-vehicle drift gauge crosses the flag threshold within a bounded
//! number of post-onset records, the victim's shard leaves `Ok`, and the
//! `quality` burn-rate alert fires off the exported counters.
//!
//! This is the test twin of the CI `quality-smoke` job (which asserts the
//! same story over a live scrape endpoint); here everything is in-process
//! and deterministic, so the latency bound can be exact.

use navarchos_fleetsim::{
    dirty_stream, interleave_fleet, CorruptionMode, DirtyConfig, FleetConfig, StreamBody,
};
use navarchos_ingest::{HealthState, IngestConfig, ShardedIngest};
use navarchos_obs as obs;

/// Detection-latency bound, in records of the drifting vehicle: the
/// monitor needs `window/4 = 8` post-onset samples before the rolling
/// window is comparable, so 64 is generous slack on top.
const K_RECORDS: u64 = 64;

#[test]
fn drifting_vehicle_trips_gauges_health_and_burn_rate_alert() {
    obs::set_metrics_enabled(true);

    let fleet = FleetConfig::small(31).generate();
    let victim = fleet.vehicles[0].id.0;
    let clean = interleave_fleet(&fleet);

    // Finite additive drift from halfway: records stay well-formed (no
    // dead letters), so only the drift monitor can see the fault.
    let onset = 0.5;
    let dirt = DirtyConfig {
        seed: 0,
        reorder_prob: 0.0,
        reorder_horizon_s: 0,
        dup_prob: 0.0,
        drop_prob: 0.0,
        corrupt_prob: 0.0,
        targeted: None,
    }
    .with_target(victim, onset, CorruptionMode::Bias(1.0e6));
    let stream = dirty_stream(&clean, &dirt);
    let onset_index = (onset * clean.len() as f64) as usize;
    let victim_post_onset = clean
        .iter()
        .enumerate()
        .filter(|(i, item)| {
            *i >= onset_index
                && item.vehicle == victim
                && matches!(item.body, StreamBody::Record(_))
        })
        .count() as u64;
    assert!(victim_post_onset > 2 * K_RECORDS, "fleet too small to bound detection latency");

    let names = fleet.vehicles[0].frame.names().to_vec();
    let mut engine = ShardedIngest::new(&names, IngestConfig::paper_default(2));
    let mut evaluator = obs::BurnRateEvaluator::new(obs::default_policies());
    let ring = obs::SnapshotRing::new(64);
    let mut transitions = Vec::new();
    ring.push(obs::take_snapshot()); // pre-ingest baseline for the deltas

    let mut chunk = stream;
    while !chunk.is_empty() {
        let rest = chunk.split_off(2000.min(chunk.len()));
        let _ = engine.ingest_batch(chunk);
        engine.observe_health();
        ring.push(obs::take_snapshot());
        transitions.extend(evaluator.evaluate(&ring));
        chunk = rest;
    }
    let _ = engine.finish();
    engine.observe_health();
    ring.push(obs::take_snapshot());
    transitions.extend(evaluator.evaluate(&ring));

    let stats = engine.stats();
    assert_eq!(stats.dead_letter, 0, "biased rows are finite and must not dead-letter");

    // 1. The drift gauge crossed the flag threshold (4.0 z = 4000 milli-z)
    //    and flagged all but the detection-latency head of the post-onset
    //    records: flagged >= post_onset - K pins the latency to <= K.
    let drift_mz = obs::gauge(&format!("ingest.quality.v{victim:02}.drift_mz")).get();
    assert!(drift_mz >= 4_000, "victim drift gauge at {drift_mz} milli-z, want >= 4000");
    assert!(
        stats.quality_flagged >= victim_post_onset - K_RECORDS,
        "flagged {} of {} post-onset records — detection latency above {} records",
        stats.quality_flagged,
        victim_post_onset,
        K_RECORDS
    );
    assert!(
        stats.quality_flagged <= victim_post_onset,
        "only the drifting vehicle's records may be flagged ({} > {})",
        stats.quality_flagged,
        victim_post_onset
    );

    // 2. The victim's shard left Ok on quality alone (no dead letters, no
    //    stalls — the quality fraction is the only tripped rate).
    assert!(
        engine.health_states().iter().any(|h| *h != HealthState::Ok),
        "no shard left Ok despite a drifting vehicle"
    );

    // 3. The quality burn-rate alert fired: 1 vehicle in the fleet drifting
    //    burns the 0.1% flagged-records budget tens of times over.
    assert!(
        transitions.iter().any(|t| t.name == "quality" && t.to == obs::AlertState::Firing),
        "quality alert never fired; transitions: {transitions:?}"
    );
    // The alert plane exported its state for scrapers.
    assert!(obs::gauge("alert.quality.state").get() >= 1);
    assert!(obs::counter("alert.quality.transitions").get() >= 1);
}

//! Property-based tests for the agglomerative clustering substrate.

use navarchos_cluster::{linkage, Linkage};
use proptest::prelude::*;

fn flat_points(dim: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = (Vec<f64>, usize)> {
    prop::collection::vec(-100.0f64..100.0, n).prop_map(move |mut v| {
        let len = (v.len() / dim).max(1) * dim;
        v.truncate(len);
        (v, dim)
    })
}

proptest! {
    #[test]
    fn merge_count_and_sizes((pts, dim) in flat_points(2, 4..64)) {
        let n = pts.len() / dim;
        for method in [Linkage::Single, Linkage::Complete, Linkage::Average, Linkage::Weighted] {
            let d = linkage(&pts, dim, method);
            prop_assert_eq!(d.merges().len(), n - 1);
            prop_assert_eq!(d.merges().last().unwrap().size, n);
            // Heights sorted ascending.
            for w in d.merges().windows(2) {
                prop_assert!(w[0].distance <= w[1].distance + 1e-12);
            }
        }
    }

    #[test]
    fn cut_k_produces_k_clusters((pts, dim) in flat_points(3, 6..60), k in 1usize..6) {
        let n = pts.len() / dim;
        prop_assume!(k <= n);
        let d = linkage(&pts, dim, Linkage::Average);
        let labels = d.cut_k(k);
        prop_assert_eq!(labels.len(), n);
        let mut uniq = labels.clone();
        uniq.sort_unstable();
        uniq.dedup();
        // With possibly-duplicated points, ties can make fewer distinct
        // clusters than requested only if merge heights tie at zero.
        prop_assert!(uniq.len() <= k);
        prop_assert!(labels.iter().all(|&l| l < k));
    }

    #[test]
    fn single_linkage_height_is_min_crossing_edge((pts, dim) in flat_points(1, 4..32)) {
        // For 1-D single linkage, the final merge distance equals the
        // largest gap between consecutive sorted points' cluster frontier —
        // at minimum it is bounded by the largest adjacent gap.
        let mut sorted = pts.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let max_gap = sorted.windows(2).map(|w| w[1] - w[0]).fold(0.0f64, f64::max);
        let d = linkage(&pts, dim, Linkage::Single);
        let last = d.merges().last().unwrap().distance;
        prop_assert!((last - max_gap).abs() < 1e-9, "single-linkage root = max adjacent gap");
    }

    #[test]
    fn linkage_heights_ordered_by_method((pts, dim) in flat_points(2, 4..40)) {
        // Root height: single ≤ average ≤ complete.
        let s = linkage(&pts, dim, Linkage::Single).merges().last().unwrap().distance;
        let a = linkage(&pts, dim, Linkage::Average).merges().last().unwrap().distance;
        let c = linkage(&pts, dim, Linkage::Complete).merges().last().unwrap().distance;
        prop_assert!(s <= a + 1e-9);
        prop_assert!(a <= c + 1e-9);
    }

    #[test]
    fn deterministic((pts, dim) in flat_points(2, 4..40)) {
        let a = linkage(&pts, dim, Linkage::Average);
        let b = linkage(&pts, dim, Linkage::Average);
        prop_assert_eq!(a.merges(), b.merges());
    }
}

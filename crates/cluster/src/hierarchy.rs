//! Nearest-neighbour-chain agglomerative clustering with Lance–Williams
//! updates, plus dendrogram cutting utilities.

use navarchos_stat::descriptive::mean;

/// Linkage criterion. All four are *reducible*, which the NN-chain
/// algorithm requires for exactness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Linkage {
    /// Minimum pairwise distance between members.
    Single,
    /// Maximum pairwise distance between members.
    Complete,
    /// Unweighted average of pairwise distances (UPGMA) — the paper's
    /// "average linkage agglomerative hierarchical clustering".
    #[default]
    Average,
    /// Weighted average (WPGMA).
    Weighted,
}

impl Linkage {
    /// Lance–Williams update: distance from the merged cluster (i ∪ j) to
    /// another cluster k, given the previous distances and cluster sizes.
    fn update(&self, d_ik: f64, d_jk: f64, n_i: f64, n_j: f64) -> f64 {
        match self {
            Linkage::Single => d_ik.min(d_jk),
            Linkage::Complete => d_ik.max(d_jk),
            Linkage::Average => (n_i * d_ik + n_j * d_jk) / (n_i + n_j),
            Linkage::Weighted => 0.5 * (d_ik + d_jk),
        }
    }
}

/// One merge step of the dendrogram: clusters `a` and `b` (dendrogram ids:
/// 0..n are leaves, n+t is the cluster created by merge t) joined at height
/// `distance` into a cluster of `size` leaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First child's dendrogram id.
    pub a: usize,
    /// Second child's dendrogram id.
    pub b: usize,
    /// Cophenetic distance of the merge.
    pub distance: f64,
    /// Number of leaves under the merged cluster.
    pub size: usize,
}

/// A complete hierarchical clustering of `n` observations (n − 1 merges,
/// sorted by increasing merge distance — the scipy `Z` matrix layout).
///
/// ```
/// use navarchos_cluster::{linkage, Linkage};
///
/// // Two obvious 1-D groups.
/// let points = [0.0, 0.1, 0.2, 10.0, 10.1];
/// let labels = linkage(&points, 1, Linkage::Average).cut_k(2);
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[3]);
/// ```
#[derive(Debug, Clone)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of clustered observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dendrogram is trivial (0 or 1 observations).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge sequence, sorted by increasing distance.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Flat cluster labels for exactly `k` clusters (1 ≤ k ≤ n). Labels are
    /// renumbered 0..k−1 in order of first appearance.
    pub fn cut_k(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n.max(1), "k must be in 1..=n");
        self.cut_merges(self.n - k)
    }

    /// Flat cluster labels keeping only merges with distance ≤ `height`.
    pub fn cut_height(&self, height: f64) -> Vec<usize> {
        let applied = self.merges.iter().take_while(|m| m.distance <= height).count();
        self.cut_merges(applied)
    }

    /// Applies the first `applied` merges through a union-find and extracts
    /// labels.
    // needless_range_loop: `i` is the leaf id being labelled, not a mere
    // subscript — an enumerate() would obscure the union-find lookup.
    #[allow(clippy::needless_range_loop)]
    fn cut_merges(&self, applied: usize) -> Vec<usize> {
        let total = self.n + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (t, m) in self.merges.iter().take(applied).enumerate() {
            let new_id = self.n + t;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = new_id;
            parent[rb] = new_id;
        }
        let mut labels = vec![usize::MAX; self.n];
        let mut next = 0;
        let mut map: Vec<(usize, usize)> = Vec::new();
        for i in 0..self.n {
            let root = find(&mut parent, i);
            let label = match map.iter().find(|&&(r, _)| r == root) {
                Some(&(_, l)) => l,
                None => {
                    map.push((root, next));
                    next += 1;
                    next - 1
                }
            };
            labels[i] = label;
        }
        labels
    }

    /// Sizes of the clusters produced by [`Dendrogram::cut_k`].
    pub fn cluster_sizes(&self, k: usize) -> Vec<usize> {
        let labels = self.cut_k(k);
        let mut sizes = vec![0usize; k];
        for &l in &labels {
            sizes[l] += 1;
        }
        sizes
    }
}

/// Computes the hierarchical clustering of row-major `points` (`n × dim`)
/// under the Euclidean metric with the given linkage.
///
/// # Panics
/// If the buffer length is not a multiple of `dim`, or `dim == 0`.
// float_cmp: `d == best_d` is an exact tie-break between two entries of the
// same distance matrix — equality means "same stored value", never "close".
#[allow(clippy::float_cmp)]
pub fn linkage(points: &[f64], dim: usize, method: Linkage) -> Dendrogram {
    assert!(dim > 0, "dim must be positive");
    assert!(points.len() % dim == 0, "points buffer is not n × dim");
    let n = points.len() / dim;
    if n <= 1 {
        return Dendrogram { n, merges: Vec::new() };
    }

    // Condensed distance handling: full symmetric matrix for O(1) updates.
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut s = 0.0;
            for t in 0..dim {
                let d = points[i * dim + t] - points[j * dim + t];
                s += d * d;
            }
            let d = s.sqrt();
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<f64> = vec![1.0; n];
    // Dendrogram id currently represented by matrix row i.
    let mut dendro_id: Vec<usize> = (0..n).collect();

    let mut raw_merges: Vec<Merge> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);

    for step in 0..(n - 1) {
        if chain.is_empty() {
            let start = active.iter().position(|&a| a).expect("an active cluster exists");
            chain.push(start);
        }
        // Grow the chain until a reciprocal nearest-neighbour pair appears.
        loop {
            let top = *chain.last().expect("chain non-empty");
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            for j in 0..n {
                if j != top && active[j] {
                    let d = dist[top * n + j];
                    // Tie-break deterministically on index.
                    if d < best_d || (d == best_d && j < best) {
                        best_d = d;
                        best = j;
                    }
                }
            }
            debug_assert!(best != usize::MAX);
            if chain.len() >= 2 && chain[chain.len() - 2] == best {
                // Reciprocal pair (top, best): merge.
                chain.pop();
                chain.pop();
                let (i, j) = if top < best { (top, best) } else { (best, top) };
                let d_ij = dist[i * n + j];
                let (n_i, n_j) = (size[i], size[j]);
                raw_merges.push(Merge {
                    a: dendro_id[i],
                    b: dendro_id[j],
                    distance: d_ij,
                    size: (n_i + n_j) as usize,
                });
                // Merge j into i; i represents the new cluster.
                for k in 0..n {
                    if active[k] && k != i && k != j {
                        let nd = method.update(dist[i * n + k], dist[j * n + k], n_i, n_j);
                        dist[i * n + k] = nd;
                        dist[k * n + i] = nd;
                    }
                }
                active[j] = false;
                size[i] = n_i + n_j;
                dendro_id[i] = n + step; // provisional id, re-mapped after sorting
                break;
            }
            chain.push(best);
        }
    }

    // NN-chain emits merges in non-sorted order; sort by height and remap
    // the provisional internal ids to the sorted positions.
    let mut order: Vec<usize> = (0..raw_merges.len()).collect();
    order.sort_by(|&a, &b| {
        raw_merges[a].distance.total_cmp(&raw_merges[b].distance).then(a.cmp(&b))
    });
    let mut id_map = vec![0usize; raw_merges.len()];
    for (new_pos, &old_pos) in order.iter().enumerate() {
        id_map[old_pos] = new_pos;
    }
    let remap = |id: usize| if id < n { id } else { n + id_map[id - n] };
    let mut merges: Vec<Merge> = order
        .iter()
        .map(|&old| {
            let m = raw_merges[old];
            Merge { a: remap(m.a), b: remap(m.b), distance: m.distance, size: m.size }
        })
        .collect();
    // Children must refer to earlier ids; NN-chain with a reducible linkage
    // guarantees this after sorting.
    debug_assert!(merges.iter().enumerate().all(|(t, m)| m.a < n + t && m.b < n + t));
    // Normalise child order for reproducibility.
    for m in &mut merges {
        if m.a > m.b {
            std::mem::swap(&mut m.a, &mut m.b);
        }
    }
    Dendrogram { n, merges }
}

/// Convenience wrapper: average-linkage labels for `k` clusters over
/// row-major points, plus the mean intra-cluster distance per cluster
/// (useful for quick cluster quality reporting).
pub fn agglomerative_labels(points: &[f64], dim: usize, k: usize, method: Linkage) -> Vec<usize> {
    linkage(points, dim, method).cut_k(k)
}

/// Mean pairwise Euclidean distance within each cluster (0 for singleton
/// clusters). Used by the exploration experiment to describe cluster
/// tightness.
pub fn intra_cluster_mean_distance(
    points: &[f64],
    dim: usize,
    labels: &[usize],
    k: usize,
) -> Vec<f64> {
    let n = labels.len();
    let mut out = Vec::with_capacity(k);
    for c in 0..k {
        let members: Vec<usize> = (0..n).filter(|&i| labels[i] == c).collect();
        if members.len() < 2 {
            out.push(0.0);
            continue;
        }
        let mut ds = Vec::new();
        for (ai, &i) in members.iter().enumerate() {
            for &j in &members[ai + 1..] {
                let mut s = 0.0;
                for t in 0..dim {
                    let d = points[i * dim + t] - points[j * dim + t];
                    s += d * d;
                }
                ds.push(s.sqrt());
            }
        }
        out.push(mean(&ds));
    }
    out
}

/// Mean silhouette coefficient of a flat clustering over row-major
/// `points` (Euclidean): for each point, `(b − a) / max(a, b)` where `a`
/// is its mean intra-cluster distance and `b` the smallest mean distance
/// to another cluster. Singleton clusters contribute 0 (the standard
/// convention). Returns `NaN` when fewer than 2 clusters exist.
pub fn silhouette_score(points: &[f64], dim: usize, labels: &[usize]) -> f64 {
    assert!(dim > 0 && points.len() == labels.len() * dim, "shape mismatch");
    let n = labels.len();
    let k = labels.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    if k < 2 || n < 2 {
        return f64::NAN;
    }
    let dist = |i: usize, j: usize| -> f64 {
        let mut s = 0.0;
        for t in 0..dim {
            let d = points[i * dim + t] - points[j * dim + t];
            s += d * d;
        }
        s.sqrt()
    };
    let mut total = 0.0;
    for i in 0..n {
        // Mean distance to every cluster.
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += dist(i, j);
                counts[labels[j]] += 1;
            }
        }
        let own = labels[i];
        if counts[own] == 0 {
            continue; // singleton: contributes 0
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs on a line.
    fn three_blobs() -> (Vec<f64>, usize) {
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(0.0 + i as f64 * 0.1);
        }
        for i in 0..5 {
            pts.push(10.0 + i as f64 * 0.1);
        }
        for i in 0..5 {
            pts.push(25.0 + i as f64 * 0.1);
        }
        (pts, 1)
    }

    #[test]
    fn three_blobs_recovered() {
        let (pts, dim) = three_blobs();
        for method in [Linkage::Single, Linkage::Complete, Linkage::Average, Linkage::Weighted] {
            let labels = agglomerative_labels(&pts, dim, 3, method);
            assert_eq!(labels.len(), 15);
            // Each blob must be pure.
            for blob in 0..3 {
                let l0 = labels[blob * 5];
                for i in 0..5 {
                    assert_eq!(labels[blob * 5 + i], l0, "method {method:?}");
                }
            }
            // And the blobs distinct.
            assert_ne!(labels[0], labels[5]);
            assert_ne!(labels[5], labels[10]);
        }
    }

    #[test]
    fn merge_count_and_sizes() {
        let (pts, dim) = three_blobs();
        let dend = linkage(&pts, dim, Linkage::Average);
        assert_eq!(dend.merges().len(), 14);
        assert_eq!(dend.merges().last().unwrap().size, 15);
        // Distances sorted ascending.
        let ds: Vec<f64> = dend.merges().iter().map(|m| m.distance).collect();
        assert!(ds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cut_k_extremes() {
        let (pts, dim) = three_blobs();
        let dend = linkage(&pts, dim, Linkage::Average);
        let all_one = dend.cut_k(1);
        assert!(all_one.iter().all(|&l| l == 0));
        let singletons = dend.cut_k(15);
        let mut sorted = singletons.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 15, "15 distinct singleton labels");
    }

    #[test]
    fn cut_height_matches_cut_k() {
        let (pts, dim) = three_blobs();
        let dend = linkage(&pts, dim, Linkage::Average);
        // A height between the intra-blob merges (≤ 0.4) and the
        // inter-blob merges (≥ ~10) must give exactly 3 clusters.
        let labels = dend.cut_height(1.0);
        let mut uniq = labels.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn average_linkage_merge_height_is_mean_distance() {
        // Two pairs: (0, 1) at distance 1, (10, 12) at distance 2; the final
        // average-linkage merge height is the mean of all cross distances.
        let pts = vec![0.0, 1.0, 10.0, 12.0];
        let dend = linkage(&pts, 1, Linkage::Average);
        let last = dend.merges().last().unwrap();
        // Cross distances: |0-10|, |0-12|, |1-10|, |1-12| = 10, 12, 9, 11 → mean 10.5
        assert!((last.distance - 10.5).abs() < 1e-9, "got {}", last.distance);
    }

    #[test]
    fn single_vs_complete_heights() {
        let pts = vec![0.0, 1.0, 10.0, 12.0];
        let single = linkage(&pts, 1, Linkage::Single);
        let complete = linkage(&pts, 1, Linkage::Complete);
        assert!((single.merges().last().unwrap().distance - 9.0).abs() < 1e-9);
        assert!((complete.merges().last().unwrap().distance - 12.0).abs() < 1e-9);
    }

    #[test]
    fn trivial_inputs() {
        let d0 = linkage(&[], 2, Linkage::Average);
        assert!(d0.is_empty());
        let d1 = linkage(&[1.0, 2.0], 2, Linkage::Average);
        assert_eq!(d1.len(), 1);
        assert_eq!(d1.cut_k(1), vec![0]);
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let (pts, dim) = three_blobs();
        let dend = linkage(&pts, dim, Linkage::Average);
        for k in 1..=15 {
            let sizes = dend.cluster_sizes(k);
            assert_eq!(sizes.len(), k);
            assert_eq!(sizes.iter().sum::<usize>(), 15);
        }
    }

    #[test]
    fn intra_cluster_distance_zero_for_singletons() {
        let pts = vec![0.0, 5.0];
        let labels = vec![0usize, 1usize];
        let d = intra_cluster_mean_distance(&pts, 1, &labels, 2);
        assert_eq!(d, vec![0.0, 0.0]);
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let (pts, dim) = three_blobs();
        let labels = agglomerative_labels(&pts, dim, 3, Linkage::Average);
        let s = silhouette_score(&pts, dim, &labels);
        assert!(s > 0.9, "well-separated blobs: silhouette {s}");
        // A deliberately bad clustering scores much lower.
        let bad: Vec<usize> = (0..15).map(|i| i % 3).collect();
        let s_bad = silhouette_score(&pts, dim, &bad);
        assert!(s_bad < s - 0.5, "bad labels {s_bad} vs good {s}");
    }

    #[test]
    fn silhouette_degenerate_cases() {
        assert!(silhouette_score(&[1.0, 2.0], 1, &[0, 0]).is_nan(), "one cluster");
        let s = silhouette_score(&[0.0, 10.0], 1, &[0, 1]);
        assert_eq!(s, 0.0, "two singletons contribute 0 each");
    }

    #[test]
    fn deterministic_output() {
        let (pts, dim) = three_blobs();
        let a = linkage(&pts, dim, Linkage::Average);
        let b = linkage(&pts, dim, Linkage::Average);
        assert_eq!(a.merges(), b.merges());
    }
}

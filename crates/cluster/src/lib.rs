//! Agglomerative hierarchical clustering for the data-exploration step of
//! the paper (Section 2, Figure 2): average-linkage clustering with the
//! Euclidean metric over day-aggregated fleet data, cut at 9 clusters.
//!
//! The implementation uses the nearest-neighbour-chain algorithm with
//! Lance–Williams distance updates, which runs in O(n²) time and memory and
//! is exact for the *reducible* linkages offered here (single, complete,
//! average, weighted).

pub mod hierarchy;

pub use hierarchy::{agglomerative_labels, linkage, silhouette_score, Dendrogram, Linkage, Merge};
